"""Delayed-ACK tuning in high-speed mobility (paper Section V-A).

The delayed-ACK window ``b`` trades host efficiency (fewer ACKs) against
spurious-timeout risk: with only ``w/b`` ACKs per round, losing them
all — and triggering a spurious retransmission timeout — becomes
exponentially easier.  This example sweeps ``b`` over three channels
and shows the TCP-DCA-style adaptive policy picking a safe window.

Run:  python examples/delayed_ack_tuning.py
"""

from repro.core import LinkParams, adaptive_delayed_window, delayed_ack_tradeoff

CHANNELS = (
    ("stationary (benign)", LinkParams(rtt=0.06, timeout=0.5, data_loss=0.002,
                                       ack_loss=0.01, recovery_loss=0.02, wmax=64.0)),
    ("HSR moderate", LinkParams(rtt=0.12, timeout=0.9, data_loss=0.0075,
                                ack_loss=0.25, recovery_loss=0.30, wmax=32.0)),
    ("HSR harsh", LinkParams(rtt=0.15, timeout=1.2, data_loss=0.02,
                             ack_loss=0.45, recovery_loss=0.38, wmax=32.0)),
)

for label, params in CHANNELS:
    print(f"\n{label}  (per-ACK loss {params.ack_loss:.0%})")
    print(f"  {'b':>2s} {'throughput':>11s} {'P_a':>9s} {'spurious':>9s}")
    for point in delayed_ack_tradeoff(params, b_values=(1, 2, 3, 4, 6, 8)):
        print(f"  {point.b:2d} {point.throughput:9.1f}/s "
              f"{point.ack_burst_loss:9.4f} {point.spurious_timeout_fraction:9.1%}")
    recommended = adaptive_delayed_window(params, max_b=8, spurious_budget=0.25)
    print(f"  adaptive recommendation (spurious budget 25%): b = {recommended}")

print("\nTakeaway: on harsh mobile channels every ACK is precious — the")
print("policy collapses the delayed window toward b = 1, while benign")
print("channels can afford large windows for host efficiency.")
