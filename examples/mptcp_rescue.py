"""MPTCP in high-speed mobility (paper Section V-B, Fig. 12).

Shows both of the paper's arguments:

1. Analytically — double retransmission shrinks the recovery-phase
   loss ``q`` to ``q1·q2``, which the enhanced model converts into a
   throughput gain even in *backup* mode.
2. By simulation — a China-Telecom HSR flow (worst corridor coverage)
   vs the same flow with a second China-Mobile subflow in duplex mode,
   reproducing the paper's ordering: the worse the single path, the
   larger the MPTCP gain.

Run:  python examples/mptcp_rescue.py
"""

from repro.core import (
    LinkParams,
    backup_mode_throughput,
    duplex_mode_throughput,
    enhanced_throughput,
)
from repro.exec import FlowSpec, simulate_spec
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.simulator import run_duplex

print("1) Analytic view (enhanced model, Section V-B)")
telecom_path = LinkParams(rtt=0.18, timeout=1.2, data_loss=0.012, ack_loss=0.01,
                          recovery_loss=0.4, wmax=64.0)
mobile_path = LinkParams(rtt=0.08, timeout=0.7, data_loss=0.005, ack_loss=0.004,
                         recovery_loss=0.25, wmax=64.0)

single = enhanced_throughput(telecom_path).throughput
backup = backup_mode_throughput(telecom_path, mobile_path).throughput
duplex = duplex_mode_throughput(telecom_path, mobile_path).throughput
print(f"  single path (Telecom)     {single:7.1f} pkt/s")
print(f"  MPTCP backup mode         {backup:7.1f} pkt/s  (+{backup / single - 1:.0%},"
      " q reduced to q1*q2)")
print(f"  MPTCP duplex mode         {duplex:7.1f} pkt/s  (+{duplex / single - 1:.0%})")

print("\n2) Simulated view (Telecom HSR flow + Mobile second subflow)")
SEED, DURATION = 11, 60.0
telecom = hsr_scenario(CHINA_TELECOM)
mobile = hsr_scenario(CHINA_MOBILE)

tcp, _ = simulate_spec(FlowSpec(scenario=telecom, duration=DURATION, seed=SEED))

mptcp = run_duplex(
    FlowSpec(scenario=telecom, duration=DURATION, seed=SEED + 1),
    FlowSpec(scenario=mobile, duration=DURATION, seed=SEED + 2),
)

gain = mptcp.throughput / tcp.throughput - 1.0
print(f"  TCP   (Telecom only)      {tcp.throughput:7.1f} pkt/s")
print(f"  MPTCP (Telecom + Mobile)  {mptcp.throughput:7.1f} pkt/s  (+{gain:.0%})")
print("\n(Paper Fig. 12: +283% for China Telecom — the poorly covered")
print(" carrier gains most from a second path.)")
