"""Regenerate a miniature BTR measurement campaign (paper Table I).

Simulates HSR flows for the three carriers, reduces them to the paper's
Section-III statistics (loss rates, spurious-timeout share, recovery
durations), and prints the Table-I summary plus a stationary
comparison.

Run:  python examples/hsr_campaign.py        (~1 minute)
"""

from repro.traces import (
    generate_dataset,
    generate_stationary_reference,
    recovery_stats,
    spurious_fraction,
    table1_rows,
)
from repro.util.stats import mean

print("Generating a 10%-scale Table-I campaign (three carriers, HSR)...")
dataset = generate_dataset(seed=2015, duration=60.0, flow_scale=0.1)
stationary = generate_stationary_reference(seed=2016, duration=60.0,
                                           flows_per_provider=3)

print("\nTable I (synthetic campaign)")
print(f"{'month':8s} {'phone':18s} {'provider':14s} {'flows':>5s} {'GB':>7s}")
for row in table1_rows(dataset):
    print(f"{row.capture_month:8s} {row.phone_model:18s} {row.provider:14s} "
          f"{row.flows:5d} {row.trace_size_gb:7.3f}")
print(f"{'TOTAL':42s} {dataset.flow_count:5d} {dataset.total_bytes / 1e9:7.3f}")

print("\nPer-scenario transport statistics (paper Section III)")
for label, traces in (("HSR 300 km/h", dataset.traces),
                      ("stationary", stationary.traces)):
    data_loss = mean([t.data_loss_rate for t in traces])
    ack_loss = mean([t.ack_loss_rate for t in traces])
    spurious = [s for s in (spurious_fraction(t) for t in traces) if s is not None]
    recoveries = []
    for trace in traces:
        stats = recovery_stats(trace)
        if stats.mean_duration is not None:
            recoveries.append(stats.mean_duration)
    print(f"\n  {label}:")
    print(f"    data loss rate     {data_loss:8.4%}   (paper HSR: 0.7526%)")
    print(f"    ACK loss rate      {ack_loss:8.4%}   (paper HSR: 0.661%, stationary: 0.0718%)")
    if spurious:
        print(f"    spurious timeouts  {mean(spurious):8.1%}   (paper: 49.24%)")
    if recoveries:
        print(f"    mean recovery      {mean(recoveries):8.2f}s  (paper HSR: 5.05s, stationary: 0.65s)")
    else:
        print("    (no timeout recovery phases)")
