"""Quickstart: predict TCP throughput in a high-speed mobility scenario.

Evaluates the paper's enhanced model (Eq. 21) on the measured BTR
operating point and contrasts it with the classic Padhye model, showing
where the extra throughput loss comes from (ACK burst loss and the
lossy timeout-recovery phase).

Run:  python examples/quickstart.py
"""

from repro import LinkParams, ModelOptions, enhanced_throughput, padhye_paper_form

# The paper's measured HSR operating point (Section III): data loss
# 0.75%, ACK loss 0.66%, in-recovery retransmission loss ~27%.
hsr = LinkParams(
    rtt=0.12,          # seconds
    timeout=0.8,       # base retransmission timer T
    data_loss=0.0075,  # p_d
    ack_loss=0.0066,   # p_a
    recovery_loss=0.27,  # q (paper recommends 0.25-0.4)
    wmax=64.0,         # receiver-advertised window, packets
    b=2,               # delayed ACK: one ACK per two packets
)

# Some BTR flows saw per-round ACK burst loss as high as 10% (paper
# Section IV-E); model that flow directly with the measured P_a.
bursty_options = ModelOptions(ack_burst_override=0.10)

plain = enhanced_throughput(hsr)
bursty = enhanced_throughput(hsr, bursty_options)
padhye = padhye_paper_form(hsr)

print("Enhanced TCP throughput model — HSR operating point")
print("=" * 60)
for label, prediction in (
    ("Padhye baseline (no ACK loss, q = p_d)", padhye),
    ("Enhanced model (P_a from independence)", plain),
    ("Enhanced model (measured P_a = 10%)", bursty),
):
    print(f"\n{label}")
    print(f"  throughput          {prediction.throughput:8.1f} pkt/s"
          f"  ({prediction.throughput_mbps:.2f} Mbps)")
    print(f"  E[rounds per CA]    {prediction.expected_rounds:8.1f}")
    print(f"  E[window]           {prediction.expected_window:8.1f} packets")
    print(f"  P(timeout | loss)   {prediction.timeout_probability:8.3f}")
    print(f"  spurious timeouts   {prediction.spurious_timeout_fraction:8.1%}")
    print(f"  E[timeout seq dur]  {prediction.timeout_duration:8.2f} s")

print("\nTakeaway: with realistic per-round ACK burst loss the model")
print("predicts the severe degradation the paper measured, which the")
print("Padhye baseline cannot see (it assumes ACKs are never lost).")
