"""Model-vs-simulation: the paper's Fig.-10 methodology on one flow.

Simulates a single HSR flow, measures its link parameters from the
trace (RTT, T, p_d, p_a, q and the per-round ACK-burst probability),
feeds them to both closed-form models, and reports the deviation rate
D (paper Eq. 22) of each prediction against the simulated throughput.

Run:  python examples/model_vs_simulation.py
"""

from repro.core import ModelOptions, deviation_rate, enhanced_throughput, padhye_paper_form
from repro.hsr import CHINA_UNICOM, hsr_scenario
from repro.simulator import run_flow
from repro.traces import FlowMetadata, capture_flow, measured_model_inputs

SEED = 42
DURATION = 120.0

scenario = hsr_scenario(CHINA_UNICOM)
built = scenario.build(duration=DURATION, seed=SEED)
result = run_flow(built.config, built.data_loss, built.ack_loss, seed=SEED)
trace = capture_flow(
    result,
    FlowMetadata(
        flow_id="example/unicom", provider=scenario.provider.name,
        technology=scenario.provider.technology, scenario="hsr",
        capture_month="2015-10", phone_model="Samsung Galaxy S4",
        duration=DURATION, seed=SEED,
    ),
)

measured = measured_model_inputs(trace)
assert measured is not None, "flow too quiet to measure"

print("Measured link parameters (from the simulated trace)")
print(f"  RTT                 {measured.params.rtt * 1000:7.1f} ms")
print(f"  base timer T        {measured.params.timeout:7.2f} s")
print(f"  p_d (loss events)   {measured.params.data_loss:8.4%}")
print(f"  p_a (ACK loss)      {measured.params.ack_loss:8.4%}")
print(f"  q  (recovery loss)  {measured.params.recovery_loss:8.1%}")
print(f"  P_a (per round)     {measured.ack_burst_probability:8.4%}")

enhanced = enhanced_throughput(
    measured.params, ModelOptions(ack_burst_override=measured.ack_burst_probability)
)
padhye = padhye_paper_form(measured.params)

print("\nThroughput: simulation vs models")
print(f"  simulated            {measured.throughput:8.1f} pkt/s")
for label, prediction in (("enhanced model", enhanced), ("Padhye baseline", padhye)):
    deviation = deviation_rate(prediction.throughput, measured.throughput)
    print(f"  {label:20s} {prediction.throughput:8.1f} pkt/s   D = {deviation:6.1%}")

print("\n(The paper's Fig. 10 runs this on all 255 flows: mean D was")
print(" 21.96% for Padhye vs 5.66% for the enhanced model.)")
