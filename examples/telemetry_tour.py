"""Telemetry tour: observe a flow and a campaign without perturbing them.

Three stops:

1. a single HSR flow with :class:`~repro.telemetry.CountingTelemetry`
   attached — engine, packet, and RTO counters, reconciled against the
   flow's own :class:`FlowLog`;
2. the same flow through :class:`~repro.telemetry.TimelineTelemetry`,
   which tags every drop and RTO with the congestion-control phase it
   happened in;
3. a miniature campaign with executor-level aggregation, merging
   per-flow counters into one :class:`~repro.telemetry.CampaignTelemetry`.

Instrumentation is observation only: the instrumented flow's log is
bit-identical to an uninstrumented run (the golden-trace test pins
this), and with telemetry off the engine runs the exact same code it
ran before the subsystem existed.

Run:  python examples/telemetry_tour.py
"""

from repro import (
    CountingTelemetry,
    Executor,
    FlowSpec,
    TimelineTelemetry,
    hsr_scenario,
    run_flow,
)

SEED = 20150402
DURATION = 12.0

# -- Stop 1: counters on a single flow ---------------------------------
built = hsr_scenario().build(duration=DURATION, seed=SEED)
counting = CountingTelemetry()
result = run_flow(
    built.config, built.data_loss, built.ack_loss, seed=SEED, telemetry=counting
)

print("Counting a single HSR flow")
print("=" * 60)
for name, value in counting.as_dict().items():
    print(f"  {name:24s} {value:8d}")

# The counters are not a parallel universe: they reconcile exactly
# with what the flow logged.
log = result.log
assert counting.data_sent == log.data_sent
assert counting.data_dropped == log.data_lost
assert counting.rto_fired == len(log.timeouts)
print("  (reconciled against the FlowLog — counts agree exactly)")

# -- Stop 2: a phase-tagged timeline -----------------------------------
# Rebuild the scenario: the loss channels are stateful RNG streams, so
# a fresh flow needs fresh channels to replay the same seed.
built = hsr_scenario().build(duration=DURATION, seed=SEED)
timeline = TimelineTelemetry()
run_flow(
    built.config, built.data_loss, built.ack_loss, seed=SEED, telemetry=timeline
)

print("\nPhase-tagged timeline of the same flow")
print("=" * 60)
for kind in ("drop", "rto_fired", "phase"):
    events = timeline.events_of_kind(kind)
    print(f"  {kind:10s} {len(events):4d} events")
for event in timeline.events_of_kind("rto_fired"):
    print(f"    t={event.time:7.3f}s  RTO in phase {event.phase!r}  ({event.detail})")

# -- Stop 3: campaign aggregation --------------------------------------
specs = [
    FlowSpec(scenario=hsr_scenario(), duration=6.0, seed=seed, flow_id=f"tour/{seed}")
    for seed in (1, 2, 3)
]
execution = Executor(telemetry=True).run(specs)
campaign = execution.telemetry

print("\nCampaign aggregation over 3 flows")
print("=" * 60)
print(f"  {campaign.summary()}")
print(f"  canonical JSON: {campaign.to_json()[:72]}...")
print("\nTakeaway: attach a sink to see inside a flow or a campaign;")
print("leave it off and the simulator runs its original hot path.")
