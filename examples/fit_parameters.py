"""Inverse modeling: recover the paper's latent parameters from throughput.

The paper recommends q in [0.25, 0.4] "based on the analysis of our
real-world traces".  This example shows how such a recommendation is
derived: simulate a small HSR campaign, keep only the directly
measurable parameters per flow, and fit the shared recovery-phase loss
``q`` (and per-flow ACK-burst probability) that make the enhanced model
match the observed throughputs.

Run:  python examples/fit_parameters.py        (~1 minute)
"""

from repro.core import fit_ack_burst, fit_population_recovery_loss
from repro.traces import generate_dataset, measured_model_inputs

print("Simulating a mini HSR campaign...")
dataset = generate_dataset(seed=77, duration=90.0, flow_scale=0.05)

observations = []
for trace in dataset.traces:
    measured = measured_model_inputs(trace)
    if measured is None:
        continue
    # Pretend q is unknown (the latent parameter): keep the measurable
    # part of the inputs and the observed throughput.
    observations.append((measured.params, measured.throughput))

print(f"  {len(observations)} measurable flows")

fitted = fit_population_recovery_loss(observations)
print(f"\nPopulation fit of the recovery-phase loss q")
print(f"  fitted q            {fitted.recovery_loss:6.3f}")
print(f"  paper's range       0.250 - 0.400")
print(f"  residual deviation  {fitted.deviation:6.1%}")
print(f"  model evaluations   {fitted.evaluations}")

print("\nPer-flow ACK-burst probabilities (holding q at the fit):")
for params, throughput in observations[:6]:
    flow_fit = fit_ack_burst(
        params, throughput, recovery_loss=fitted.recovery_loss
    )
    print(f"  flow tp={throughput:7.1f} pkt/s  ->  P_a = {flow_fit.ack_burst:6.4f}"
          f"  (residual D {flow_fit.deviation:5.1%})")

print("\nTakeaway: the latent HSR parameters are recoverable from")
print("throughput observations alone — the procedure behind the paper's")
print("recommended q range.")
