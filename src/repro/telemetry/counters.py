"""Counting telemetry: live counters over every hook point.

:class:`CountingTelemetry` is the workhorse sink — integer counters
with no per-event allocation, cheap enough to leave on for production
campaigns.  Its :meth:`~CountingTelemetry.as_dict` rendering is the
unit the campaign layer aggregates: deterministic, wall-clock-free,
and therefore byte-identical between serial and process-pool runs of
the same flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.telemetry.base import Telemetry

__all__ = ["COUNTER_NAMES", "CountingTelemetry", "FlowTelemetrySummary"]

#: Every counter a :class:`CountingTelemetry` maintains, in the order
#: :meth:`CountingTelemetry.as_dict` reports them.
COUNTER_NAMES = (
    "events_scheduled",
    "events_fired",
    "events_cancelled",
    "packets_sent",
    "packets_dropped",
    "packets_delivered",
    "data_sent",
    "data_dropped",
    "data_delivered",
    "acks_sent",
    "acks_dropped",
    "acks_delivered",
    "rto_armed",
    "rto_fired",
    "rto_spurious",
    "cwnd_phase_transitions",
    "budget_trips",
    # how the executor obtained the flow's result under a result store:
    # exactly one of these is 1 per store-backed flow, both 0 otherwise
    "cache_hit",
    "cache_miss",
    # supervision-layer provenance, stamped by the parent: how many of
    # this flow's executions died with the worker or were preempted
    # past their deadline, and whether it ran uncached because the
    # store's circuit breaker was open.  Never persisted to the store.
    "worker_crashes",
    "deadline_preemptions",
    "store_errors",
)


class CountingTelemetry(Telemetry):
    """Counters over engine, channel, sender, and watchdog hooks.

    Direction-split packet counters (``data_*`` / ``acks_*``) always
    sum to the aggregate ``packets_*`` ones; the MPTCP redundant
    subflow counts as ``data`` (its transmissions land in the flow
    log's data records).  All counters reconcile exactly with the
    :class:`~repro.simulator.metrics.FlowLog` of the same run —
    ``scripts/smoke.py`` asserts the identities.
    """

    __slots__ = COUNTER_NAMES

    #: Counters are order-insensitive, so the links may report whole
    #: bursts with one hook call instead of one per packet.
    batched_packet_hooks = True

    def __init__(self) -> None:
        for name in COUNTER_NAMES:
            setattr(self, name, 0)

    # -- engine ---------------------------------------------------------

    def on_event_scheduled(self) -> None:
        self.events_scheduled += 1

    def on_events_scheduled(self, count: int) -> None:
        self.events_scheduled += count

    def on_events_fired(self, count: int) -> None:
        self.events_fired += count

    def on_event_cancelled(self) -> None:
        self.events_cancelled += 1

    # -- channel --------------------------------------------------------

    def on_packet_sent(self, direction: str, time: float) -> None:
        self.packets_sent += 1
        if direction == "ack":
            self.acks_sent += 1
        else:
            self.data_sent += 1

    def on_packet_dropped(self, direction: str, time: float) -> None:
        self.packets_dropped += 1
        if direction == "ack":
            self.acks_dropped += 1
        else:
            self.data_dropped += 1

    def on_packet_delivered(self, direction: str, time: float) -> None:
        self.packets_delivered += 1
        if direction == "ack":
            self.acks_delivered += 1
        else:
            self.data_delivered += 1

    def on_packets_sent(self, direction: str, time: float, count: int) -> None:
        self.packets_sent += count
        if direction == "ack":
            self.acks_sent += count
        else:
            self.data_sent += count

    def on_packets_dropped(self, direction: str, time: float, count: int) -> None:
        self.packets_dropped += count
        if direction == "ack":
            self.acks_dropped += count
        else:
            self.data_dropped += count

    # -- sender ---------------------------------------------------------

    def on_rto_armed(self, time: float, rto: float) -> None:
        self.rto_armed += 1

    def on_rto_fired(
        self, time: float, seq: int, spurious: bool, backoff_exponent: int
    ) -> None:
        self.rto_fired += 1
        if spurious:
            self.rto_spurious += 1

    def on_phase_transition(
        self, time: float, old_phase: str, new_phase: str, cwnd: float
    ) -> None:
        self.cwnd_phase_transitions += 1

    # -- robustness -----------------------------------------------------

    def on_budget_exceeded(self, kind: str) -> None:
        self.budget_trips += 1

    # -- rendering ------------------------------------------------------

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot in declaration order (stable across runs)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def summarise(self, flow_id: str = "flow") -> "FlowTelemetrySummary":
        """A frozen, picklable summary of this sink's counters."""
        return FlowTelemetrySummary(flow_id=flow_id, counters=self.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {k: v for k, v in self.as_dict().items() if v}
        return f"CountingTelemetry({hot})"


@dataclass(frozen=True)
class FlowTelemetrySummary:
    """One flow's final counters, ready to cross a process boundary.

    This is what campaign workers ship back to the parent instead of a
    live sink: a value, keyed by the flow id, that the
    :class:`~repro.telemetry.campaign.CampaignTelemetry` aggregator
    merges in spec order.
    """

    flow_id: str
    counters: Mapping[str, int] = field(default_factory=dict)

    def get(self, name: str) -> int:
        return int(self.counters.get(name, 0))
