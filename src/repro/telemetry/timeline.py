"""Timeline telemetry: phase-tagged event records for diagnosis.

The HSR measurement studies diagnose pathologies from *when* things
happen relative to the congestion phase — a burst of ACK drops during
``timeout_recovery`` reads completely differently from the same burst
in ``congestion_avoidance``.  :class:`TimelineTelemetry` extends the
counting sink with an ordered list of :class:`TimelineEvent` records,
each tagged with the sender phase current at that instant.

Per-packet send/delivery events are not recorded by default (a 60 s
HSR flow transmits tens of thousands of packets); pass
``record_packets=True`` for short diagnostic runs that want them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.telemetry.counters import CountingTelemetry

__all__ = ["TimelineEvent", "TimelineTelemetry"]

#: The phase every flow starts in (mirrors the sender's initial state).
_INITIAL_PHASE = "slow_start"


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One instrumented occurrence, tagged with the congestion phase."""

    time: float
    kind: str  # "phase" | "rto_armed" | "rto_fired" | "drop" | "send" | "delivery" | "budget"
    detail: str
    phase: str


class TimelineTelemetry(CountingTelemetry):
    """Counters plus a phase-tagged timeline of notable events."""

    __slots__ = ("events", "record_packets", "_phase")

    #: The timeline's contract is one record per packet in exact hook
    #: order, so this sink opts back out of the counting base class's
    #: batched hooks — links fall back to the scalar per-packet path.
    batched_packet_hooks = False

    def __init__(self, record_packets: bool = False) -> None:
        super().__init__()
        self.events: List[TimelineEvent] = []
        self.record_packets = record_packets
        self._phase = _INITIAL_PHASE

    @property
    def current_phase(self) -> str:
        """The congestion phase events are currently tagged with."""
        return self._phase

    def _record(self, time: float, kind: str, detail: str) -> None:
        self.events.append(
            TimelineEvent(time=time, kind=kind, detail=detail, phase=self._phase)
        )

    # -- hooks ----------------------------------------------------------

    def on_packet_sent(self, direction: str, time: float) -> None:
        super().on_packet_sent(direction, time)
        if self.record_packets:
            self._record(time, "send", direction)

    def on_packet_dropped(self, direction: str, time: float) -> None:
        super().on_packet_dropped(direction, time)
        self._record(time, "drop", direction)

    def on_packet_delivered(self, direction: str, time: float) -> None:
        super().on_packet_delivered(direction, time)
        if self.record_packets:
            self._record(time, "delivery", direction)

    def on_rto_armed(self, time: float, rto: float) -> None:
        super().on_rto_armed(time, rto)
        if self.record_packets:
            self._record(time, "rto_armed", f"rto={rto:.6g}")

    def on_rto_fired(
        self, time: float, seq: int, spurious: bool, backoff_exponent: int
    ) -> None:
        super().on_rto_fired(time, seq, spurious, backoff_exponent)
        tag = "spurious" if spurious else "genuine"
        self._record(
            time, "rto_fired", f"seq={seq} {tag} backoff={backoff_exponent}"
        )

    def on_phase_transition(
        self, time: float, old_phase: str, new_phase: str, cwnd: float
    ) -> None:
        super().on_phase_transition(time, old_phase, new_phase, cwnd)
        # Tag the transition event itself with the phase being *left*,
        # then switch: subsequent events belong to the new phase.
        self._record(time, "phase", f"{old_phase} -> {new_phase} cwnd={cwnd:.6g}")
        self._phase = new_phase

    def on_budget_exceeded(self, kind: str) -> None:
        super().on_budget_exceeded(kind)
        self._record(0.0, "budget", kind)

    # -- queries --------------------------------------------------------

    def events_of_kind(self, kind: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.kind == kind]

    def events_in_phase(self, phase: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.phase == phase]
