"""The telemetry protocol: hook points the instrumented stack calls.

:class:`Telemetry` declares every hook as a no-op method, so an
implementation overrides only what it cares about; the hooks mirror the
transport-layer observables the paper measures (per-packet loss,
timeout-recovery behaviour, congestion-phase transitions) plus the
engine-level counters a production deployment needs (events scheduled /
fired / cancelled, watchdog trips).

**Zero overhead when off.**  ``None`` and :class:`NullTelemetry` both
mean "telemetry disabled"; instrumented components normalise either to
``None`` via :func:`active` at construction time and guard every hook
call with a plain ``is not None`` check — the packet and event hot
paths execute exactly the same instructions as before the telemetry
layer existed.  The golden-trace digest and the engine-throughput
benchmark are pinned against that guarantee.

Hook-point map (where each hook fires):

========================  ====================================================
hook                      caller
========================  ====================================================
``on_event_scheduled``    ``Simulator.schedule`` / ``schedule_call``
``on_events_fired``       ``Simulator.run`` (batched, after the loop exits)
``on_event_cancelled``    ``EventHandle.cancel`` (first call only)
``on_packet_sent``        ``Link.send`` / ``BottleneckLink.send``
``on_packet_dropped``     the loss / overflow branch of the same
``on_packet_delivered``   the link's deliver callback actually firing
``on_packets_sent``       ``send_burst`` (batch-capable sinks only)
``on_packets_dropped``    the burst's drop tally (batch-capable sinks)
``on_events_scheduled``   ``Simulator.schedule_calls_at`` (batched)
``on_rto_armed``          the sender arming its retransmission timer
``on_rto_fired``          a retransmission timeout actually handled
``on_phase_transition``   every congestion-phase change at the sender
``on_budget_exceeded``    ``run_flow`` when a watchdog budget trips
========================  ====================================================
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NullTelemetry", "Telemetry", "active"]


class Telemetry:
    """Base class / protocol for telemetry sinks: every hook is a no-op.

    Subclass and override the hooks you need; see the module docstring
    for when each fires.  Implementations must not raise from hooks and
    must not perturb simulation state — they observe, never steer.
    """

    __slots__ = ()

    #: Whether this sink accepts the batched ``on_packets_*`` /
    #: ``on_events_scheduled`` hooks in place of per-packet calls.
    #: Sinks whose contract depends on per-packet hook *order* (e.g. a
    #: timeline recorder) leave this False and the links fall back to
    #: the exact scalar hook sequence; order-insensitive sinks (the
    #: counters) set it True and receive one call per burst.
    batched_packet_hooks = False

    # -- engine ---------------------------------------------------------

    def on_event_scheduled(self) -> None:
        """One event pushed onto the engine's queue."""

    def on_events_scheduled(self, count: int) -> None:
        """``count`` events pushed in one batch (``schedule_calls_at``).

        Default unrolls to :meth:`on_event_scheduled` so sinks that
        only override the scalar hook keep exact counts.
        """
        for _ in range(count):
            self.on_event_scheduled()

    def on_events_fired(self, count: int) -> None:
        """``count`` callbacks executed by a ``Simulator.run`` call."""

    def on_event_cancelled(self) -> None:
        """A scheduled event was cancelled before firing."""

    # -- channel --------------------------------------------------------

    def on_packet_sent(self, direction: str, time: float) -> None:
        """One wire transmission entered a link (``"data"`` or ``"ack"``)."""

    def on_packet_dropped(self, direction: str, time: float) -> None:
        """The channel (loss model or queue overflow) dropped it."""

    def on_packet_delivered(self, direction: str, time: float) -> None:
        """It survived and reached the receiving endpoint."""

    def on_packets_sent(self, direction: str, time: float, count: int) -> None:
        """``count`` transmissions entered a link as one burst.

        Only called on sinks with :attr:`batched_packet_hooks` True (or
        via this default, which unrolls to the scalar hook).
        """
        for _ in range(count):
            self.on_packet_sent(direction, time)

    def on_packets_dropped(self, direction: str, time: float, count: int) -> None:
        """``count`` of a burst's packets were dropped (same contract)."""
        for _ in range(count):
            self.on_packet_dropped(direction, time)

    # -- sender ---------------------------------------------------------

    def on_rto_armed(self, time: float, rto: float) -> None:
        """The retransmission timer was (re)armed for ``rto`` seconds."""

    def on_rto_fired(
        self, time: float, seq: int, spurious: bool, backoff_exponent: int
    ) -> None:
        """A retransmission timeout was handled (outstanding data existed).

        ``spurious`` is ground truth only a simulator can know: the
        oldest outstanding segment's latest copy was *not* dropped by
        the channel, so the retransmission was unnecessary — the
        paper's spurious-timeout phenomenon (Section III-B.2).
        """

    def on_phase_transition(
        self, time: float, old_phase: str, new_phase: str, cwnd: float
    ) -> None:
        """The sender's congestion phase changed."""

    # -- robustness -----------------------------------------------------

    def on_budget_exceeded(self, kind: str) -> None:
        """A watchdog budget tripped (``"events"``/``"sim-time"``/``"wall-clock"``)."""


class NullTelemetry(Telemetry):
    """The default sink: explicitly disabled telemetry.

    Components treat a ``NullTelemetry`` exactly like ``None`` (see
    :func:`active`), so passing one costs nothing on any hot path — it
    exists so call sites can say ``telemetry=NullTelemetry()`` instead
    of the ambiguous ``telemetry=None`` and so user code can hold a
    sink-shaped object unconditionally.
    """

    __slots__ = ()


def active(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalise a telemetry argument to ``None`` when it is disabled.

    Instrumented components call this once at construction and keep the
    result, so their per-packet / per-event guard is a single
    ``is not None`` check — the zero-overhead-when-off contract.
    """
    if telemetry is None or isinstance(telemetry, NullTelemetry):
        return None
    return telemetry
