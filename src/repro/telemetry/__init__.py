"""repro.telemetry: zero-overhead-when-off instrumentation for the stack.

The paper's whole contribution rests on transport-layer observables —
per-packet loss, timeout-recovery behaviour, spurious RTOs, phase
trajectories — and this subpackage makes them available *live* instead
of only post-hoc through :class:`~repro.simulator.metrics.FlowLog`:

* :class:`Telemetry` — the hook protocol (all hooks no-ops), with
  :class:`NullTelemetry` as the explicit "off" sink.  ``None`` and
  ``NullTelemetry`` are equivalent and cost nothing on hot paths.
* :class:`CountingTelemetry` — live counters (events scheduled /
  fired / cancelled, packets sent / dropped / delivered per direction,
  RTO armed / fired / spurious, cwnd phase transitions, watchdog
  trips) that reconcile exactly with the flow log.
* :class:`TimelineTelemetry` — counters plus phase-tagged
  :class:`TimelineEvent` records for diagnosis.
* :class:`CampaignTelemetry` — per-flow summaries merged in spec
  order into one canonical-JSON artefact, byte-identical between
  serial and process-pool backends.
* :class:`ProgressReporter` + :func:`telemetry_scope` — the opt-in
  ``--telemetry`` / ``--progress`` plumbing of the experiments CLI.

Enable per flow via ``run_flow(..., telemetry=CountingTelemetry())``
or per campaign via ``Executor(telemetry=True)`` /
``generate_dataset(..., telemetry=True)``.
"""

from repro.telemetry.base import NullTelemetry, Telemetry, active
from repro.telemetry.campaign import CampaignTelemetry
from repro.telemetry.counters import (
    COUNTER_NAMES,
    CountingTelemetry,
    FlowTelemetrySummary,
)
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.scope import (
    TelemetryConfig,
    current_telemetry_config,
    telemetry_scope,
)
from repro.telemetry.timeline import TimelineEvent, TimelineTelemetry

__all__ = [
    "COUNTER_NAMES",
    "CampaignTelemetry",
    "CountingTelemetry",
    "FlowTelemetrySummary",
    "NullTelemetry",
    "ProgressReporter",
    "Telemetry",
    "TelemetryConfig",
    "TimelineEvent",
    "TimelineTelemetry",
    "active",
    "current_telemetry_config",
    "telemetry_scope",
]
