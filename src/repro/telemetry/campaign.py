"""Campaign-level telemetry: per-flow summaries merged into one artefact.

The executor collects one
:class:`~repro.telemetry.counters.FlowTelemetrySummary` per successful
flow and merges them — **in spec order** — into a
:class:`CampaignTelemetry`.  Everything here is wall-clock-free, so the
canonical JSON (:meth:`CampaignTelemetry.to_json`) is byte-identical
between serial and process-pool runs of the same campaign, exactly
like :class:`~repro.robustness.campaign.CampaignReport` next to which
it is reported.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.telemetry.counters import COUNTER_NAMES, FlowTelemetrySummary

__all__ = ["CampaignTelemetry"]


@dataclass
class CampaignTelemetry:
    """Aggregated counters across every instrumented flow of a campaign."""

    flows: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def merge_flow(self, summary: FlowTelemetrySummary) -> None:
        """Fold one flow's counters into the aggregate."""
        self.flows += 1
        counters = self.counters
        for name, value in summary.counters.items():
            counters[name] = counters.get(name, 0) + int(value)

    def merge(self, other: "CampaignTelemetry") -> None:
        """Fold another aggregate (e.g. one experiment's) into this one."""
        self.flows += other.flows
        counters = self.counters
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + int(value)

    def get(self, name: str) -> int:
        return int(self.counters.get(name, 0))

    # -- rendering ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Counters in canonical declaration order (zeros included for
        known counters, so the schema is stable across campaigns)."""
        ordered: Dict[str, int] = {
            name: self.get(name) for name in COUNTER_NAMES
        }
        for name in sorted(self.counters):
            if name not in ordered:  # custom sinks may add counters
                ordered[name] = self.counters[name]
        return {"flows": self.flows, "counters": ordered}

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — byte-identical across
        backends and reruns with the same seed."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        """One line for logs: packets, drops, RTOs, spurious share."""
        packets = self.get("packets_sent")
        dropped = self.get("packets_dropped")
        fired = self.get("rto_fired")
        spurious = self.get("rto_spurious")
        loss = dropped / packets if packets else 0.0
        return (
            f"{self.flows} flows, {packets} packets ({dropped} dropped, "
            f"{loss:.2%}), {fired} RTOs ({spurious} spurious), "
            f"{self.get('events_fired')} engine events"
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "CampaignTelemetry":
        """Inverse of :meth:`to_dict` (for loading serialised artefacts)."""
        counters = dict(data.get("counters", {}))  # type: ignore[arg-type]
        return cls(
            flows=int(data.get("flows", 0)),  # type: ignore[arg-type]
            counters={name: int(value) for name, value in counters.items()},
        )
