"""Opt-in wall-clock progress reporting for long campaigns.

A :class:`ProgressReporter` prints ``flows done/total``, the current
rate, and an ETA to a stream (stderr by default) as the executor's
backend completes payloads.  It is *presentation only*: nothing it
prints feeds back into results or reports, so enabling progress can
never change campaign bytes — which is why it is the one telemetry
component allowed to read the wall clock.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.util.errors import ConfigurationError

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Throttled ``done/total`` progress lines with rate and ETA."""

    def __init__(
        self,
        total: int,
        label: str = "flows",
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.5,
    ) -> None:
        if total < 0:
            raise ConfigurationError(f"total must be >= 0, got {total}")
        if min_interval_s < 0.0:
            raise ConfigurationError(
                f"min_interval_s must be >= 0, got {min_interval_s}"
            )
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self._start = time.monotonic()
        self._last_print = -float("inf")
        self._finished = False

    def update(self, done: int) -> None:
        """Record completion of ``done`` items so far; print if due.

        Backends call this monotonically (``done`` only grows); the
        final item always prints regardless of throttling.
        """
        self.done = done
        now = time.monotonic()
        is_final = done >= self.total
        if not is_final and now - self._last_print < self.min_interval_s:
            return
        if is_final:
            # The final line is finish()'s job; marking finished here
            # keeps "done/total" from printing twice.
            self._finished = True
        self._last_print = now
        self._write(now)

    def finish(self) -> None:
        """Emit the final line (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._write(time.monotonic())

    def _write(self, now: float) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        if self.done and self.done < self.total:
            eta = (self.total - self.done) / max(rate, 1e-9)
            eta_text = f", ETA {eta:.0f}s"
        else:
            eta_text = ""
        print(
            f"{self.label} {self.done}/{self.total} "
            f"({rate:.1f}/s{eta_text})",
            file=self.stream,
            flush=True,
        )
