"""Ambient campaign-telemetry configuration (the ``--telemetry`` plumbing).

Mirrors :func:`repro.robustness.watchdog.watchdog_scope`: the
experiments CLI installs a :class:`TelemetryConfig` for a whole
invocation, and every :class:`~repro.exec.Executor` run inside the
scope picks it up without any experiment driver having to thread a
parameter.  Like the ambient watchdog, the configuration does **not**
cross process boundaries by itself — the executor bakes collection
into each :class:`~repro.exec.FlowSpec` before submission, and workers
ship frozen per-flow summaries back.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional, TextIO

from repro.telemetry.campaign import CampaignTelemetry

__all__ = ["TelemetryConfig", "current_telemetry_config", "telemetry_scope"]


@dataclass
class TelemetryConfig:
    """What ambient telemetry an executor run should produce.

    ``aggregate``, when given, accumulates every in-scope run's
    campaign telemetry (the CLI prints it once at the end).
    ``collect`` turns per-flow counter collection on; ``progress``
    turns wall-clock progress lines on (independent of collection —
    progress is presentation only and never changes result bytes).
    """

    collect: bool = True
    progress: bool = False
    aggregate: Optional[CampaignTelemetry] = field(default=None)
    progress_stream: Optional[TextIO] = None


_ambient_config: ContextVar[Optional[TelemetryConfig]] = ContextVar(
    "repro_ambient_telemetry", default=None
)


def current_telemetry_config() -> Optional[TelemetryConfig]:
    """The ambient config installed by :func:`telemetry_scope`, if any."""
    return _ambient_config.get()


@contextlib.contextmanager
def telemetry_scope(
    config: Optional[TelemetryConfig],
) -> Iterator[Optional[TelemetryConfig]]:
    """Install ``config`` as the ambient telemetry for the enclosed block.

    Passing ``None`` explicitly shadows (disables) any outer scope.
    """
    token = _ambient_config.set(config)
    try:
        yield config
    finally:
        _ambient_config.reset(token)
