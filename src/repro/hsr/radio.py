"""Speed → channel-quality mapping.

Abstracts the physical-layer effects the paper deliberately scopes out
("the underlying reason ... may be the high wireless bit error rates or
long handoff delays") into a small set of transport-visible parameters:
per-direction random loss, ACK-direction burst episodes, and delay
jitter, all scaling with train speed.

The scaling shape: Doppler-driven bit-error loss grows roughly with
speed; ACK (uplink) bursts become both more frequent and longer, since
uplink power control and cell reselection degrade fastest under rapid
fading.  Constants are calibrated against the paper's Section III
aggregates (data loss 0.75%, ACK loss 0.66% at 300 km/h vs 0.07%
stationary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hsr.provider import Provider
from repro.util.units import kmh_to_mps

__all__ = ["ChannelQuality", "channel_quality"]

#: Speed (m/s) used to normalise the scaling laws — the BTR cruise speed.
REFERENCE_SPEED = kmh_to_mps(300.0)

#: Loss multipliers at reference speed relative to stationary.
_DATA_LOSS_SPEED_GAIN = 4.0
_ACK_LOSS_SPEED_GAIN = 6.0
_JITTER_SPEED_GAIN = 1.0


@dataclass(frozen=True)
class ChannelQuality:
    """Transport-visible channel parameters at one operating point."""

    data_loss: float
    ack_loss: float
    ack_burst_mean_good: float  # mean gap between ACK burst episodes (s)
    ack_burst_mean_bad: float  # mean ACK burst episode length (s)
    jitter_sigma: float
    speed: float
    #: Minimum retransmission-timer value.  Cellular stacks under
    #: mobility see large RTT variance, which inflates the Jacobson RTO
    #: well beyond the wired 200 ms floor; the paper's ~5 s recovery
    #: phases imply a base timer T of roughly 0.5–1 s on these networks.
    rto_floor: float = 0.2

    @property
    def has_ack_bursts(self) -> bool:
        return self.ack_burst_mean_bad > 0.0


def channel_quality(provider: Provider, speed: float) -> ChannelQuality:
    """Channel parameters for a carrier at a given train speed (m/s).

    At speed 0 this returns the carrier's stationary operating point
    (no ACK bursts, base loss rates).  Loss grows linearly in
    ``speed / REFERENCE_SPEED`` up to the calibrated multiplier;
    burst frequency grows the same way.
    """
    if speed < 0.0:
        raise ValueError(f"speed must be >= 0, got {speed}")
    ratio = min(speed / REFERENCE_SPEED, 1.5)  # clamp beyond-HSR speeds
    penalty = 1.0 + (provider.coverage_penalty - 1.0) * ratio
    # Random (bit-error) loss scales with speed only; poor coverage
    # manifests as more frequent/longer burst episodes, not a higher
    # background BER.
    data_loss = provider.base_data_loss * (1.0 + _DATA_LOSS_SPEED_GAIN * ratio)
    ack_loss = provider.base_ack_loss * (1.0 + _ACK_LOSS_SPEED_GAIN * ratio)
    if ratio > 0.05:
        mean_good = provider.ack_burst_spacing / (ratio * penalty)
        mean_bad = provider.ack_burst_mean_duration * (0.5 + ratio)
    else:
        mean_good, mean_bad = float("inf"), 0.0
    jitter = 0.004 + 0.012 * _JITTER_SPEED_GAIN * ratio
    rto_floor = 0.2 + 0.5 * ratio
    return ChannelQuality(
        data_loss=min(data_loss, 0.5),
        ack_loss=min(ack_loss, 0.5),
        ack_burst_mean_good=mean_good,
        ack_burst_mean_bad=mean_bad,
        jitter_sigma=jitter,
        speed=speed,
        rto_floor=rto_floor,
    )
