"""Named, parameterised channel hooks: post-build transforms as data.

``Scenario.channel_hook`` historically took an opaque callable
``(built, seed) -> built``.  Opaque callables defeat everything the
rest of the stack builds on values: they cannot be serialized into a
scenario document, cannot be content-hashed into a
:func:`~repro.store.keys.flow_key` (lambdas and closures raise
:class:`~repro.store.keys.UnhashableSpecError`, silently bypassing the
result store), and cannot be rendered back out by tooling.

A :class:`HookSpec` is the declarative replacement: a registered hook
*name* plus a sorted tuple of ``(key, value)`` parameters — pure data,
picklable, canonically encodable, and resolvable to the callable it
stands for at build time.  Built-in hooks:

* ``"faults"`` — a :class:`~repro.robustness.faults.FaultPlan` by its
  field values; the declarative form of chaos injection.
* ``"extra_loss"`` — an additional Gilbert–Elliott loss overlay on one
  direction (tunnel fades, weather degradation, station congestion).
* ``"chain"`` — sequential composition of other hook specs.

Custom hooks register a factory with :func:`register_hook`; the factory
receives the spec's parameters as keyword arguments and returns the
``(built, seed) -> built`` transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.simulator.channel import CompositeLoss, GilbertElliottLoss
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "HookSpec",
    "chain_hooks",
    "hook_names",
    "register_hook",
    "resolve_hook",
    "unregister_hook",
]

#: value types a hook parameter may carry (tuples may nest HookSpecs)
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _freeze_param(name: str, value: object) -> object:
    """Normalise one parameter value to immutable, canonical data."""
    if isinstance(value, _SCALAR_TYPES) or isinstance(value, HookSpec):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param(name, item) for item in value)
    raise ConfigurationError(
        f"hook parameter {name!r} has unsupported type "
        f"{type(value).__name__!r}; hook specs carry plain data only"
    )


@dataclass(frozen=True)
class HookSpec:
    """A named post-build transform with pure-data parameters.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so equality,
    pickling, and canonical encoding are order-independent.  Construct
    via :meth:`make` (keyword arguments) or supply the tuple directly.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("HookSpec needs a non-empty hook name")
        frozen = tuple(
            sorted((str(key), _freeze_param(str(key), value))
                   for key, value in self.params)
        )
        keys = [key for key, _ in frozen]
        if len(keys) != len(set(keys)):
            raise ConfigurationError(
                f"duplicate hook parameter in {self.name!r} spec: {keys}"
            )
        object.__setattr__(self, "params", frozen)

    @classmethod
    def make(cls, hook_name: str, **params: object) -> "HookSpec":
        """Build a spec from keyword parameters.

        The positional is called ``hook_name`` (not ``name``) so hooks
        may themselves take a ``name`` parameter — ``"faults"`` does.
        """
        return cls(name=hook_name, params=tuple(params.items()))

    def as_dict(self) -> Dict[str, object]:
        """The parameters as a plain dict (insertion order = sorted keys)."""
        return dict(self.params)

    def resolve(self) -> Callable:
        """The ``(built, seed) -> built`` callable this spec names."""
        return resolve_hook(self)


#: name -> factory(**params) -> (built, seed) -> built
_HOOK_REGISTRY: Dict[str, Callable] = {}


def register_hook(name: str, factory: Callable) -> None:
    """Register ``factory`` under ``name``.

    The factory is called with the spec's parameters as keyword
    arguments and must return a ``(built, seed) -> built`` transform.
    Re-registering an existing name raises — hooks are part of a
    scenario's identity, and silently replacing one would let two runs
    disagree about what a stored document means.
    """
    if not name:
        raise ConfigurationError("hook name must be non-empty")
    if name in _HOOK_REGISTRY:
        raise ConfigurationError(f"hook {name!r} is already registered")
    _HOOK_REGISTRY[name] = factory


def unregister_hook(name: str) -> None:
    """Remove a registered hook (tests of custom hooks clean up with this)."""
    if name not in _HOOK_REGISTRY:
        raise ConfigurationError(f"hook {name!r} is not registered")
    del _HOOK_REGISTRY[name]


def hook_names() -> Tuple[str, ...]:
    """Registered hook names, sorted."""
    return tuple(sorted(_HOOK_REGISTRY))


def resolve_hook(spec: HookSpec) -> Callable:
    """Materialise the transform a :class:`HookSpec` names."""
    try:
        factory = _HOOK_REGISTRY[spec.name]
    except KeyError:
        raise ConfigurationError(
            f"unknown channel hook {spec.name!r}; registered: "
            f"{sorted(_HOOK_REGISTRY)}"
        ) from None
    return factory(**spec.as_dict())


def chain_hooks(specs: Sequence[HookSpec]) -> HookSpec:
    """One spec composing ``specs`` in order (flattens nested chains).

    Zero specs is a configuration error; one spec is returned as
    itself — a chain of one would hash differently from the bare spec
    while meaning the same thing.
    """
    flat: list = []
    for spec in specs:
        if spec.name == "chain":
            flat.extend(spec.as_dict()["hooks"])
        else:
            flat.append(spec)
    if not flat:
        raise ConfigurationError("chain_hooks needs at least one hook spec")
    if len(flat) == 1:
        return flat[0]
    return HookSpec.make("chain", hooks=tuple(flat))


# -- built-in hooks -----------------------------------------------------


def _faults_factory(**params: object) -> Callable:
    """``"faults"``: a FaultPlan reconstructed from its field values."""
    from repro.robustness.faults import FaultPlan

    return FaultPlan(**params).apply


def _chain_factory(hooks: Sequence[HookSpec] = ()) -> Callable:
    """``"chain"``: apply each hook spec in order."""
    resolved = [resolve_hook(spec) for spec in hooks]

    def apply_chain(built, seed: int):
        for hook in resolved:
            built = hook(built, seed)
        return built

    return apply_chain


def _extra_loss_factory(
    direction: str = "data",
    mean_good_s: float = 30.0,
    mean_bad_s: float = 1.0,
    loss_good: float = 0.0,
    loss_bad: float = 1.0,
    label: str = "extra-loss",
) -> Callable:
    """``"extra_loss"``: a Gilbert–Elliott overlay on one direction.

    The overlay's RNG stream is derived from the flow's channel seed
    and ``label``, independent of the scenario's own streams — adding
    an overlay never perturbs the base channel's draw sequence (the
    same isolation contract as :meth:`FaultPlan.apply`).
    """
    if direction not in ("data", "ack"):
        raise ConfigurationError(
            f"extra_loss direction must be 'data' or 'ack', got {direction!r}"
        )

    def apply_extra_loss(built, seed: int):
        from dataclasses import replace

        overlay = GilbertElliottLoss(
            RngStream(seed, f"hook/extra-loss/{label}"),
            mean_good_duration=mean_good_s,
            mean_bad_duration=mean_bad_s,
            loss_good=loss_good,
            loss_bad=loss_bad,
        )
        if direction == "data":
            return replace(
                built, data_loss=CompositeLoss([built.data_loss, overlay])
            )
        return replace(built, ack_loss=CompositeLoss([built.ack_loss, overlay]))

    return apply_extra_loss


register_hook("faults", _faults_factory)
register_hook("chain", _chain_factory)
register_hook("extra_loss", _extra_loss_factory)
