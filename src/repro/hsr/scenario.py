"""Scenario composition: mobility + cells + radio + provider → channels.

A :class:`Scenario` assembles everything the simulator needs to run one
flow in a given environment: the data-direction and ACK-direction loss
models (base random loss ∪ handoff outages ∪ ACK burst episodes) and a
:class:`~repro.simulator.connection.ConnectionConfig`.

Presets mirror the paper's measurement settings: ``hsr_scenario``
(300 km/h BTR cruise), ``stationary_scenario``, ``driving_scenario``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Union

from repro.hsr.cells import CellLayout, handoff_times, outage_windows
from repro.hsr.hooks import HookSpec, resolve_hook
from repro.hsr.mobility import (
    MobilityProfile,
    btr_profile,
    driving_profile,
    stationary_profile,
)
from repro.hsr.provider import CHINA_MOBILE, Provider
from repro.hsr.radio import channel_quality
from repro.simulator.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    HandoffLoss,
    LossModel,
    NoLoss,
    RoundCorrelatedLoss,
)
from repro.simulator.connection import ConnectionConfig
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "Scenario",
    "BuiltChannels",
    "hsr_scenario",
    "stationary_scenario",
    "driving_scenario",
]

#: Fraction of handoff-window transmissions lost (outages are near-total).
_OUTAGE_LOSS = 0.92
#: ACK loss probability inside an ACK burst episode.
_ACK_BURST_LOSS = 0.97
#: Expected number of packets lost per round-correlated loss event; the
#: per-packet trigger rate is the target lifetime loss rate divided by
#: this tail length (roughly half a congestion window).
_ROUND_LOSS_TAIL = 20.0
#: During a handoff, the downlink (data direction) recovers first; the
#: uplink (ACK direction) stays dead for the whole outage.  This is the
#: mechanism behind the paper's spurious timeouts: data flows again but
#: its acknowledgements keep dying.
_DATA_OUTAGE_FRACTION = 0.75


@dataclass
class BuiltChannels:
    """The simulator-ready artefacts produced by :meth:`Scenario.build`."""

    data_loss: LossModel
    ack_loss: LossModel
    config: ConnectionConfig
    outages: Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class Scenario:
    """One measurement environment (mobility profile × carrier)."""

    name: str
    mobility: MobilityProfile
    provider: Provider = CHINA_MOBILE
    cells: CellLayout = CellLayout()
    #: time into the trip at which the measured flow starts; the BTR
    #: default places it in the 300 km/h cruise segment.
    flow_start_offset: float = 300.0
    #: optional post-build transform applied as the last step of
    #: :meth:`build` — the attachment point for fault injection
    #: (:mod:`repro.robustness.faults`) and other channel wrappers.
    #: Preferably a declarative :class:`~repro.hsr.hooks.HookSpec`
    #: (serializable, content-hashable — the scenario stays cacheable);
    #: a raw ``(built, seed) -> built`` callable is still accepted but
    #: makes the scenario opaque to the result store and to the
    #: scenario-document serializer.
    channel_hook: Optional[
        Union[HookSpec, Callable[["BuiltChannels", int], "BuiltChannels"]]
    ] = None

    def cruise_speed(self) -> float:
        """Train speed during the measured window."""
        if self.mobility.peak_speed == 0.0:
            return 0.0
        return self.mobility.speed_at(self.flow_start_offset)

    def build(
        self, duration: float, seed: int, b: int = 2, wmax: Optional[float] = None
    ) -> BuiltChannels:
        """Materialise loss models and a connection config for one flow."""
        if not math.isfinite(duration) or duration <= 0.0:
            raise ConfigurationError(
                f"duration must be positive and finite, got {duration}"
            )
        if not math.isfinite(self.flow_start_offset) or self.flow_start_offset < 0.0:
            raise ConfigurationError(
                f"flow_start_offset must be >= 0 and finite, got "
                f"{self.flow_start_offset}"
            )
        rng = RngStream(seed, f"scenario/{self.name}")
        quality = channel_quality(self.provider, self.cruise_speed())

        if self.mobility.peak_speed > 0.0:
            crossings = handoff_times(
                self.mobility, self.cells, duration, start_time=self.flow_start_offset
            )
            # Shift windows into flow-local time.
            windows = [
                (start - self.flow_start_offset, end - self.flow_start_offset)
                for start, end in outage_windows(
                    crossings,
                    rng.spawn("outages"),
                    mean_outage=self.provider.handoff_mean_outage,
                    max_outage=3.0 * self.provider.handoff_mean_outage,
                )
            ]
        else:
            windows = []

        # Data loss is correlated within a round (the Padhye/paper
        # assumption): a loss event wipes the remainder of the round.
        # The trigger rate is scaled down so the *lifetime* loss rate
        # lands near quality.data_loss despite the correlated tail.
        data_components = [
            RoundCorrelatedLoss(
                rng.spawn("data-random"),
                trigger_rate=quality.data_loss / _ROUND_LOSS_TAIL,
                round_duration=self.provider.base_rtt,
            )
        ]
        ack_components = [BernoulliLoss(quality.ack_loss, rng.spawn("ack-random"))]
        if windows:
            data_windows = [
                (start, start + _DATA_OUTAGE_FRACTION * (end - start))
                for start, end in windows
            ]
            data_components.append(
                HandoffLoss(
                    rng.spawn("data-handoff"), data_windows, loss_during=_OUTAGE_LOSS
                )
            )
            ack_components.append(
                HandoffLoss(rng.spawn("ack-handoff"), windows, loss_during=_OUTAGE_LOSS)
            )
        if quality.has_ack_bursts:
            ack_components.append(
                GilbertElliottLoss(
                    rng.spawn("ack-burst"),
                    mean_good_duration=quality.ack_burst_mean_good,
                    mean_bad_duration=quality.ack_burst_mean_bad,
                    loss_good=0.0,
                    loss_bad=_ACK_BURST_LOSS,
                )
            )

        def _compose(components) -> LossModel:
            if not components:
                return NoLoss()
            if len(components) == 1:
                return components[0]
            return CompositeLoss(components)

        # The RTO floor must clear RTT + the delayed-ACK timer with
        # margin, or a straggler's delayed ACK races the timer and every
        # odd window edge times out spuriously even on a clean channel.
        delack = 0.05
        rto_floor = max(
            quality.rto_floor, self.provider.base_rtt + 2.0 * delack + 0.05
        )
        config = ConnectionConfig(
            forward_delay=self.provider.one_way_delay,
            reverse_delay=self.provider.one_way_delay,
            jitter_sigma=quality.jitter_sigma,
            b=b,
            wmax=wmax if wmax is not None else self.provider.wmax,
            duration=duration,
            min_rto=rto_floor,
            initial_rto=max(1.0, 2.0 * rto_floor),
            delack_timeout=delack,
        )
        built = BuiltChannels(
            data_loss=_compose(data_components),
            ack_loss=_compose(ack_components),
            config=config,
            outages=tuple(windows),
        )
        if self.channel_hook is not None:
            hook = (
                resolve_hook(self.channel_hook)
                if isinstance(self.channel_hook, HookSpec)
                else self.channel_hook
            )
            built = hook(built, seed)
        return built

    def with_channel_hook(
        self,
        hook: Optional[
            Union[HookSpec, Callable[["BuiltChannels", int], "BuiltChannels"]]
        ],
    ) -> "Scenario":
        """A copy of this scenario with ``hook`` as its post-build transform."""
        return replace(self, channel_hook=hook)

    @property
    def is_declarative(self) -> bool:
        """True when this scenario is pure data: no opaque callable hook
        (``None`` or a :class:`~repro.hsr.hooks.HookSpec`), so it can be
        serialized to a scenario document and content-hashed for the
        result store."""
        return self.channel_hook is None or isinstance(self.channel_hook, HookSpec)


def hsr_scenario(provider: Provider = CHINA_MOBILE, name: Optional[str] = None) -> Scenario:
    """BTR cruise at 300 km/h (the paper's "high-speed mobility scenario")."""
    return Scenario(
        name=name or f"hsr/{provider.name}",
        mobility=btr_profile(),
        provider=provider,
    )


def stationary_scenario(
    provider: Provider = CHINA_MOBILE, name: Optional[str] = None
) -> Scenario:
    """The stationary baseline (no handoffs, base loss rates)."""
    return Scenario(
        name=name or f"stationary/{provider.name}",
        mobility=stationary_profile(),
        provider=provider,
        flow_start_offset=0.0,
    )


def driving_scenario(
    provider: Provider = CHINA_MOBILE, name: Optional[str] = None
) -> Scenario:
    """Highway driving at ~100 km/h (intermediate regime)."""
    return Scenario(
        name=name or f"driving/{provider.name}",
        mobility=driving_profile(),
        provider=provider,
    )
