"""Whole-trip simulation: a flow profile across the full BTR journey.

The paper's flows are captured at cruise speed; this extension runs a
flow through the *entire* 33-minute trip — acceleration, 300 km/h
cruise, deceleration — by segmenting the trajectory into windows and
rebuilding the channel at each window's instantaneous speed.  The
output is the throughput/loss profile over the journey: flat and fast
near the stations, collapsed in the cruise segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exec import Executor, FlowSpec
from repro.hsr.mobility import MobilityProfile, btr_profile
from repro.hsr.provider import CHINA_MOBILE, Provider
from repro.hsr.scenario import Scenario
from repro.robustness.campaign import RetryPolicy
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.units import mps_to_kmh

__all__ = ["TripSegment", "simulate_trip"]


@dataclass(frozen=True)
class TripSegment:
    """One window of the journey and the flow behaviour inside it."""

    start_time: float
    end_time: float
    position_km: float
    speed_kmh: float
    throughput: float
    data_loss_rate: float
    ack_loss_rate: float
    timeouts: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def simulate_trip(
    provider: Provider = CHINA_MOBILE,
    profile: Optional[MobilityProfile] = None,
    segment_duration: float = 60.0,
    seed: int = 0,
    max_segments: Optional[int] = None,
    workers: int = 1,
) -> List[TripSegment]:
    """Simulate one flow per trajectory window across the whole trip.

    Each segment rebuilds the scenario at the window's start speed (the
    radio quality is quasi-static over a minute), so the sequence of
    segments traces the throughput-vs-position curve of the journey.
    Segments are independent flows, so ``workers`` > 1 fans them out
    over a process pool without changing any segment's result.
    """
    if segment_duration <= 0.0:
        raise ConfigurationError(
            f"segment_duration must be positive, got {segment_duration}"
        )
    trajectory = profile if profile is not None else btr_profile()
    if trajectory.trip_duration == float("inf"):
        raise ConfigurationError("trip simulation needs a moving profile")
    windows: List[tuple] = []
    specs: List[FlowSpec] = []
    start = 0.0
    index = 0
    while start < trajectory.trip_duration:
        if max_segments is not None and index >= max_segments:
            break
        end = min(start + segment_duration, trajectory.trip_duration)
        scenario = Scenario(
            name=f"trip/{provider.name}/{index}",
            mobility=trajectory,
            provider=provider,
            flow_start_offset=start,
        )
        windows.append((start, end))
        specs.append(
            FlowSpec(
                scenario=scenario,
                duration=end - start,
                seed=seed + index,
                flow_id=f"trip/{provider.name}/{index}",
            )
        )
        start = end
        index += 1
    # A trip profile with holes is useless, so failures stay loud: no
    # retries, and the first broken segment raises.
    execution = Executor.for_workers(
        workers, retry_policy=RetryPolicy(max_retries=0)
    ).run(specs)
    segments: List[TripSegment] = []
    for (window_start, window_end), outcome in zip(windows, execution.outcomes):
        if outcome.result is None:
            failure = outcome.failures[0]
            raise SimulationError(
                f"trip segment {outcome.spec.flow_id} failed "
                f"(seed {failure.seed}): {failure.error_type}: {failure.error}"
            )
        result = outcome.result
        segments.append(
            TripSegment(
                start_time=window_start,
                end_time=window_end,
                position_km=trajectory.position_at(window_start) / 1000.0,
                speed_kmh=mps_to_kmh(trajectory.speed_at(window_start)),
                throughput=result.throughput,
                data_loss_rate=result.data_loss_rate,
                ack_loss_rate=result.ack_loss_rate,
                timeouts=len(result.log.timeouts),
            )
        )
    return segments
