"""High-speed-rail environment substrate.

Substitutes for the paper's physical testbed: a BTR-like mobility
profile, a cell layout generating handoff outages, a speed-dependent
radio-quality mapping, and presets for the three measured carriers.
``Scenario.build`` produces simulator-ready loss models.
"""

from repro.hsr.cells import CellLayout, handoff_times, outage_windows
from repro.hsr.hooks import (
    HookSpec,
    chain_hooks,
    hook_names,
    register_hook,
    resolve_hook,
    unregister_hook,
)
from repro.hsr.mobility import (
    MobilityProfile,
    btr_profile,
    driving_profile,
    stationary_profile,
)
from repro.hsr.provider import (
    ALL_PROVIDERS,
    CHINA_MOBILE,
    CHINA_TELECOM,
    CHINA_UNICOM,
    Provider,
    provider_by_name,
)
from repro.hsr.radio import REFERENCE_SPEED, ChannelQuality, channel_quality
from repro.hsr.trip import TripSegment, simulate_trip
from repro.hsr.scenario import (
    BuiltChannels,
    Scenario,
    driving_scenario,
    hsr_scenario,
    stationary_scenario,
)

__all__ = [
    "ALL_PROVIDERS",
    "BuiltChannels",
    "CHINA_MOBILE",
    "CHINA_TELECOM",
    "CHINA_UNICOM",
    "CellLayout",
    "ChannelQuality",
    "HookSpec",
    "MobilityProfile",
    "Provider",
    "REFERENCE_SPEED",
    "Scenario",
    "TripSegment",
    "btr_profile",
    "chain_hooks",
    "channel_quality",
    "driving_profile",
    "driving_scenario",
    "handoff_times",
    "hook_names",
    "hsr_scenario",
    "outage_windows",
    "provider_by_name",
    "register_hook",
    "resolve_hook",
    "simulate_trip",
    "stationary_profile",
    "stationary_scenario",
    "unregister_hook",
]
