"""ISP presets matching the paper's dataset (Table I).

Three tier-1 Chinese carriers were measured on BTR:

* **China Mobile** — LTE (tested January & October 2015): lowest RTT,
  best coverage along the corridor.
* **China Unicom** — 3G (WCDMA): higher RTT, moderate coverage.
* **China Telecom** — 3G (CDMA2000): the paper notes its backbone
  "mainly covers the southern part of China", so the Beijing–Tianjin
  corridor is poorly covered — the reason its flows gain +283% from
  MPTCP in Fig. 12.  Modelled with a large ``coverage_penalty``.

The numbers are calibration constants for the simulator, chosen so the
per-flow statistics land near the paper's Section III aggregates; they
are not claims about the real networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.errors import ConfigurationError

__all__ = [
    "Provider",
    "CHINA_MOBILE",
    "CHINA_UNICOM",
    "CHINA_TELECOM",
    "ALL_PROVIDERS",
    "provider_by_name",
]


@dataclass(frozen=True)
class Provider:
    """Radio/network characteristics of one carrier.

    ``coverage_penalty`` scales every loss parameter in high-speed
    scenarios (1.0 = well-covered corridor); ``base_*`` values are the
    stationary-scenario operating point.
    """

    name: str
    technology: str  # "LTE" | "3G"
    one_way_delay: float  # seconds, per direction
    base_data_loss: float
    base_ack_loss: float
    coverage_penalty: float = 1.0
    wmax: float = 64.0
    handoff_mean_outage: float = 1.2
    ack_burst_mean_duration: float = 0.25
    ack_burst_spacing: float = 30.0

    def __post_init__(self) -> None:
        if self.technology not in ("LTE", "3G"):
            raise ConfigurationError(f"unknown technology {self.technology!r}")
        if self.one_way_delay <= 0.0:
            raise ConfigurationError("one_way_delay must be positive")
        if not 0.0 <= self.base_data_loss < 1.0:
            raise ConfigurationError("base_data_loss out of range")
        if not 0.0 <= self.base_ack_loss < 1.0:
            raise ConfigurationError("base_ack_loss out of range")
        if self.coverage_penalty < 1.0:
            raise ConfigurationError("coverage_penalty must be >= 1")

    @property
    def base_rtt(self) -> float:
        return 2.0 * self.one_way_delay


CHINA_MOBILE = Provider(
    name="China Mobile",
    technology="LTE",
    one_way_delay=0.030,
    base_data_loss=0.0012,
    base_ack_loss=0.0008,
    coverage_penalty=1.0,
    handoff_mean_outage=2.4,
    ack_burst_mean_duration=0.70,
    ack_burst_spacing=70.0,
)

CHINA_UNICOM = Provider(
    name="China Unicom",
    technology="3G",
    one_way_delay=0.055,
    base_data_loss=0.0016,
    base_ack_loss=0.0012,
    coverage_penalty=1.5,
    handoff_mean_outage=3.0,
    ack_burst_mean_duration=0.85,
    ack_burst_spacing=60.0,
)

CHINA_TELECOM = Provider(
    name="China Telecom",
    technology="3G",
    one_way_delay=0.075,
    base_data_loss=0.0022,
    base_ack_loss=0.0016,
    coverage_penalty=2.5,
    handoff_mean_outage=3.6,
    ack_burst_mean_duration=1.00,
    ack_burst_spacing=50.0,
)

ALL_PROVIDERS = (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)

_BY_NAME: Dict[str, Provider] = {provider.name: provider for provider in ALL_PROVIDERS}


def provider_by_name(name: str) -> Provider:
    """Look up one of the three measured carriers by display name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown provider {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
