"""Cellular layout along the track and the handoff schedule it induces.

Cells are spaced along the line; every boundary crossing is a handoff.
At 300 km/h a typical 2–3 km cell is crossed in ~25–35 s, so a flow
experiences a handoff every half-minute — the dominant source of the
bidirectional outage bursts behind the paper's long recovery phases.
Each handoff produces an outage window whose duration is drawn from a
provider-dependent distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hsr.mobility import MobilityProfile
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["CellLayout", "handoff_times", "outage_windows"]


@dataclass(frozen=True)
class CellLayout:
    """Evenly spaced cells with an optional phase offset (metres)."""

    spacing: float = 2_500.0
    offset: float = 1_250.0

    def __post_init__(self) -> None:
        if self.spacing <= 0.0:
            raise ConfigurationError(f"cell spacing must be positive, got {self.spacing}")
        if not 0.0 <= self.offset < self.spacing:
            raise ConfigurationError(
                f"offset must be in [0, spacing), got {self.offset}"
            )

    def boundaries_between(self, start_pos: float, end_pos: float) -> List[float]:
        """Positions of cell boundaries in the open interval (start, end]."""
        if end_pos < start_pos:
            raise ConfigurationError("end position before start position")
        boundaries: List[float] = []
        k = int((start_pos - self.offset) // self.spacing) + 1
        while True:
            boundary = self.offset + k * self.spacing
            if boundary > end_pos:
                break
            if boundary > start_pos:
                boundaries.append(boundary)
            k += 1
        return boundaries


def handoff_times(
    profile: MobilityProfile,
    layout: CellLayout,
    duration: float,
    start_time: float = 0.0,
    time_step: float = 1.0,
) -> List[float]:
    """Times (s) at which the train crosses a cell boundary.

    Found by scanning the trajectory at ``time_step`` resolution and
    refining each crossing by bisection to millisecond accuracy —
    robust for any monotone position function.
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    times: List[float] = []
    t = start_time
    end = start_time + duration
    position = profile.position_at(t)
    while t < end:
        t_next = min(t + time_step, end)
        next_position = profile.position_at(t_next)
        for boundary in layout.boundaries_between(position, next_position):
            times.append(_refine_crossing(profile, boundary, t, t_next))
        t, position = t_next, next_position
    return times


def _refine_crossing(
    profile: MobilityProfile, boundary: float, lo: float, hi: float
) -> float:
    for _ in range(20):  # ~1e-6 of the bracket
        mid = (lo + hi) / 2.0
        if profile.position_at(mid) < boundary:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def outage_windows(
    crossing_times: List[float],
    rng: RngStream,
    mean_outage: float = 1.2,
    min_outage: float = 0.2,
    max_outage: float = 4.0,
) -> List[Tuple[float, float]]:
    """Turn handoff instants into outage intervals.

    Outage durations are log-normal-ish (exponential clipped to
    [min, max]); overlapping windows are merged so the result satisfies
    the sorted/disjoint contract of
    :class:`repro.simulator.channel.HandoffLoss`.
    """
    if mean_outage <= 0.0:
        raise ConfigurationError(f"mean_outage must be positive, got {mean_outage}")
    windows: List[Tuple[float, float]] = []
    for crossing in sorted(crossing_times):
        length = min(max(rng.expovariate(1.0 / mean_outage), min_outage), max_outage)
        start, end = crossing, crossing + length
        if windows and start <= windows[-1][1]:
            windows[-1] = (windows[-1][0], max(windows[-1][1], end))
        else:
            windows.append((start, end))
    return windows
