"""Train mobility profiles along a rail line.

The paper's testbed is the Beijing–Tianjin Intercity Railway: ~120 km,
33-minute one-way trips, steady peak speed ≈ 300 km/h.  A trapezoidal
speed profile (constant acceleration → cruise → constant deceleration)
reproduces those figures closely; `stationary` and `driving`
(~100 km/h, the comparison point of [8] in the paper) profiles are
provided for the baseline scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import kmh_to_mps

__all__ = [
    "MobilityProfile",
    "btr_profile",
    "stationary_profile",
    "driving_profile",
]

#: Comfortable HSR service acceleration (m/s^2).
DEFAULT_ACCELERATION = 0.5


@dataclass(frozen=True)
class MobilityProfile:
    """Trapezoidal speed profile over a route.

    ``peak_speed`` in m/s, ``acceleration`` in m/s², ``route_length``
    in metres.  A ``peak_speed`` of 0 models the stationary scenario
    (infinite dwell at position 0).
    """

    name: str
    peak_speed: float
    acceleration: float = DEFAULT_ACCELERATION
    route_length: float = 120_000.0

    def __post_init__(self) -> None:
        if self.peak_speed < 0.0:
            raise ConfigurationError(f"peak_speed must be >= 0, got {self.peak_speed}")
        if self.peak_speed > 0.0 and self.acceleration <= 0.0:
            raise ConfigurationError(
                f"acceleration must be positive for a moving profile, got {self.acceleration}"
            )
        if self.route_length <= 0.0:
            raise ConfigurationError(
                f"route_length must be positive, got {self.route_length}"
            )
        if self.peak_speed > 0.0 and 2 * self._ramp_distance() > self.route_length:
            raise ConfigurationError(
                "route too short to reach peak speed; lower peak_speed or raise acceleration"
            )

    # -- derived geometry -------------------------------------------------

    def _ramp_time(self) -> float:
        return self.peak_speed / self.acceleration if self.peak_speed else 0.0

    def _ramp_distance(self) -> float:
        ramp_time = self._ramp_time()
        return 0.5 * self.acceleration * ramp_time**2

    @property
    def cruise_distance(self) -> float:
        return self.route_length - 2.0 * self._ramp_distance()

    @property
    def trip_duration(self) -> float:
        """One-way travel time in seconds (``inf`` for stationary)."""
        if self.peak_speed == 0.0:
            return float("inf")
        cruise_time = self.cruise_distance / self.peak_speed
        return 2.0 * self._ramp_time() + cruise_time

    # -- kinematics --------------------------------------------------------

    def speed_at(self, t: float) -> float:
        """Train speed (m/s) at time ``t`` since departure."""
        if t < 0.0:
            raise ConfigurationError(f"time must be >= 0, got {t}")
        if self.peak_speed == 0.0:
            return 0.0
        ramp_time = self._ramp_time()
        trip = self.trip_duration
        if t >= trip:
            return 0.0
        if t < ramp_time:
            return self.acceleration * t
        if t > trip - ramp_time:
            return self.acceleration * (trip - t)
        return self.peak_speed

    def position_at(self, t: float) -> float:
        """Distance travelled (m) at time ``t`` since departure."""
        if t < 0.0:
            raise ConfigurationError(f"time must be >= 0, got {t}")
        if self.peak_speed == 0.0:
            return 0.0
        ramp_time = self._ramp_time()
        ramp_distance = self._ramp_distance()
        trip = self.trip_duration
        if t >= trip:
            return self.route_length
        if t < ramp_time:
            return 0.5 * self.acceleration * t**2
        if t <= trip - ramp_time:
            return ramp_distance + self.peak_speed * (t - ramp_time)
        remaining = trip - t
        return self.route_length - 0.5 * self.acceleration * remaining**2


def btr_profile() -> MobilityProfile:
    """Beijing–Tianjin Intercity Railway: 120 km at a 300 km/h peak."""
    return MobilityProfile(
        name="btr-300kmh", peak_speed=kmh_to_mps(300.0), route_length=120_000.0
    )


def stationary_profile() -> MobilityProfile:
    """The paper's stationary comparison scenario."""
    return MobilityProfile(name="stationary", peak_speed=0.0)


def driving_profile() -> MobilityProfile:
    """Highway driving (~100 km/h), the regime where [8] saw little TCP impact."""
    return MobilityProfile(
        name="driving-100kmh", peak_speed=kmh_to_mps(100.0), route_length=120_000.0
    )
