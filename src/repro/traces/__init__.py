"""Trace capture, analysis, and the synthetic Table-I dataset.

This is the measurement toolkit of the reproduction: it consumes
simulator flow logs (standing in for wireshark captures) and produces
every per-flow statistic the paper's Section III reports — loss rates,
arrival-latency series, spurious-timeout classification, recovery-phase
statistics, ACK-loss/timeout correlation — plus the campaign generator
that regenerates the dataset of Table I.
"""

from repro.traces.analysis import (
    LOST_MARKER,
    FlowSummary,
    LatencyPoint,
    arrival_latency_series,
    estimate_rtt,
    flow_summary,
)
from repro.traces.capture import capture_flow
from repro.traces.correlation import (
    MeasuredInputs,
    ScatterPoint,
    measured_model_inputs,
    scatter_correlation,
    scatter_envelope,
    timeout_ack_scatter,
)
from repro.traces.dataset import (
    FlowRecord,
    Table1Row,
    dataset_records,
    records_from_json,
    records_to_json,
    table1_rows,
)
from repro.traces.events import FlowMetadata, FlowTrace
from repro.traces.export import (
    campaign_report,
    open_csv,
    write_cwnd_csv,
    write_flow_summary_csv,
    write_latency_csv,
)
from repro.traces.rounds import (
    AckRound,
    measured_ack_burst_rate,
    segment_ack_rounds,
)
from repro.traces.generator import (
    PAPER_CAMPAIGN,
    CampaignEntry,
    SyntheticDataset,
    generate_dataset,
    generate_stationary_reference,
)
from repro.traces.timeouts import (
    ClassifiedTimeout,
    RecoveryStats,
    classify_timeouts,
    loss_rate_pair,
    recovery_stats,
    spurious_fraction,
    timeout_sequence_lengths,
)

__all__ = [
    "AckRound",
    "CampaignEntry",
    "ClassifiedTimeout",
    "FlowMetadata",
    "FlowRecord",
    "FlowSummary",
    "FlowTrace",
    "LOST_MARKER",
    "LatencyPoint",
    "MeasuredInputs",
    "PAPER_CAMPAIGN",
    "RecoveryStats",
    "ScatterPoint",
    "SyntheticDataset",
    "Table1Row",
    "arrival_latency_series",
    "campaign_report",
    "capture_flow",
    "classify_timeouts",
    "dataset_records",
    "estimate_rtt",
    "flow_summary",
    "generate_dataset",
    "generate_stationary_reference",
    "loss_rate_pair",
    "measured_ack_burst_rate",
    "measured_model_inputs",
    "open_csv",
    "records_from_json",
    "records_to_json",
    "recovery_stats",
    "scatter_correlation",
    "scatter_envelope",
    "segment_ack_rounds",
    "spurious_fraction",
    "table1_rows",
    "timeout_ack_scatter",
    "timeout_sequence_lengths",
    "write_cwnd_csv",
    "write_flow_summary_csv",
    "write_latency_csv",
]
