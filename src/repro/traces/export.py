"""Exporting trace series and campaign reports.

CSV writers for the per-packet series behind Figs. 1/7/9 (so the plots
can be redrawn in any tool) and a plain-text campaign report combining
the Section-III statistics — the artefacts a measurement team would
attach to a results directory.
"""

from __future__ import annotations

import csv
import io
from typing import Optional, Sequence, TextIO

from repro.traces.analysis import arrival_latency_series
from repro.traces.events import FlowTrace
from repro.traces.timeouts import recovery_stats, spurious_fraction
from repro.util.stats import mean

__all__ = [
    "open_csv",
    "write_latency_csv",
    "write_cwnd_csv",
    "write_flow_summary_csv",
    "campaign_report",
]


def _csv_writer(stream):
    """The one place CSV dialect is decided for every exporter.

    ``csv.writer``'s default line terminator is ``\\r\\n``; these
    artefacts are diffed and committed, so every writer here emits
    plain ``\\n`` instead — the byte-for-byte discipline the rest of
    the library's outputs follow.
    """
    return csv.writer(stream, lineterminator="\n")


def open_csv(path):
    """Open ``path`` for writing CSV produced by this module.

    ``newline=""`` hands line-ending control to the csv writer (so the
    ``\\n`` choice above is not translated back to ``\\r\\n`` on
    Windows) and the encoding is pinned to UTF-8.
    """
    return open(path, "w", newline="", encoding="utf-8")


def write_latency_csv(trace: FlowTrace, stream: Optional[TextIO] = None) -> str:
    """Fig.-1 series as CSV: send_time, latency (−1 = lost), direction.

    Writes to ``stream`` when given; always returns the CSV text.
    """
    buffer = io.StringIO()
    writer = _csv_writer(buffer)
    writer.writerow(["send_time_s", "latency_s", "direction", "lost"])
    for point in arrival_latency_series(trace):
        writer.writerow(
            [f"{point.send_time:.6f}", f"{point.latency:.6f}", point.direction,
             int(point.lost)]
        )
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def write_cwnd_csv(cwnd_samples, stream: Optional[TextIO] = None) -> str:
    """Window-evolution series (Figs. 7–9) as CSV: time, cwnd, phase."""
    buffer = io.StringIO()
    writer = _csv_writer(buffer)
    writer.writerow(["time_s", "cwnd_packets", "phase"])
    for sample in cwnd_samples:
        writer.writerow([f"{sample.time:.6f}", f"{sample.cwnd:.4f}", sample.phase])
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def write_flow_summary_csv(
    traces: Sequence[FlowTrace], stream: Optional[TextIO] = None
) -> str:
    """One row per flow: the headline statistics of the campaign."""
    buffer = io.StringIO()
    writer = _csv_writer(buffer)
    writer.writerow(
        ["flow_id", "provider", "scenario", "throughput_pps", "data_loss",
         "ack_loss", "timeouts", "spurious_fraction", "mean_recovery_s"]
    )
    for trace in traces:
        stats = recovery_stats(trace)
        spurious = spurious_fraction(trace)
        writer.writerow(
            [
                trace.metadata.flow_id,
                trace.metadata.provider,
                trace.metadata.scenario,
                f"{trace.throughput:.3f}",
                f"{trace.data_loss_rate:.6f}",
                f"{trace.ack_loss_rate:.6f}",
                len(trace.timeouts),
                "" if spurious is None else f"{spurious:.4f}",
                "" if stats.mean_duration is None else f"{stats.mean_duration:.4f}",
            ]
        )
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def campaign_report(traces: Sequence[FlowTrace], title: str = "Campaign report") -> str:
    """Plain-text Section-III summary of a trace population."""
    if not traces:
        raise ValueError("campaign_report needs at least one trace")
    lines = [title, "=" * len(title)]
    by_scenario: dict = {}
    for trace in traces:
        by_scenario.setdefault(trace.metadata.scenario, []).append(trace)
    for scenario, group in sorted(by_scenario.items()):
        lines.append(f"\n[{scenario}] {len(group)} flows")
        lines.append(f"  throughput        {mean([t.throughput for t in group]):10.1f} pkt/s")
        lines.append(f"  data loss rate    {mean([t.data_loss_rate for t in group]):10.4%}")
        lines.append(f"  ACK loss rate     {mean([t.ack_loss_rate for t in group]):10.4%}")
        spurious = [s for s in (spurious_fraction(t) for t in group) if s is not None]
        if spurious:
            lines.append(f"  spurious timeouts {mean(spurious):10.1%}")
        recoveries = []
        for trace in group:
            stats = recovery_stats(trace)
            if stats.mean_duration is not None:
                recoveries.append(stats.mean_duration)
        if recoveries:
            lines.append(f"  mean recovery     {mean(recoveries):10.2f} s")
    return "\n".join(lines) + "\n"
