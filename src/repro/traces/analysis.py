"""Per-flow trace statistics (paper Figs. 1 and 6 plus model inputs).

* :func:`arrival_latency_series` — the Fig.-1 view: for every wire
  transmission in both directions, (send time, delivery latency), with
  lost packets marked at −1 exactly as the paper plots them.
* :func:`estimate_rtt` — matched data-send → covering-ACK round-trip
  samples (what the model consumes as ``RTT``).
* :func:`flow_summary` — one row of headline statistics per flow.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.traces.events import FlowTrace
from repro.util.stats import mean

__all__ = [
    "LatencyPoint",
    "arrival_latency_series",
    "estimate_rtt",
    "FlowSummary",
    "flow_summary",
]

#: Latency value used to plot lost packets, following the paper's Fig. 1
#: ("we set their time duration to be -1").
LOST_MARKER = -1.0


@dataclass(frozen=True)
class LatencyPoint:
    """One point of the Fig.-1 scatter."""

    send_time: float
    latency: float  # seconds; LOST_MARKER when the packet was dropped
    direction: str  # "data" | "ack"
    lost: bool


def arrival_latency_series(trace: FlowTrace) -> List[LatencyPoint]:
    """Per-transmission delivery latency in send order, both directions."""
    points: List[LatencyPoint] = []
    for direction, records in (("data", trace.data_packets), ("ack", trace.acks)):
        for record in records:
            if not record.lost and record.latency is None:
                # Still in flight when the capture ended: neither
                # delivered nor lost; a real capture has no such rows.
                continue
            points.append(
                LatencyPoint(
                    send_time=record.send_time,
                    latency=LOST_MARKER if record.lost else record.latency,
                    direction=direction,
                    lost=record.lost,
                )
            )
    points.sort(key=lambda point: point.send_time)
    return points


def estimate_rtt(trace: FlowTrace, max_samples: int = 2000) -> Optional[float]:
    """Mean send→covering-ACK round trip over never-retransmitted segments.

    For each sampled first-transmission data packet, the RTT sample is
    the delay until the first ACK *arrival* whose cumulative number
    exceeds the packet's sequence number (Karn's rule keeps
    retransmitted sequence numbers out).  Returns None when no sample
    can be formed (e.g. an all-lost trace).
    """
    retransmitted = {r.seq for r in trace.data_packets if r.is_retransmission}
    ack_arrivals: List[Tuple[float, int]] = sorted(
        (r.arrival_time, r.ack_seq) for r in trace.acks if r.arrival_time is not None
    )
    if not ack_arrivals:
        return None
    arrival_times = [arrival for arrival, _ in ack_arrivals]
    # Suffix maximum of ack_seq lets us test "is there a covering ACK
    # arriving after t" in O(log n).
    suffix_max: List[int] = [0] * len(ack_arrivals)
    running = 0
    for index in range(len(ack_arrivals) - 1, -1, -1):
        running = max(running, ack_arrivals[index][1])
        suffix_max[index] = running

    samples: List[float] = []
    step = max(1, len(trace.data_packets) // max_samples)
    for record in trace.data_packets[::step]:
        if record.is_retransmission or record.seq in retransmitted or record.lost:
            continue
        start = bisect_left(arrival_times, record.send_time)
        # Find the first arrival at/after the send that covers seq.
        lo = start
        if lo >= len(ack_arrivals) or suffix_max[lo] <= record.seq:
            continue
        hi = len(ack_arrivals) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if suffix_max[mid + 1] > record.seq and ack_arrivals[mid][1] <= record.seq:
                lo = mid + 1
            elif ack_arrivals[mid][1] > record.seq:
                hi = mid
            else:
                lo = mid + 1
        samples.append(ack_arrivals[lo][0] - record.send_time)
    if not samples:
        return None
    return mean(samples)


@dataclass(frozen=True)
class FlowSummary:
    """Headline statistics of one flow (one row of the dataset)."""

    flow_id: str
    provider: str
    scenario: str
    throughput: float
    data_loss_rate: float
    ack_loss_rate: float
    rtt: Optional[float]
    timeouts: int
    recovery_phases: int
    duplicate_payloads: int
    transferred_bytes: int


def flow_summary(trace: FlowTrace) -> FlowSummary:
    """Reduce a trace to its headline row."""
    return FlowSummary(
        flow_id=trace.metadata.flow_id,
        provider=trace.metadata.provider,
        scenario=trace.metadata.scenario,
        throughput=trace.throughput,
        data_loss_rate=trace.data_loss_rate,
        ack_loss_rate=trace.ack_loss_rate,
        rtt=estimate_rtt(trace),
        timeouts=len(trace.timeouts),
        recovery_phases=len(trace.completed_recovery_phases()),
        duplicate_payloads=trace.duplicate_payloads,
        transferred_bytes=trace.transferred_bytes,
    )
