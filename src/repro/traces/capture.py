"""Adapter: simulator output → dataset trace."""

from __future__ import annotations

from repro.robustness.validate import validate_trace
from repro.simulator.connection import FlowResult
from repro.traces.events import FlowMetadata, FlowTrace
from repro.util.errors import TraceValidationError

__all__ = ["capture_flow"]


def capture_flow(
    result: FlowResult, metadata: FlowMetadata, validate: bool = False
) -> FlowTrace:
    """Package a simulated flow's log as a dataset trace.

    The record lists are shared (not copied) — FlowLog records are not
    mutated after a simulation completes, and campaign generation
    creates hundreds of traces.

    With ``validate=True`` the trace is checked against the structural
    invariants in :mod:`repro.robustness.validate` and a
    :class:`~repro.util.errors.TraceValidationError` is raised (listing
    every violation) instead of returning a corrupt trace — the
    campaign layer turns that into a quarantine.
    """
    log = result.log
    trace = FlowTrace(
        metadata=metadata,
        data_packets=log.data_packets,
        acks=log.acks,
        timeouts=log.timeouts,
        recovery_phases=log.recovery_phases,
        delivered_payloads=log.delivered_payloads,
        duplicate_payloads=log.duplicate_payloads,
    )
    if validate:
        issues = validate_trace(trace)
        if issues:
            raise TraceValidationError(metadata.flow_id, issues)
    return trace
