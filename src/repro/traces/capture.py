"""Adapter: simulator output → dataset trace."""

from __future__ import annotations

from repro.simulator.connection import FlowResult
from repro.traces.events import FlowMetadata, FlowTrace

__all__ = ["capture_flow"]


def capture_flow(result: FlowResult, metadata: FlowMetadata) -> FlowTrace:
    """Package a simulated flow's log as a dataset trace.

    The record lists are shared (not copied) — FlowLog records are not
    mutated after a simulation completes, and campaign generation
    creates hundreds of traces.
    """
    log = result.log
    return FlowTrace(
        metadata=metadata,
        data_packets=log.data_packets,
        acks=log.acks,
        timeouts=log.timeouts,
        recovery_phases=log.recovery_phases,
        delivered_payloads=log.delivered_payloads,
        duplicate_payloads=log.duplicate_payloads,
    )
