"""ACK-loss ↔ timeout correlation (paper Fig. 4) and model inputs.

Fig. 4 plots, per flow, the ACK loss rate against the probability that
a loss indication is a timeout, and observes every point inside a
positively-sloped envelope.  :func:`timeout_ack_scatter` regenerates
the points; :func:`scatter_envelope` the bounding lines;
:func:`measured_model_inputs` extracts everything the enhanced model
needs from a trace (including the directly-measured ACK-burst
probability ``P_a`` the paper alludes to with "the ACK burst loss rate
is as high as 10%" for some flows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.params import LinkParams
from repro.traces.analysis import estimate_rtt
from repro.traces.events import FlowTrace
from repro.traces.timeouts import classify_timeouts, recovery_stats
from repro.util.stats import pearson_correlation

__all__ = [
    "ScatterPoint",
    "timeout_ack_scatter",
    "scatter_envelope",
    "scatter_correlation",
    "MeasuredInputs",
    "measured_model_inputs",
]

#: Default q when a flow completed no recovery phase — the midpoint of
#: the paper's recommended [0.25, 0.4].
_DEFAULT_RECOVERY_LOSS = 0.325


@dataclass(frozen=True)
class ScatterPoint:
    """One flow's (ACK loss rate, timeout probability) pair."""

    flow_id: str
    ack_loss_rate: float
    timeout_probability: float


def _timeout_probability(trace: FlowTrace) -> Optional[float]:
    """P(loss indication is a timeout) ≈ timeout sequences / loss indications.

    Loss indications = fast retransmits + timeout sequences.  Fast
    retransmits are retransmissions sent outside timeout recovery.
    """
    fast_retransmits = sum(
        1
        for record in trace.data_packets
        if record.is_retransmission and not record.in_timeout_recovery
    )
    timeout_sequences = len(trace.recovery_phases)
    indications = fast_retransmits + timeout_sequences
    if indications == 0:
        return None
    return timeout_sequences / indications


def timeout_ack_scatter(traces: Sequence[FlowTrace]) -> List[ScatterPoint]:
    """One Fig.-4 point per flow that saw at least one loss indication."""
    points: List[ScatterPoint] = []
    for trace in traces:
        probability = _timeout_probability(trace)
        if probability is None:
            continue
        points.append(
            ScatterPoint(
                flow_id=trace.metadata.flow_id,
                ack_loss_rate=trace.ack_loss_rate,
                timeout_probability=probability,
            )
        )
    return points


def scatter_envelope(
    points: Sequence[ScatterPoint],
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """((slope_low, intercept_low), (slope_high, intercept_high)).

    The two oblique lines of Fig. 4: linear fits shifted down/up to the
    extreme residuals, so every point lies between them.
    """
    if len(points) < 2:
        raise ValueError("envelope needs at least two scatter points")
    xs = [point.ack_loss_rate for point in points]
    ys = [point.timeout_probability for point in points]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        slope = 0.0
    else:
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    intercept = mean_y - slope * mean_x
    residuals = [y - (slope * x + intercept) for x, y in zip(xs, ys)]
    return (
        (slope, intercept + min(residuals)),
        (slope, intercept + max(residuals)),
    )


def scatter_correlation(points: Sequence[ScatterPoint]) -> float:
    """Pearson correlation of the Fig.-4 scatter (paper: positive, not strong)."""
    xs = [point.ack_loss_rate for point in points]
    ys = [point.timeout_probability for point in points]
    return pearson_correlation(xs, ys)


@dataclass(frozen=True)
class MeasuredInputs:
    """Everything the models need, measured from one trace."""

    params: LinkParams
    ack_burst_probability: float  # measured P_a (per-round all-ACK loss)
    throughput: float
    flow_id: str
    provider: str


def measured_model_inputs(
    trace: FlowTrace,
    timeout_value: Optional[float] = None,
    wmax: float = 64.0,
    b: int = 2,
) -> Optional[MeasuredInputs]:
    """Extract (RTT, T, p_d, p_a, q, measured P_a, throughput) from a trace.

    ``P_a`` is measured the way the paper implies: the per-round
    probability that an entire round of ACKs is lost, estimated as
    (spurious timeout sequences) / (total rounds), with rounds ≈
    duration / RTT.  Returns None when the trace is too quiet to
    measure (no RTT samples or zero throughput).
    """
    rtt = estimate_rtt(trace)
    if rtt is None or rtt <= 0.0 or trace.throughput <= 0.0:
        return None
    stats = recovery_stats(trace)
    recovery_loss = stats.recovery_loss_rate
    if recovery_loss is None:
        recovery_loss = _DEFAULT_RECOVERY_LOSS
    # Guard against degenerate phases where every retransmission
    # happened to die (q = 1 breaks the geometric series).
    recovery_loss = min(recovery_loss, 0.95)

    classified = classify_timeouts(trace)
    spurious_sequences = len(
        {c.record.sequence_index for c in classified if c.spurious}
    )
    rounds = max(1.0, trace.metadata.duration / rtt)
    ack_burst = min(0.9, spurious_sequences / rounds)

    timeout = timeout_value
    if timeout is None:
        if trace.timeouts:
            # The base (un-backed-off) timer: first timeout of each sequence.
            firsts = [
                record.rto_value
                for record in trace.timeouts
                if record.backoff_exponent == 0
            ]
            timeout = sum(firsts) / len(firsts) if firsts else 4.0 * rtt
        else:
            timeout = 4.0 * rtt

    params = LinkParams(
        rtt=rtt,
        timeout=timeout,
        # The model's p is Padhye's first-loss probability; under the
        # in-round correlation assumption the lifetime rate over-counts
        # the correlated tail (see FlowTrace.data_loss_event_rate).
        data_loss=min(trace.data_loss_event_rate, 0.5),
        ack_loss=min(trace.ack_loss_rate, 0.5),
        recovery_loss=recovery_loss,
        wmax=wmax,
        b=b,
    )
    return MeasuredInputs(
        params=params,
        ack_burst_probability=ack_burst,
        throughput=trace.throughput,
        flow_id=trace.metadata.flow_id,
        provider=trace.metadata.provider,
    )
