"""Flow-trace containers: the schema a packet capture reduces to.

A :class:`FlowTrace` is the dataset unit of the reproduction — the
transport-layer observables of one TCP flow plus capture metadata
(provider, phone, scenario, date), mirroring what the paper's team
extracted from each wireshark capture.  The simulator's
:class:`~repro.simulator.metrics.FlowLog` records are reused directly
as the per-packet schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.simulator.metrics import (
    AckRecord,
    DataPacketRecord,
    RecoveryPhaseRecord,
    TimeoutRecord,
)
from repro.util.units import BYTES_PER_MSS

__all__ = ["FlowMetadata", "FlowTrace"]


@dataclass(frozen=True)
class FlowMetadata:
    """Capture context of one flow (Table-I dimensions)."""

    flow_id: str
    provider: str
    technology: str
    scenario: str  # "hsr" | "stationary" | "driving"
    capture_month: str  # "2015-01" | "2015-10"
    phone_model: str
    duration: float
    seed: int = 0


@dataclass
class FlowTrace:
    """One flow's complete transport-layer observables."""

    metadata: FlowMetadata
    data_packets: List[DataPacketRecord] = field(default_factory=list)
    acks: List[AckRecord] = field(default_factory=list)
    timeouts: List[TimeoutRecord] = field(default_factory=list)
    recovery_phases: List[RecoveryPhaseRecord] = field(default_factory=list)
    delivered_payloads: int = 0
    duplicate_payloads: int = 0

    # -- headline statistics ------------------------------------------

    @property
    def throughput(self) -> float:
        """Packets delivered to the receiver per second."""
        return self.delivered_payloads / self.metadata.duration

    @property
    def transferred_bytes(self) -> int:
        """Payload bytes that reached the receiver (MSS-sized packets)."""
        return self.delivered_payloads * BYTES_PER_MSS

    @property
    def data_loss_rate(self) -> float:
        """Lifetime data loss rate ``p_d``."""
        if not self.data_packets:
            return 0.0
        return sum(1 for r in self.data_packets if r.lost) / len(self.data_packets)

    @property
    def ack_loss_rate(self) -> float:
        """Lifetime ACK loss rate ``p_a``."""
        if not self.acks:
            return 0.0
        return sum(1 for r in self.acks if r.lost) / len(self.acks)

    @property
    def data_loss_event_rate(self) -> float:
        """Padhye's ``p``: the probability a packet is the *first* loss
        of a round.

        Under the in-round correlation assumption (kept by the paper),
        a loss event wipes the rest of the round, so the lifetime loss
        rate over-counts by the burst tail; the model's ``p`` is the
        rate of maximal loss runs.
        """
        if not self.data_packets:
            return 0.0
        events = 0
        previous_lost = False
        for record in self.data_packets:  # recorded in send order
            if record.lost and not previous_lost:
                events += 1
            previous_lost = record.lost
        return events / len(self.data_packets)

    def completed_recovery_phases(self) -> List[RecoveryPhaseRecord]:
        return [phase for phase in self.recovery_phases if phase.complete]

    def arrivals_by_seq(self) -> dict:
        """seq -> sorted arrival times of every copy that reached the receiver."""
        arrivals: dict = {}
        for record in self.data_packets:
            if record.arrival_time is not None:
                arrivals.setdefault(record.seq, []).append(record.arrival_time)
        for times in arrivals.values():
            times.sort()
        return arrivals
