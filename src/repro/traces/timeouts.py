"""Timeout classification and recovery-phase analysis (paper §III-B).

The paper's classification rule, implemented verbatim: *"If the timeout
event is spurious, the receiver will receive two packets with the same
payload"* — i.e. a timeout whose sequence number had already been
delivered before the timer fired was spurious; one whose retransmission
is the only copy to arrive was a genuine data-loss timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.simulator.metrics import TimeoutRecord
from repro.traces.events import FlowTrace
from repro.util.stats import mean

__all__ = [
    "ClassifiedTimeout",
    "classify_timeouts",
    "spurious_fraction",
    "RecoveryStats",
    "recovery_stats",
    "loss_rate_pair",
    "timeout_sequence_lengths",
]


@dataclass(frozen=True)
class ClassifiedTimeout:
    """A timeout event plus its spurious/genuine verdict."""

    record: TimeoutRecord
    spurious: bool


def classify_timeouts(trace: FlowTrace) -> List[ClassifiedTimeout]:
    """Label every timeout in the trace as spurious or data-loss.

    A timeout at time ``t`` for sequence ``s`` is **spurious** iff some
    copy of ``s`` had already arrived at the receiver by ``t`` (the
    receiver will then see the retransmission as a duplicate payload).
    """
    arrivals = trace.arrivals_by_seq()
    classified: List[ClassifiedTimeout] = []
    for record in trace.timeouts:
        times = arrivals.get(record.seq, [])
        spurious = bool(times) and times[0] <= record.time
        classified.append(ClassifiedTimeout(record=record, spurious=spurious))
    return classified


def spurious_fraction(trace: FlowTrace) -> Optional[float]:
    """Share of this flow's timeouts that were spurious (None if no timeouts)."""
    classified = classify_timeouts(trace)
    if not classified:
        return None
    return sum(1 for c in classified if c.spurious) / len(classified)


@dataclass(frozen=True)
class RecoveryStats:
    """Aggregate recovery-phase behaviour of one flow."""

    phase_count: int
    mean_duration: Optional[float]
    max_duration: Optional[float]
    retransmissions: int
    retransmissions_lost: int
    mean_timeouts_per_sequence: Optional[float]

    @property
    def recovery_loss_rate(self) -> Optional[float]:
        """The paper's ``q``: in-recovery retransmission loss rate."""
        if self.retransmissions == 0:
            return None
        return self.retransmissions_lost / self.retransmissions


def recovery_stats(trace: FlowTrace) -> RecoveryStats:
    """Reduce a flow's completed recovery phases to summary statistics."""
    phases = trace.completed_recovery_phases()
    durations = [phase.duration for phase in phases]
    return RecoveryStats(
        phase_count=len(phases),
        mean_duration=mean(durations) if durations else None,
        max_duration=max(durations) if durations else None,
        retransmissions=sum(phase.retransmissions for phase in phases),
        retransmissions_lost=sum(phase.retransmissions_lost for phase in phases),
        mean_timeouts_per_sequence=(
            mean([float(phase.timeouts) for phase in phases]) if phases else None
        ),
    )


def loss_rate_pair(trace: FlowTrace) -> Tuple[float, Optional[float]]:
    """(lifetime data-loss rate, in-recovery loss rate) — the Fig.-3 pair."""
    stats = recovery_stats(trace)
    return trace.data_loss_rate, stats.recovery_loss_rate


def timeout_sequence_lengths(traces: Sequence[FlowTrace]) -> List[int]:
    """Timeouts per completed recovery phase over a trace population
    (the empirical counterpart of the model's ``E[R]``)."""
    lengths: List[int] = []
    for trace in traces:
        lengths += [phase.timeouts for phase in trace.completed_recovery_phases()]
    return lengths
