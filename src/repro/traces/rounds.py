"""Round segmentation and the direct measurement of ``P_a``.

The model's ``P_a`` is defined as "the probability that all ACKs in one
round are lost" (paper §IV-A).  Given a trace and an RTT estimate,
this module groups ACK transmissions into rounds (gaps larger than a
fraction of the RTT separate rounds — ACKs of a round leave the
receiver as a burst) and measures the per-round all-lost frequency —
the estimator behind the paper's remark that some flows saw "ACK burst
loss rate as high as 10%".

Caveat (measured on the synthetic campaign): this textbook-definition
estimator counts bidirectional-outage rounds where the *data* also died
— events the model already bills to ``p_d`` — so feeding it to the
model double-counts handoffs and degrades Fig.-10 accuracy.  The
spurious-timeout-based estimator in
:func:`repro.traces.correlation.measured_model_inputs` counts only the
burst losses that actually fired spurious timeouts and is the default
for model evaluation; this module remains the honest measurement of the
raw per-round quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simulator.metrics import AckRecord
from repro.traces.events import FlowTrace

__all__ = ["AckRound", "segment_ack_rounds", "measured_ack_burst_rate"]

#: A silence longer than this fraction of the RTT starts a new round.
ROUND_GAP_FRACTION = 0.5


@dataclass(frozen=True)
class AckRound:
    """One round's worth of ACK transmissions."""

    start_time: float
    end_time: float
    acks: int
    lost: int

    @property
    def all_lost(self) -> bool:
        """The ACK-burst-loss event: every ACK of the round died."""
        return self.acks > 0 and self.lost == self.acks


def segment_ack_rounds(
    acks: Sequence[AckRecord], rtt: float
) -> List[AckRound]:
    """Group ACKs into rounds by send-time gaps.

    ACKs of one congestion round leave the receiver within a burst much
    shorter than the RTT; a gap of more than ``ROUND_GAP_FRACTION · RTT``
    therefore separates rounds.
    """
    if rtt <= 0.0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    if not acks:
        return []
    gap = ROUND_GAP_FRACTION * rtt
    rounds: List[AckRound] = []
    start = acks[0].send_time
    last = start
    count = 0
    lost = 0
    for record in acks:
        if record.send_time - last > gap and count:
            rounds.append(AckRound(start_time=start, end_time=last, acks=count, lost=lost))
            start, count, lost = record.send_time, 0, 0
        count += 1
        if record.lost:
            lost += 1
        last = record.send_time
    rounds.append(AckRound(start_time=start, end_time=last, acks=count, lost=lost))
    return rounds


def measured_ack_burst_rate(
    trace: FlowTrace, rtt: Optional[float] = None
) -> Optional[float]:
    """Direct ``P_a``: fraction of ACK rounds entirely lost.

    Uses the trace's estimated RTT when none is given; returns None
    when the trace carries no ACKs or no RTT can be estimated.
    """
    if rtt is None:
        from repro.traces.analysis import estimate_rtt

        rtt = estimate_rtt(trace)
    if rtt is None or not trace.acks:
        return None
    rounds = segment_ack_rounds(trace.acks, rtt)
    if not rounds:
        return None
    return sum(1 for r in rounds if r.all_lost) / len(rounds)
