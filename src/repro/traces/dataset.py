"""Dataset summaries (Table I) and JSON (de)serialisation.

Traces carry hundreds of thousands of packet records; what the paper's
figures actually consume are per-flow summary rows, so serialisation
stores :class:`~repro.traces.analysis.FlowSummary`-level data plus the
recovery/timeout aggregates — compact enough to check into a results
directory and re-plot without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.traces.analysis import flow_summary
from repro.traces.events import FlowTrace
from repro.traces.generator import SyntheticDataset
from repro.traces.timeouts import recovery_stats, spurious_fraction
from repro.util.units import bytes_to_gb

__all__ = [
    "Table1Row",
    "table1_rows",
    "FlowRecord",
    "dataset_records",
    "records_to_json",
    "records_from_json",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    capture_month: str
    trips: int
    phone_model: str
    provider: str
    flows: int
    trace_size_gb: float


def table1_rows(dataset: SyntheticDataset) -> List[Table1Row]:
    """Summarise a generated campaign in the Table-I format."""
    rows: List[Table1Row] = []
    for entry in dataset.entries:
        cell = [
            trace
            for trace in dataset.traces
            if trace.metadata.capture_month == entry.capture_month
            and trace.metadata.provider == entry.provider.name
            and trace.metadata.phone_model == entry.phone_model
        ]
        rows.append(
            Table1Row(
                capture_month=entry.capture_month,
                trips=entry.trips,
                phone_model=entry.phone_model,
                provider=entry.provider.name,
                flows=len(cell),
                trace_size_gb=bytes_to_gb(
                    sum(trace.transferred_bytes for trace in cell)
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class FlowRecord:
    """Serialisable per-flow summary (everything the figures consume)."""

    flow_id: str
    provider: str
    technology: str
    scenario: str
    capture_month: str
    phone_model: str
    duration: float
    throughput: float
    data_loss_rate: float
    ack_loss_rate: float
    rtt: Optional[float]
    timeouts: int
    spurious_fraction: Optional[float]
    recovery_phase_count: int
    mean_recovery_duration: Optional[float]
    recovery_loss_rate: Optional[float]
    transferred_bytes: int


def dataset_records(traces: Sequence[FlowTrace]) -> List[FlowRecord]:
    """Reduce traces to serialisable per-flow records."""
    records: List[FlowRecord] = []
    for trace in traces:
        summary = flow_summary(trace)
        recovery = recovery_stats(trace)
        records.append(
            FlowRecord(
                flow_id=summary.flow_id,
                provider=summary.provider,
                technology=trace.metadata.technology,
                scenario=summary.scenario,
                capture_month=trace.metadata.capture_month,
                phone_model=trace.metadata.phone_model,
                duration=trace.metadata.duration,
                throughput=summary.throughput,
                data_loss_rate=summary.data_loss_rate,
                ack_loss_rate=summary.ack_loss_rate,
                rtt=summary.rtt,
                timeouts=summary.timeouts,
                spurious_fraction=spurious_fraction(trace),
                recovery_phase_count=recovery.phase_count,
                mean_recovery_duration=recovery.mean_duration,
                recovery_loss_rate=recovery.recovery_loss_rate,
                transferred_bytes=summary.transferred_bytes,
            )
        )
    return records


def records_to_json(records: Sequence[FlowRecord]) -> str:
    """Serialise flow records to a JSON document."""
    return json.dumps([asdict(record) for record in records], indent=2)


def records_from_json(payload: str) -> List[FlowRecord]:
    """Parse flow records back from :func:`records_to_json` output."""
    raw = json.loads(payload)
    if not isinstance(raw, list):
        raise ValueError("expected a JSON array of flow records")
    return [FlowRecord(**item) for item in raw]
