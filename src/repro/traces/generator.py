"""Synthetic dataset campaign reproducing Table I.

The paper's dataset: two measurement campaigns on BTR —

* January 2015: 8 trips, one Samsung Note 3 on China Mobile LTE →
  52 flows, 7.73 GB.
* October 2015: 24 trips, a Note 3 on China Mobile plus two Galaxy S4
  on China Unicom / China Telecom 3G → 73 + 65 + 65 flows,
  18.9 + 9.63 + 4.21 GB.

:func:`generate_dataset` regenerates the same structure from the HSR
simulator.  ``flow_scale``/``duration`` shrink the campaign for quick
runs (tests, benchmarks) while keeping the proportions; the defaults
produce the full 255 flows.

Execution is delegated to :mod:`repro.exec`: each flow is described as
a :class:`~repro.exec.FlowSpec` (seeded statelessly per flow index, so
failures never perturb the seeds of the remaining flows) and the batch
runs on an :class:`~repro.exec.Executor` — serially by default, or
across ``workers`` processes with byte-identical traces and report.
The executor supplies the resilience: failed flows are retried with
deterministically reseeded attempts and quarantined (recorded, skipped)
when persistent, and every run returns a
:class:`~repro.robustness.campaign.CampaignReport` on the dataset's
``report`` field — one bad flow can no longer abort a multi-hour
campaign or silently poison its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.exec.executor import Executor
from repro.exec.spec import FlowSpec
from repro.hsr.provider import (
    CHINA_MOBILE,
    CHINA_TELECOM,
    CHINA_UNICOM,
    Provider,
)
from repro.hsr.scenario import Scenario, hsr_scenario, stationary_scenario
from repro.robustness.campaign import CampaignReport, RetryPolicy
from repro.robustness.faults import FaultPlan, current_fault_plan, with_faults
from repro.robustness.watchdog import Watchdog
from repro.telemetry.campaign import CampaignTelemetry
from repro.traces.events import FlowMetadata, FlowTrace
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "CampaignEntry",
    "PAPER_CAMPAIGN",
    "SyntheticDataset",
    "campaign_specs",
    "generate_dataset",
    "generate_stationary_reference",
]


@dataclass(frozen=True)
class CampaignEntry:
    """One row of Table I: a (month, phone, provider) cell."""

    capture_month: str
    trips: int
    phone_model: str
    provider: Provider
    flows: int


#: The paper's Table I, verbatim.
PAPER_CAMPAIGN: Sequence[CampaignEntry] = (
    CampaignEntry("2015-01", 8, "Samsung Note 3", CHINA_MOBILE, 52),
    CampaignEntry("2015-10", 24, "Samsung Note 3", CHINA_MOBILE, 73),
    CampaignEntry("2015-10", 24, "Samsung Galaxy S4", CHINA_UNICOM, 65),
    CampaignEntry("2015-10", 24, "Samsung Galaxy S4", CHINA_TELECOM, 65),
)


@dataclass
class SyntheticDataset:
    """A generated campaign: traces plus the spec that produced them.

    ``report`` records how resiliently the campaign ran (retries,
    quarantined flows, per-failure seeds); a clean run has
    ``report.ok`` true and empty failure lists.
    """

    traces: List[FlowTrace] = field(default_factory=list)
    entries: Sequence[CampaignEntry] = PAPER_CAMPAIGN
    report: CampaignReport = field(default_factory=CampaignReport)
    #: merged per-flow counters (None unless generated with telemetry)
    telemetry: Optional[CampaignTelemetry] = None

    @property
    def flow_count(self) -> int:
        return len(self.traces)

    @property
    def total_bytes(self) -> int:
        return sum(trace.transferred_bytes for trace in self.traces)

    def by_provider(self, provider_name: str) -> List[FlowTrace]:
        return [
            trace
            for trace in self.traces
            if trace.metadata.provider == provider_name
        ]

    def by_scenario(self, scenario: str) -> List[FlowTrace]:
        return [
            trace for trace in self.traces if trace.metadata.scenario == scenario
        ]


def _entry_specs(
    entry: CampaignEntry,
    scenario: Scenario,
    scenario_label: str,
    flows: int,
    duration: float,
    rng: RngStream,
    watchdog: Optional[Watchdog],
    validate: bool,
    cc: str = "reno",
    cc_params: Optional[object] = None,
) -> List[FlowSpec]:
    """FlowSpecs for one Table-I cell.

    Base seeds are derived statelessly per flow index from the campaign
    root stream — the derivation (and hence every trace) is independent
    of execution order, retries, and the worker count.
    """
    specs: List[FlowSpec] = []
    for index in range(flows):
        base_seed = (
            rng.spawn(entry.capture_month, entry.provider.name, index).seed
            & 0x7FFFFFFF
        )
        flow_id = f"{entry.capture_month}/{entry.provider.name}/{index:03d}"
        metadata = FlowMetadata(
            flow_id=flow_id,
            provider=entry.provider.name,
            technology=entry.provider.technology,
            scenario=scenario_label,
            capture_month=entry.capture_month,
            phone_model=entry.phone_model,
            duration=duration,
            seed=base_seed,
        )
        specs.append(
            FlowSpec(
                scenario=scenario,
                duration=duration,
                seed=base_seed,
                cc=cc,
                cc_params=cc_params,
                flow_id=flow_id,
                watchdog=watchdog,
                metadata=metadata,
                validate=validate,
            )
        )
    return specs


def campaign_specs(
    seed: int = 2015,
    duration: float = 60.0,
    flow_scale: float = 1.0,
    entries: Optional[Sequence[CampaignEntry]] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog: Optional[Watchdog] = None,
    validate: bool = True,
    cc: str = "reno",
    cc_params: Optional[object] = None,
) -> List[FlowSpec]:
    """The Table-I campaign as a flat FlowSpec list (what
    :func:`generate_dataset` executes); exposed for benchmarks and for
    callers that want to run the batch on their own executor.

    ``cc`` (a :mod:`repro.cc` registry name) and ``cc_params`` select
    the congestion control every flow runs — the cross-CC sweeps of
    :mod:`repro.experiments.cross_cc` rebuild this same campaign once
    per variant.
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if flow_scale <= 0.0:
        raise ConfigurationError(f"flow_scale must be positive, got {flow_scale}")
    campaign = tuple(entries) if entries is not None else PAPER_CAMPAIGN
    if fault_plan is None:
        fault_plan = current_fault_plan()
    rng = RngStream(seed, "dataset")
    specs: List[FlowSpec] = []
    for entry in campaign:
        flows = max(1, round(entry.flows * flow_scale))
        scenario = hsr_scenario(entry.provider)
        if fault_plan is not None and not fault_plan.is_noop():
            scenario = with_faults(scenario, fault_plan)
        specs += _entry_specs(
            entry,
            scenario,
            "hsr",
            flows,
            duration,
            rng,
            watchdog=watchdog,
            validate=validate,
            cc=cc,
            cc_params=cc_params,
        )
    return specs


def generate_dataset(
    seed: int = 2015,
    duration: float = 60.0,
    flow_scale: float = 1.0,
    entries: Optional[Sequence[CampaignEntry]] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    watchdog: Optional[Watchdog] = None,
    validate: bool = True,
    workers: Union[int, str] = 1,
    telemetry: Optional[bool] = None,
    store=None,
    cc: str = "reno",
    cc_params: Optional[object] = None,
) -> SyntheticDataset:
    """Regenerate the Table-I campaign from the HSR simulator.

    ``flow_scale`` multiplies each cell's flow count (minimum 1 per
    cell) so tests and benchmarks can run a miniature campaign with the
    same structure.  ``workers`` > 1 fans the flows out over a process
    pool, ``workers="lockstep"`` runs eligible flows on one shared
    event wheel in-process, and ``workers="auto"`` probes the batch
    and picks a mode itself — the resulting traces and report are
    byte-identical to a serial run in every mode.

    The campaign is fault-tolerant: per-flow failures (including
    watchdog budget trips and traces rejected by ``validate``) are
    retried under ``retry_policy`` with deterministically reseeded
    attempts, then quarantined, and the returned dataset's ``report``
    names every failure with the exact seed that reproduces it.
    ``fault_plan`` (or the ambient plan from
    :func:`repro.robustness.faults.fault_scope`) injects chaos into
    every flow's channels for stress testing.

    ``telemetry=True`` collects per-flow counters and merges them onto
    the dataset's ``telemetry`` field (byte-identical across worker
    counts); the default ``None`` defers to the ambient
    :func:`~repro.telemetry.telemetry_scope` configuration.

    ``store`` (a :class:`~repro.store.ResultStore` or a directory path)
    makes the campaign cache-aware and resumable: completed flows are
    persisted under their content keys, reruns serve them from disk
    without simulating, and a campaign killed midway re-executes only
    the flows still missing — with traces and report byte-identical to
    an uncached run either way.

    ``cc``/``cc_params`` run the whole campaign under a different
    congestion control from the :mod:`repro.cc` registry (flow ids and
    seeds are unchanged, so per-flow comparisons across variants line
    up; the store keys differ, so caches never mix variants).
    """
    campaign = tuple(entries) if entries is not None else PAPER_CAMPAIGN
    specs = campaign_specs(
        seed=seed,
        duration=duration,
        flow_scale=flow_scale,
        entries=campaign,
        fault_plan=fault_plan,
        watchdog=watchdog,
        validate=validate,
        cc=cc,
        cc_params=cc_params,
    )
    executor = Executor.for_workers(
        workers, retry_policy=retry_policy, telemetry=telemetry
    )
    execution = _run_with_store(executor, specs, store)
    return SyntheticDataset(
        traces=execution.traces,
        entries=campaign,
        report=execution.report,
        telemetry=execution.telemetry,
    )


def _run_with_store(executor: Executor, specs: List[FlowSpec], store):
    """Run a batch, cache-wrapping the executor when ``store`` is given.

    An explicit ``store`` argument takes precedence over (and behaves
    exactly like) an ambient :func:`~repro.store.store_scope`.
    """
    if store is None:
        return executor.run(specs)
    from repro.store.scope import store_scope

    with store_scope(store):
        return executor.run(specs)


def generate_stationary_reference(
    seed: int = 2016,
    duration: float = 60.0,
    flows_per_provider: int = 10,
    retry_policy: Optional[RetryPolicy] = None,
    watchdog: Optional[Watchdog] = None,
    validate: bool = True,
    workers: Union[int, str] = 1,
    telemetry: Optional[bool] = None,
    store=None,
) -> SyntheticDataset:
    """A stationary companion campaign (for the Fig.-3/6 comparisons)."""
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if flows_per_provider < 1:
        raise ConfigurationError("flows_per_provider must be >= 1")
    rng = RngStream(seed, "stationary-dataset")
    entries = tuple(
        CampaignEntry("2015-10", 1, "Samsung Note 3", provider, flows_per_provider)
        for provider in (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)
    )
    specs: List[FlowSpec] = []
    for entry in entries:
        scenario = stationary_scenario(entry.provider)
        specs += _entry_specs(
            entry,
            scenario,
            "stationary",
            entry.flows,
            duration,
            rng,
            watchdog=watchdog,
            validate=validate,
        )
    executor = Executor.for_workers(
        workers, retry_policy=retry_policy, telemetry=telemetry
    )
    execution = _run_with_store(executor, specs, store)
    return SyntheticDataset(
        traces=execution.traces,
        entries=entries,
        report=execution.report,
        telemetry=execution.telemetry,
    )
