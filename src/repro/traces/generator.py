"""Synthetic dataset campaign reproducing Table I.

The paper's dataset: two measurement campaigns on BTR —

* January 2015: 8 trips, one Samsung Note 3 on China Mobile LTE →
  52 flows, 7.73 GB.
* October 2015: 24 trips, a Note 3 on China Mobile plus two Galaxy S4
  on China Unicom / China Telecom 3G → 73 + 65 + 65 flows,
  18.9 + 9.63 + 4.21 GB.

:func:`generate_dataset` regenerates the same structure from the HSR
simulator.  ``flow_scale``/``duration`` shrink the campaign for quick
runs (tests, benchmarks) while keeping the proportions; the defaults
produce the full 255 flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hsr.provider import (
    CHINA_MOBILE,
    CHINA_TELECOM,
    CHINA_UNICOM,
    Provider,
)
from repro.hsr.scenario import Scenario, hsr_scenario, stationary_scenario
from repro.simulator.connection import run_flow
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata, FlowTrace
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "CampaignEntry",
    "PAPER_CAMPAIGN",
    "SyntheticDataset",
    "generate_dataset",
    "generate_stationary_reference",
]


@dataclass(frozen=True)
class CampaignEntry:
    """One row of Table I: a (month, phone, provider) cell."""

    capture_month: str
    trips: int
    phone_model: str
    provider: Provider
    flows: int


#: The paper's Table I, verbatim.
PAPER_CAMPAIGN: Sequence[CampaignEntry] = (
    CampaignEntry("2015-01", 8, "Samsung Note 3", CHINA_MOBILE, 52),
    CampaignEntry("2015-10", 24, "Samsung Note 3", CHINA_MOBILE, 73),
    CampaignEntry("2015-10", 24, "Samsung Galaxy S4", CHINA_UNICOM, 65),
    CampaignEntry("2015-10", 24, "Samsung Galaxy S4", CHINA_TELECOM, 65),
)


@dataclass
class SyntheticDataset:
    """A generated campaign: traces plus the spec that produced them."""

    traces: List[FlowTrace] = field(default_factory=list)
    entries: Sequence[CampaignEntry] = PAPER_CAMPAIGN

    @property
    def flow_count(self) -> int:
        return len(self.traces)

    @property
    def total_bytes(self) -> int:
        return sum(trace.transferred_bytes for trace in self.traces)

    def by_provider(self, provider_name: str) -> List[FlowTrace]:
        return [
            trace
            for trace in self.traces
            if trace.metadata.provider == provider_name
        ]

    def by_scenario(self, scenario: str) -> List[FlowTrace]:
        return [
            trace for trace in self.traces if trace.metadata.scenario == scenario
        ]


def _run_campaign_entry(
    entry: CampaignEntry,
    scenario: Scenario,
    scenario_label: str,
    flows: int,
    duration: float,
    rng: RngStream,
) -> List[FlowTrace]:
    traces: List[FlowTrace] = []
    for index in range(flows):
        seed = rng.spawn(entry.capture_month, entry.provider.name, index).seed & 0x7FFFFFFF
        built = scenario.build(duration=duration, seed=seed)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)
        metadata = FlowMetadata(
            flow_id=f"{entry.capture_month}/{entry.provider.name}/{index:03d}",
            provider=entry.provider.name,
            technology=entry.provider.technology,
            scenario=scenario_label,
            capture_month=entry.capture_month,
            phone_model=entry.phone_model,
            duration=duration,
            seed=seed,
        )
        traces.append(capture_flow(result, metadata))
    return traces


def generate_dataset(
    seed: int = 2015,
    duration: float = 60.0,
    flow_scale: float = 1.0,
    entries: Optional[Sequence[CampaignEntry]] = None,
) -> SyntheticDataset:
    """Regenerate the Table-I campaign from the HSR simulator.

    ``flow_scale`` multiplies each cell's flow count (minimum 1 per
    cell) so tests and benchmarks can run a miniature campaign with the
    same structure.
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if flow_scale <= 0.0:
        raise ConfigurationError(f"flow_scale must be positive, got {flow_scale}")
    campaign = tuple(entries) if entries is not None else PAPER_CAMPAIGN
    rng = RngStream(seed, "dataset")
    dataset = SyntheticDataset(entries=campaign)
    for entry in campaign:
        flows = max(1, round(entry.flows * flow_scale))
        scenario = hsr_scenario(entry.provider)
        dataset.traces += _run_campaign_entry(
            entry, scenario, "hsr", flows, duration, rng
        )
    return dataset


def generate_stationary_reference(
    seed: int = 2016,
    duration: float = 60.0,
    flows_per_provider: int = 10,
) -> SyntheticDataset:
    """A stationary companion campaign (for the Fig.-3/6 comparisons)."""
    if flows_per_provider < 1:
        raise ConfigurationError("flows_per_provider must be >= 1")
    rng = RngStream(seed, "stationary-dataset")
    entries = tuple(
        CampaignEntry("2015-10", 1, "Samsung Note 3", provider, flows_per_provider)
        for provider in (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)
    )
    dataset = SyntheticDataset(entries=entries)
    for entry in entries:
        scenario = stationary_scenario(entry.provider)
        dataset.traces += _run_campaign_entry(
            entry, scenario, "stationary", entry.flows, duration, rng
        )
    return dataset
