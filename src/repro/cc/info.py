"""Congestion-control metadata: :class:`CCInfo` and per-CC tuning params.

Every sender in the registry is described by one :class:`CCInfo`
record: the short registry name, the factory (usually the sender class
itself), the algorithm family, a one-line summary, an optional
keyword-only tuning dataclass, and a pointer to the reference the
implementation follows.  The record — not the bare factory — is what
:func:`repro.cc.register_cc` stores, so tooling (the ``python -m
repro.cc`` CLI, the README zoo table, experiment reports) can describe
a variant without instantiating it.

Tuning dataclasses are frozen and keyword-only.  A
:class:`~repro.exec.FlowSpec` carries one on its ``cc_params`` field;
the store's canonical encoder hashes dataclasses field by field, so two
specs differing only in a tuning knob land under different flow keys.
:func:`repro.cc.make_sender` spreads the fields into the sender
constructor as keyword arguments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.util.errors import ConfigurationError

__all__ = [
    "CC_FAMILIES",
    "CCInfo",
    "BbrParams",
    "CompoundParams",
    "CubicParams",
    "RelentlessParams",
]

#: The recognised algorithm families (how the window is governed).
CC_FAMILIES: Tuple[str, ...] = ("loss-based", "delay-based", "rate-based")


@dataclass(frozen=True)
class CCInfo:
    """One registered congestion-control variant, described.

    ``factory`` must follow the sender constructor protocol documented
    on :class:`repro.simulator.sender_base.BaseSender`.  ``params_type``
    is the variant's tuning dataclass (or ``None`` when it has no
    tuning knobs); :func:`repro.cc.make_sender` type-checks a supplied
    ``cc_params`` against it.
    """

    name: str
    factory: Callable
    family: str = "loss-based"
    summary: str = ""
    params_type: Optional[type] = None
    docs: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"cc name must be a non-empty string, got {self.name!r}"
            )
        if not callable(self.factory):
            raise ConfigurationError(
                f"cc factory for {self.name!r} is not callable; register a "
                "sender class or factory following the constructor protocol "
                "documented on repro.simulator.sender_base.BaseSender"
            )
        if self.family not in CC_FAMILIES:
            raise ConfigurationError(
                f"cc family for {self.name!r} must be one of "
                f"{list(CC_FAMILIES)}, got {self.family!r}"
            )
        if self.params_type is not None and not (
            isinstance(self.params_type, type)
            and dataclasses.is_dataclass(self.params_type)
        ):
            raise ConfigurationError(
                f"params_type for {self.name!r} must be a dataclass type, "
                f"got {self.params_type!r}"
            )


@dataclass(frozen=True, kw_only=True)
class CubicParams:
    """CUBIC tuning knobs (RFC 8312 defaults)."""

    #: the cubic scaling constant C (segments/s^3)
    c: float = 0.4
    #: multiplicative decrease factor applied to cwnd on loss
    beta: float = 0.7
    #: release W_max early when a flow loses twice below its old plateau
    fast_convergence: bool = True

    def __post_init__(self) -> None:
        if self.c <= 0.0:
            raise ConfigurationError(f"cubic c must be positive, got {self.c}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigurationError(
                f"cubic beta must be in (0, 1), got {self.beta}"
            )


@dataclass(frozen=True, kw_only=True)
class BbrParams:
    """Tuning knobs of the BBR-style rate-based sender."""

    #: window gain while probing for bandwidth (2/ln 2 in BBR v1)
    startup_gain: float = 2.885
    #: steady-state cwnd gain over the estimated BDP
    cwnd_gain: float = 2.0
    #: seconds after which a stale min-RTT triggers a PROBE_RTT dip
    probe_rtt_interval: float = 10.0
    #: seconds the PROBE_RTT window clamp is held
    probe_rtt_duration: float = 0.2
    #: bandwidth max-filter horizon, in multiples of the min RTT
    bw_window_rtts: float = 10.0
    #: segments handed to the link per paced sub-burst
    pacing_quantum: int = 4

    def __post_init__(self) -> None:
        if self.startup_gain <= 1.0:
            raise ConfigurationError(
                f"bbr startup_gain must exceed 1, got {self.startup_gain}"
            )
        if self.cwnd_gain <= 0.0:
            raise ConfigurationError(
                f"bbr cwnd_gain must be positive, got {self.cwnd_gain}"
            )
        if self.probe_rtt_interval <= 0.0 or self.probe_rtt_duration <= 0.0:
            raise ConfigurationError("bbr probe RTT timings must be positive")
        if self.bw_window_rtts <= 0.0:
            raise ConfigurationError("bbr bw_window_rtts must be positive")
        if self.pacing_quantum < 1:
            raise ConfigurationError(
                f"bbr pacing_quantum must be >= 1, got {self.pacing_quantum}"
            )


@dataclass(frozen=True, kw_only=True)
class CompoundParams:
    """TCP Compound tuning knobs (Tan et al. defaults, as used by the
    asymptotic approximation in PAPERS.md)."""

    #: delay-window growth gain: dwnd += alpha * win^k - 1 per RTT
    alpha: float = 0.125
    #: exponent of the binomial growth law
    k: float = 0.75
    #: multiplicative decrease applied to the compound window on loss
    beta: float = 0.5
    #: queueing-backlog threshold (segments) separating the delay
    #: regimes: below it dwnd grows, at or above it dwnd drains
    gamma: float = 30.0

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(
                f"compound alpha must be positive, got {self.alpha}"
            )
        if not 0.0 < self.k < 1.0:
            raise ConfigurationError(
                f"compound k must be in (0, 1), got {self.k}"
            )
        if not 0.0 < self.beta < 1.0:
            raise ConfigurationError(
                f"compound beta must be in (0, 1), got {self.beta}"
            )
        if self.gamma <= 0.0:
            raise ConfigurationError(
                f"compound gamma must be positive, got {self.gamma}"
            )


@dataclass(frozen=True, kw_only=True)
class RelentlessParams:
    """Relentless congestion control tuning knobs."""

    #: segments the window loses per detected loss (1.0 = Mathis's
    #: original proposal: decrease by exactly what was lost)
    decrement: float = 1.0

    def __post_init__(self) -> None:
        if self.decrement <= 0.0:
            raise ConfigurationError(
                f"relentless decrement must be positive, got {self.decrement}"
            )
