"""Entry point for ``python -m repro.cc``."""

import sys

from repro.cc.cli import main

sys.exit(main())
