"""The congestion-control registry: senders selected and described by name.

The paper evaluates Reno ("the basis of the other TCP versions") and
the follow-up HSR/LTE studies compare many variants under identical
channels.  To make that a data sweep instead of a code change, every
sender registers here under a short name and every execution path —
:func:`repro.simulator.connection.run_flow`,
:class:`repro.exec.FlowSpec`, the experiment sweeps — selects one by
name via :func:`make_sender`.

Registrations carry metadata: a :class:`~repro.cc.info.CCInfo` records
the family, summary, tuning-params dataclass, and reference docs next
to the factory.  Third-party senders plug in without touching any call
site::

    from repro.cc import CCInfo, register_cc

    register_cc(CCInfo(name="mytcp", factory=MyTcpSender,
                       family="loss-based", summary="..."))
    run_flow(config, ..., variant="mytcp")

The legacy two-argument form ``register_cc("mytcp", MyTcpSender)``
keeps working and wraps the factory in a default record.  A factory
must follow the sender constructor protocol documented on
:class:`repro.simulator.sender_base.BaseSender`.

Built-in senders live in :mod:`repro.simulator` — *above* this module
in the import graph (the simulator's connection wiring imports
:func:`make_sender` from here).  They are therefore registered lazily,
on first registry access, never at import time; importing
:mod:`repro.cc` alone pulls in no simulator code.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple, Union

from repro.cc.info import CCInfo
from repro.util.errors import ConfigurationError

__all__ = [
    "CC_REGISTRY_VERSION",
    "cc_infos",
    "cc_names",
    "describe_cc",
    "get_cc",
    "make_sender",
    "register_cc",
    "unregister_cc",
]

#: Behavioural version of the built-in senders.  The result store
#: (:mod:`repro.store`) salts every content key with this, so bumping
#: it — required whenever a sender change alters simulated bytes —
#: invalidates all cached results computed under the old behaviour.
#: Version 2: the model zoo (cubic/bbr/compound/relentless) joined the
#: registry and ``cc_params`` joined the spec hash.
CC_REGISTRY_VERSION = 2

#: name -> info, in registration order (dict preserves insertion)
_REGISTRY: Dict[str, CCInfo] = {}

_builtins_registered = False


def _ensure_builtins() -> None:
    """Register the built-in senders exactly once, on first access.

    Deferred because the sender modules live in :mod:`repro.simulator`,
    which imports this registry for its connection wiring — a
    module-level import here would be circular.  By first access the
    :mod:`repro.cc` package is fully initialised, so the simulator's
    imports back into it resolve.
    """
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    from repro.cc.info import (
        BbrParams,
        CompoundParams,
        CubicParams,
        RelentlessParams,
    )
    from repro.simulator.bbr import BbrSender
    from repro.simulator.compound import CompoundSender
    from repro.simulator.cubic import CubicSender
    from repro.simulator.newreno import NewRenoSender
    from repro.simulator.relentless import RelentlessSender
    from repro.simulator.reno import RenoSender

    for info in (
        CCInfo(
            name="reno",
            factory=RenoSender,
            family="loss-based",
            summary="classic AIMD: the paper's kernel sender (slow start, "
            "fast retransmit/recovery, RTO backoff to 64T)",
            docs="RFC 5681; paper Section III",
        ),
        CCInfo(
            name="newreno",
            factory=NewRenoSender,
            family="loss-based",
            summary="Reno plus partial-ACK fast recovery: one recovery "
            "episode per lossy window instead of an RTO",
            docs="RFC 6582",
        ),
        CCInfo(
            name="cubic",
            factory=CubicSender,
            family="loss-based",
            summary="time-based cubic window growth around the last loss "
            "plateau, with the TCP-friendly AIMD floor",
            params_type=CubicParams,
            docs="RFC 8312",
        ),
        CCInfo(
            name="bbr",
            factory=BbrSender,
            family="rate-based",
            summary="BBR-style model sender: max-bandwidth/min-RTT probing "
            "state machine, window = gain x BDP, paced sub-bursts",
            params_type=BbrParams,
            docs="Cardwell et al., ACM Queue 14(5), 2016",
        ),
        CCInfo(
            name="compound",
            factory=CompoundSender,
            family="delay-based",
            summary="dual window: Reno loss window plus a delay window "
            "that drains as queueing delay builds",
            params_type=CompoundParams,
            docs="Tan et al., INFOCOM 2006; arXiv:1511.01344",
        ),
        CCInfo(
            name="relentless",
            factory=RelentlessSender,
            family="loss-based",
            summary="NewReno recovery that decrements the window by "
            "exactly the segments lost instead of halving",
            params_type=RelentlessParams,
            docs="Mathis, IETF draft 2009; arXiv:1102.3270",
        ),
    ):
        _REGISTRY[info.name] = info


def register_cc(
    name_or_info: Union[str, CCInfo],
    factory: Optional[Callable] = None,
    *,
    replace: bool = False,
) -> CCInfo:
    """Register a congestion-control sender.

    Preferred form: pass a :class:`~repro.cc.info.CCInfo` record
    (``register_cc(CCInfo(name=..., factory=..., ...))``).  The legacy
    two-argument form ``register_cc(name, factory)`` wraps the factory
    in a default record.  Either way the factory must follow the
    sender constructor protocol documented on
    :class:`repro.simulator.sender_base.BaseSender`.

    ``replace=True`` allows overriding an existing registration (used
    by tests and by downstream experiments that patch a variant).
    Returns the stored record.
    """
    _ensure_builtins()
    if isinstance(name_or_info, CCInfo):
        if factory is not None:
            raise ConfigurationError(
                "register_cc takes either a CCInfo or (name, factory), "
                "not both"
            )
        info = name_or_info
    else:
        # CCInfo.__post_init__ validates the name/factory and raises
        # ConfigurationError pointing at the BaseSender protocol.
        info = CCInfo(name=name_or_info, factory=factory)
    if info.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"congestion control {info.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[info.name] = info
    return info


def unregister_cc(name: str) -> None:
    """Remove a registration (no-op if absent); for test isolation."""
    _ensure_builtins()
    _REGISTRY.pop(name, None)


def cc_names() -> Tuple[str, ...]:
    """Registered congestion-control names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def cc_infos() -> Tuple[CCInfo, ...]:
    """Every registration's :class:`CCInfo`, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY.values())


def describe_cc(name: str) -> CCInfo:
    """The :class:`CCInfo` registered under ``name``.

    Raises :class:`~repro.util.errors.ConfigurationError` naming the
    known variants — the error the CLI surfaces for a typo'd ``--cc``.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def get_cc(name: str) -> Callable:
    """The sender factory registered under ``name`` (see :func:`describe_cc`)."""
    return describe_cc(name).factory


def make_sender(name: str, simulator, data_link, log, *, cc_params=None, **kwargs):
    """Instantiate the sender registered under ``name``.

    ``cc_params`` — an instance of the variant's tuning dataclass
    (``describe_cc(name).params_type``) — is spread into the factory as
    keyword arguments, so tuning rides through
    :class:`~repro.exec.FlowSpec` as one hashable value.  Passing
    params to a variant that declares none, or of the wrong type, is a
    configuration error (a silently ignored knob would desynchronise
    the flow key from the simulated bytes).
    """
    info = describe_cc(name)
    if cc_params is not None:
        if info.params_type is None:
            raise ConfigurationError(
                f"congestion control {name!r} takes no cc_params"
            )
        if not isinstance(cc_params, info.params_type):
            raise ConfigurationError(
                f"cc_params for {name!r} must be a "
                f"{info.params_type.__name__}, got {type(cc_params).__name__}"
            )
        kwargs.update(dataclasses.asdict(cc_params))
    return info.factory(simulator, data_link, log, **kwargs)
