"""``python -m repro.cc`` — the congestion-control zoo from the shell.

Subcommands:

* ``list`` — catalog of every registered variant (name, family,
  tuning-params type, summary), ``--json`` for machines;
* ``show`` — one variant in full: metadata, reference docs, and the
  tuning dataclass's fields with their defaults.

Mirrors the :mod:`repro.scenarios` CLI idiom: argparse subcommands
bound via ``set_defaults(fn=...)``, :class:`~repro.util.errors.ReproError`
mapped to exit code 2.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from repro.cc.info import CCInfo
from repro.cc.registry import cc_infos, describe_cc
from repro.util.errors import ReproError

__all__ = ["main"]


def _params_fields(info: CCInfo) -> list:
    if info.params_type is None:
        return []
    return [
        {"name": field.name, "default": field.default, "type": field.type}
        for field in dataclasses.fields(info.params_type)
    ]


def _info_row(info: CCInfo) -> dict:
    return {
        "name": info.name,
        "family": info.family,
        "params": info.params_type.__name__ if info.params_type else None,
        "summary": info.summary,
        "docs": info.docs,
    }


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [_info_row(info) for info in cc_infos()]
    if args.family:
        rows = [row for row in rows if row["family"] == args.family]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    header = f"{'NAME':<12} {'FAMILY':<12} {'PARAMS':<16} SUMMARY"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<12} {row['family']:<12} "
            f"{row['params'] or '-':<16} {row['summary']}"
        )
    print(f"{len(rows)} variant(s)")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    info = describe_cc(args.name)
    if args.json:
        payload = _info_row(info)
        payload["factory"] = f"{info.factory.__module__}.{info.factory.__qualname__}"
        payload["params_fields"] = _params_fields(info)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"name:    {info.name}")
    print(f"family:  {info.family}")
    print(f"factory: {info.factory.__module__}.{info.factory.__qualname__}")
    print(f"summary: {info.summary}")
    if info.docs:
        print(f"docs:    {info.docs}")
    if info.params_type is not None:
        print(f"params:  {info.params_type.__name__}")
        for field in _params_fields(info):
            print(f"  {field['name']:<18} = {field['default']!r}")
    else:
        print("params:  none")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cc",
        description="List and describe the registered congestion controls.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="catalog of registered variants")
    p_list.add_argument("--json", action="store_true", help="JSON output")
    p_list.add_argument(
        "--family", help="only variants of this family "
        "(loss-based, delay-based, rate-based)"
    )
    p_list.set_defaults(fn=_cmd_list)

    p_show = sub.add_parser("show", help="one variant in full")
    p_show.add_argument("name", help="registered variant name")
    p_show.add_argument("--json", action="store_true", help="JSON output")
    p_show.set_defaults(fn=_cmd_show)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
