"""repro.cc — the public congestion-control surface.

The model zoo's front door: every sender variant the simulator can run
is registered here under a short name, described by a
:class:`CCInfo` record (family, summary, tuning dataclass, reference),
and instantiated by name via :func:`make_sender`::

    from repro.cc import cc_infos, describe_cc, CubicParams

    for info in cc_infos():            # registration order
        print(info.name, info.family, info.summary)

    describe_cc("cubic").params_type   # -> CubicParams
    spec = FlowSpec(scenario=..., duration=60.0, cc="cubic",
                    cc_params=CubicParams(beta=0.5))

Tuning params travel on :attr:`repro.exec.FlowSpec.cc_params` and are
hashed into the flow's content key, so a store-backed campaign caches
each tuning point separately.  ``python -m repro.cc list|show NAME``
prints the zoo from the command line.

The old import path :mod:`repro.simulator.cc` still works behind a
warn-once deprecation shim; new code should import from here.
"""

from repro.cc.info import (
    CC_FAMILIES,
    BbrParams,
    CCInfo,
    CompoundParams,
    CubicParams,
    RelentlessParams,
)
from repro.cc.registry import (
    CC_REGISTRY_VERSION,
    cc_infos,
    cc_names,
    describe_cc,
    get_cc,
    make_sender,
    register_cc,
    unregister_cc,
)

__all__ = [
    "BbrParams",
    "CCInfo",
    "CC_FAMILIES",
    "CC_REGISTRY_VERSION",
    "CompoundParams",
    "CubicParams",
    "RelentlessParams",
    "cc_infos",
    "cc_names",
    "describe_cc",
    "get_cc",
    "make_sender",
    "register_cc",
    "unregister_cc",
]
