"""Schema plumbing for scenario documents: loading, lines, errors.

Scenario documents are YAML (or JSON — YAML is a superset, so one
loader serves both).  Validation errors must be *actionable*: a
misspelled key fails with an error naming the offending key, the dotted
path to it, and — when the document came from text — the source line it
sits on.  :func:`load_mapping` therefore parses the text twice: once
with ``yaml.safe_load`` for the data, once with ``yaml.compose`` for
the node marks, from which it builds a ``dotted.path → line`` map that
:class:`SchemaError` consults.

The validation helpers (:func:`take`, :func:`expect_mapping`,
:func:`reject_unknown_keys`) are the small vocabulary
:mod:`repro.scenarios.document` builds its field-by-field parsing from;
they thread a :class:`SourceInfo` through so every error is located.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import yaml

from repro.util.errors import ConfigurationError

__all__ = [
    "SchemaError",
    "SourceInfo",
    "expect_mapping",
    "load_mapping",
    "reject_unknown_keys",
    "take",
]

#: sentinel distinguishing "absent" from an explicit None
_MISSING = object()


class SchemaError(ConfigurationError):
    """A scenario document failed schema validation.

    Carries the dotted ``path`` of the offending field and, when the
    document was loaded from text, the 1-based source ``line`` (and
    file name) it came from — the message embeds both.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str = "",
        line: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        self.path = path
        self.line = line
        self.source = source
        location = ""
        if source is not None and line is not None:
            location = f" ({source}, line {line})"
        elif source is not None:
            location = f" ({source})"
        elif line is not None:
            location = f" (line {line})"
        prefix = f"{path}: " if path else ""
        super().__init__(f"{prefix}{message}{location}")


@dataclass(frozen=True)
class SourceInfo:
    """Where a document came from, for locating errors.

    ``lines`` maps dotted field paths (``"mobility.peak_speed_kmh"``,
    ``"extra_loss[1].direction"``) to 1-based source lines; empty for
    documents built from in-memory dicts.
    """

    name: Optional[str] = None
    lines: Dict[str, int] = field(default_factory=dict)

    def line_of(self, path: str) -> Optional[int]:
        return self.lines.get(path)

    def error(self, message: str, path: str = "") -> SchemaError:
        return SchemaError(
            message, path=path, line=self.line_of(path), source=self.name
        )


def _index_node(node, path: str, lines: Dict[str, int]) -> None:
    """Record the source line of every field reachable from ``node``."""
    lines.setdefault(path or "<document>", node.start_mark.line + 1)
    if isinstance(node, yaml.MappingNode):
        for key_node, value_node in node.value:
            key = str(key_node.value)
            child = f"{path}.{key}" if path else key
            # The *key's* line is the natural anchor for "unknown key"
            # errors; the value subtree is indexed beneath it.
            lines[child] = key_node.start_mark.line + 1
            _index_node(value_node, child, lines)
    elif isinstance(node, yaml.SequenceNode):
        for position, item in enumerate(node.value):
            _index_node(item, f"{path}[{position}]", lines)


def load_mapping(text: str, source_name: Optional[str] = None) -> Tuple[dict, SourceInfo]:
    """Parse document text into ``(mapping, source-info-with-lines)``.

    Accepts YAML and JSON.  The top level must be a mapping; scalar or
    sequence documents are schema errors, as is unparseable text.
    """
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as error:
        mark = getattr(error, "problem_mark", None)
        raise SchemaError(
            f"document is not valid YAML/JSON: {error}",
            line=None if mark is None else mark.line + 1,
            source=source_name,
        ) from None
    if not isinstance(data, dict):
        raise SchemaError(
            f"scenario document must be a mapping, got "
            f"{type(data).__name__}",
            source=source_name,
        )
    lines: Dict[str, int] = {}
    node = yaml.compose(text)  # same parser; cannot fail if safe_load didn't
    if node is not None:
        _index_node(node, "", lines)
    return data, SourceInfo(name=source_name, lines=lines)


def expect_mapping(value: object, path: str, info: SourceInfo) -> dict:
    """``value`` as a dict, or a located schema error."""
    if not isinstance(value, dict):
        raise info.error(
            f"expected a mapping, got {type(value).__name__}", path
        )
    return value


def reject_unknown_keys(
    mapping: dict, known: Iterable[str], path: str, info: SourceInfo
) -> None:
    """Fail on the first unknown key, naming it and its source line."""
    known_set = set(known)
    for key in mapping:
        if str(key) not in known_set:
            key_path = f"{path}.{key}" if path else str(key)
            raise SchemaError(
                f"unknown field {str(key)!r}; known fields here: "
                f"{sorted(known_set)}",
                path=key_path,
                line=info.line_of(key_path),
                source=info.name,
            )


def take(
    mapping: dict,
    key: str,
    path: str,
    info: SourceInfo,
    *,
    kind: type = object,
    required: bool = False,
    default: object = None,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
    choices: Optional[Sequence[object]] = None,
) -> object:
    """Fetch + type/range-check one field of a mapping.

    ``kind=float`` accepts ints (YAML authors write ``60`` for ``60.0``)
    and coerces them; ``bool`` is never accepted as a number.  ``None``
    values are treated as absent — ``key: ~`` means "use the default".
    """
    field_path = f"{path}.{key}" if path else key
    value = mapping.get(key, _MISSING)
    if value is _MISSING or value is None:
        if required:
            raise info.error(f"required field {key!r} is missing", path or key)
        return default
    if kind is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise info.error(
                f"expected a number, got {type(value).__name__}: {value!r}",
                field_path,
            )
        value = float(value)
        if value != value or value in (float("inf"), -float("inf")):
            raise info.error(f"must be finite, got {value!r}", field_path)
    elif kind is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise info.error(
                f"expected an integer, got {type(value).__name__}: {value!r}",
                field_path,
            )
    elif kind is not object and not isinstance(value, kind):
        raise info.error(
            f"expected {kind.__name__}, got {type(value).__name__}: {value!r}",
            field_path,
        )
    if minimum is not None and value < minimum:
        raise info.error(f"must be >= {minimum:g}, got {value!r}", field_path)
    if maximum is not None and value > maximum:
        raise info.error(f"must be <= {maximum:g}, got {value!r}", field_path)
    if choices is not None and value not in choices:
        raise info.error(
            f"must be one of {sorted(map(str, choices))}, got {value!r}",
            field_path,
        )
    return value
