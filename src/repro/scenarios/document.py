"""The scenario document model: parsed, validated, immutable.

A :class:`ScenarioDocument` is the in-memory form of one scenario file:
every environment axis the paper measures, as plain data —

* ``mobility`` — a named trapezoidal speed profile or one of the three
  paper presets (``btr`` / ``stationary`` / ``driving``);
* ``cells`` — handoff geometry (spacing and phase along the route);
* ``provider`` — one of the measured carriers by name, or a fully
  inline carrier definition (multi-provider mixes, hypothetical
  networks);
* ``flow_start_offset_s`` — where in the trip the measured flow starts;
* ``faults`` — a declarative :class:`~repro.robustness.faults.FaultPlan`
  (handoff storms, deep fades, ACK blackouts, RTT spikes);
* ``extra_loss`` — additional Gilbert–Elliott loss overlays per
  direction (tunnels, weather, station congestion).

:func:`parse_document` turns a loaded mapping into a document with
schema validation (unknown keys fail, with source lines);
:func:`document_to_dict` is the exact inverse used by the serializer.
Speeds may be authored in km/h (``peak_speed_kmh``) or m/s
(``peak_speed_mps``); the serializer always emits m/s so that a
serialize → parse → compile cycle reproduces a compiled scenario
bit-for-bit (no unit-conversion rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hsr.mobility import DEFAULT_ACCELERATION
from repro.robustness.faults import FaultPlan
from repro.scenarios.schema import (
    SourceInfo,
    expect_mapping,
    reject_unknown_keys,
    take,
)
from repro.util.units import kmh_to_mps

__all__ = [
    "CellsSpec",
    "ExtraLossSpec",
    "MobilitySpec",
    "ProviderSpec",
    "ScenarioDocument",
    "document_to_dict",
    "parse_document",
]

#: mobility presets mirroring the paper's three measured regimes
MOBILITY_PRESETS = ("btr", "stationary", "driving")


@dataclass(frozen=True)
class MobilitySpec:
    """Either a preset name or explicit trapezoid parameters (m/s)."""

    preset: Optional[str] = None
    name: Optional[str] = None
    peak_speed_mps: Optional[float] = None
    acceleration: float = DEFAULT_ACCELERATION
    route_length_m: float = 120_000.0


@dataclass(frozen=True)
class CellsSpec:
    """Cell geometry along the route (metres)."""

    spacing_m: float = 2_500.0
    offset_m: float = 1_250.0


@dataclass(frozen=True)
class ProviderSpec:
    """A carrier: preset reference (``ref``) or inline definition."""

    ref: Optional[str] = None
    name: Optional[str] = None
    technology: str = "LTE"
    one_way_delay_s: float = 0.030
    base_data_loss: float = 0.001
    base_ack_loss: float = 0.001
    coverage_penalty: float = 1.0
    wmax: float = 64.0
    handoff_mean_outage_s: float = 1.2
    ack_burst_mean_duration_s: float = 0.25
    ack_burst_spacing_s: float = 30.0


@dataclass(frozen=True)
class ExtraLossSpec:
    """One Gilbert–Elliott overlay on one direction."""

    direction: str
    mean_good_s: float
    mean_bad_s: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    label: str = "extra-loss"


@dataclass(frozen=True)
class ScenarioDocument:
    """One validated scenario file, ready for the compiler."""

    name: str
    mobility: MobilitySpec
    provider: ProviderSpec
    description: str = ""
    tags: Tuple[str, ...] = ()
    cells: CellsSpec = CellsSpec()
    flow_start_offset_s: float = 300.0
    faults: Optional[FaultPlan] = None
    extra_loss: Tuple[ExtraLossSpec, ...] = ()
    #: overrides the compiled ``Scenario.name`` (the RNG stream label);
    #: used to reproduce the legacy presets' draw sequences byte-for-byte
    scenario_name: Optional[str] = None


# -- parsing ------------------------------------------------------------

_TOP_LEVEL_KEYS = (
    "name",
    "description",
    "tags",
    "mobility",
    "cells",
    "provider",
    "flow_start_offset_s",
    "faults",
    "extra_loss",
    "scenario_name",
)

_MOBILITY_KEYS = (
    "preset",
    "name",
    "peak_speed_kmh",
    "peak_speed_mps",
    "acceleration",
    "route_length_m",
)

_CELLS_KEYS = ("spacing_m", "offset_m")

_PROVIDER_KEYS = (
    "name",
    "technology",
    "one_way_delay_s",
    "base_data_loss",
    "base_ack_loss",
    "coverage_penalty",
    "wmax",
    "handoff_mean_outage_s",
    "ack_burst_mean_duration_s",
    "ack_burst_spacing_s",
)

_FAULTS_KEYS = (
    "name",
    "handoff_storm_rate",
    "handoff_storm_mean_outage",
    "deep_fade_rate",
    "deep_fade_mean_duration",
    "deep_fade_loss",
    "ack_blackout_rate",
    "ack_blackout_mean_duration",
    "rtt_spike_sigma",
)

_EXTRA_LOSS_KEYS = (
    "direction",
    "mean_good_s",
    "mean_bad_s",
    "loss_good",
    "loss_bad",
    "label",
)


def _parse_mobility(value: object, path: str, info: SourceInfo) -> MobilitySpec:
    mapping = expect_mapping(value, path, info)
    reject_unknown_keys(mapping, _MOBILITY_KEYS, path, info)
    preset = take(mapping, "preset", path, info, kind=str,
                  choices=MOBILITY_PRESETS)
    kmh = take(mapping, "peak_speed_kmh", path, info, kind=float, minimum=0.0)
    mps = take(mapping, "peak_speed_mps", path, info, kind=float, minimum=0.0)
    if preset is not None:
        extras = [key for key in _MOBILITY_KEYS[1:] if mapping.get(key) is not None]
        if extras:
            raise info.error(
                f"preset mobility takes no other fields, got {extras}", path
            )
        return MobilitySpec(preset=preset)
    if kmh is not None and mps is not None:
        raise info.error(
            "give peak_speed_kmh or peak_speed_mps, not both", path
        )
    if kmh is None and mps is None:
        raise info.error(
            "mobility needs a preset or a peak speed "
            "(peak_speed_kmh / peak_speed_mps)",
            path,
        )
    peak = kmh_to_mps(kmh) if kmh is not None else mps
    return MobilitySpec(
        preset=None,
        name=take(mapping, "name", path, info, kind=str),
        peak_speed_mps=peak,
        acceleration=take(
            mapping, "acceleration", path, info, kind=float,
            default=DEFAULT_ACCELERATION,
        ),
        route_length_m=take(
            mapping, "route_length_m", path, info, kind=float,
            minimum=1.0, default=120_000.0,
        ),
    )


def _parse_cells(value: object, path: str, info: SourceInfo) -> CellsSpec:
    mapping = expect_mapping(value, path, info)
    reject_unknown_keys(mapping, _CELLS_KEYS, path, info)
    spacing = take(mapping, "spacing_m", path, info, kind=float,
                   default=2_500.0)
    offset = take(mapping, "offset_m", path, info, kind=float,
                  minimum=0.0, default=1_250.0)
    if not spacing > 0.0:
        raise info.error(
            f"spacing_m must be positive, got {spacing!r}", f"{path}.spacing_m"
        )
    if offset >= spacing:
        # CellLayout's phase-offset invariant, checked here so authors
        # get a located error instead of a compile-time one.
        raise info.error(
            f"offset_m must be smaller than spacing_m ({spacing:g}), "
            f"got {offset!r}",
            f"{path}.offset_m",
        )
    return CellsSpec(spacing_m=spacing, offset_m=offset)


def _parse_provider(value: object, path: str, info: SourceInfo) -> ProviderSpec:
    if isinstance(value, str):
        return ProviderSpec(ref=value)
    mapping = expect_mapping(value, path, info)
    reject_unknown_keys(mapping, _PROVIDER_KEYS, path, info)
    name = take(mapping, "name", path, info, kind=str, required=True)
    return ProviderSpec(
        ref=None,
        name=name,
        technology=take(mapping, "technology", path, info, kind=str,
                        choices=("LTE", "3G"), default="LTE"),
        one_way_delay_s=take(mapping, "one_way_delay_s", path, info,
                             kind=float, required=True),
        base_data_loss=take(mapping, "base_data_loss", path, info,
                            kind=float, minimum=0.0, required=True),
        base_ack_loss=take(mapping, "base_ack_loss", path, info,
                           kind=float, minimum=0.0, required=True),
        coverage_penalty=take(mapping, "coverage_penalty", path, info,
                              kind=float, minimum=1.0, default=1.0),
        wmax=take(mapping, "wmax", path, info, kind=float, default=64.0),
        handoff_mean_outage_s=take(mapping, "handoff_mean_outage_s", path,
                                   info, kind=float, default=1.2),
        ack_burst_mean_duration_s=take(mapping, "ack_burst_mean_duration_s",
                                       path, info, kind=float, default=0.25),
        ack_burst_spacing_s=take(mapping, "ack_burst_spacing_s", path, info,
                                 kind=float, default=30.0),
    )


def _parse_faults(value: object, path: str, info: SourceInfo) -> FaultPlan:
    mapping = expect_mapping(value, path, info)
    reject_unknown_keys(mapping, _FAULTS_KEYS, path, info)
    kwargs: Dict[str, object] = {
        "name": take(mapping, "name", path, info, kind=str, default="chaos")
    }
    for key in _FAULTS_KEYS[1:]:
        value_taken = take(mapping, key, path, info, kind=float, minimum=0.0)
        if value_taken is not None:
            kwargs[key] = value_taken
    return FaultPlan(**kwargs)


def _parse_extra_loss(
    value: object, path: str, info: SourceInfo
) -> Tuple[ExtraLossSpec, ...]:
    if not isinstance(value, list):
        raise info.error(
            f"expected a list of overlays, got {type(value).__name__}", path
        )
    overlays = []
    for position, item in enumerate(value):
        item_path = f"{path}[{position}]"
        mapping = expect_mapping(item, item_path, info)
        reject_unknown_keys(mapping, _EXTRA_LOSS_KEYS, item_path, info)
        direction = take(mapping, "direction", item_path, info, kind=str,
                         choices=("data", "ack"), required=True)
        overlays.append(
            ExtraLossSpec(
                direction=direction,
                mean_good_s=take(mapping, "mean_good_s", item_path, info,
                                 kind=float, required=True),
                mean_bad_s=take(mapping, "mean_bad_s", item_path, info,
                                kind=float, required=True),
                loss_good=take(mapping, "loss_good", item_path, info,
                               kind=float, minimum=0.0, maximum=1.0,
                               default=0.0),
                loss_bad=take(mapping, "loss_bad", item_path, info,
                              kind=float, minimum=0.0, maximum=1.0,
                              default=1.0),
                label=take(mapping, "label", item_path, info, kind=str,
                           default=f"{direction}-{position}"),
            )
        )
    return tuple(overlays)


def parse_document(
    data: dict, info: Optional[SourceInfo] = None
) -> ScenarioDocument:
    """Validate a loaded mapping into a :class:`ScenarioDocument`.

    Every violation raises :class:`~repro.scenarios.schema.SchemaError`
    naming the offending field (and its source line when ``info``
    carries one).
    """
    if info is None:
        info = SourceInfo()
    mapping = expect_mapping(data, "", info)
    reject_unknown_keys(mapping, _TOP_LEVEL_KEYS, "", info)
    name = take(mapping, "name", "", info, kind=str, required=True)
    if not name.strip():
        raise info.error("scenario name must be non-empty", "name")
    tags_raw = take(mapping, "tags", "", info, default=[])
    if not isinstance(tags_raw, list) or not all(
        isinstance(tag, str) for tag in tags_raw
    ):
        raise info.error("tags must be a list of strings", "tags")
    if "mobility" not in mapping or mapping["mobility"] is None:
        raise info.error("required field 'mobility' is missing", "")
    if "provider" not in mapping or mapping["provider"] is None:
        raise info.error("required field 'provider' is missing", "")
    faults = mapping.get("faults")
    extra_loss = mapping.get("extra_loss")
    return ScenarioDocument(
        name=name,
        description=take(mapping, "description", "", info, kind=str,
                         default=""),
        tags=tuple(tags_raw),
        mobility=_parse_mobility(mapping["mobility"], "mobility", info),
        cells=(
            _parse_cells(mapping["cells"], "cells", info)
            if mapping.get("cells") is not None
            else CellsSpec()
        ),
        provider=_parse_provider(mapping["provider"], "provider", info),
        flow_start_offset_s=take(
            mapping, "flow_start_offset_s", "", info, kind=float,
            minimum=0.0, default=300.0,
        ),
        faults=(
            _parse_faults(faults, "faults", info)
            if faults is not None
            else None
        ),
        extra_loss=(
            _parse_extra_loss(extra_loss, "extra_loss", info)
            if extra_loss is not None
            else ()
        ),
        scenario_name=take(mapping, "scenario_name", "", info, kind=str),
    )


# -- serialization ------------------------------------------------------


def document_to_dict(document: ScenarioDocument) -> dict:
    """The exact plain-data inverse of :func:`parse_document`.

    Emits speeds in m/s and omits nothing that was explicit in the
    document, so ``parse_document(document_to_dict(d)) == d``.
    """
    data: dict = {"name": document.name}
    if document.description:
        data["description"] = document.description
    if document.tags:
        data["tags"] = list(document.tags)
    mobility = document.mobility
    if mobility.preset is not None:
        data["mobility"] = {"preset": mobility.preset}
    else:
        mobility_data: dict = {"peak_speed_mps": mobility.peak_speed_mps}
        if mobility.name is not None:
            mobility_data["name"] = mobility.name
        mobility_data["acceleration"] = mobility.acceleration
        mobility_data["route_length_m"] = mobility.route_length_m
        data["mobility"] = mobility_data
    data["cells"] = {
        "spacing_m": document.cells.spacing_m,
        "offset_m": document.cells.offset_m,
    }
    provider = document.provider
    if provider.ref is not None:
        data["provider"] = provider.ref
    else:
        data["provider"] = {
            "name": provider.name,
            "technology": provider.technology,
            "one_way_delay_s": provider.one_way_delay_s,
            "base_data_loss": provider.base_data_loss,
            "base_ack_loss": provider.base_ack_loss,
            "coverage_penalty": provider.coverage_penalty,
            "wmax": provider.wmax,
            "handoff_mean_outage_s": provider.handoff_mean_outage_s,
            "ack_burst_mean_duration_s": provider.ack_burst_mean_duration_s,
            "ack_burst_spacing_s": provider.ack_burst_spacing_s,
        }
    data["flow_start_offset_s"] = document.flow_start_offset_s
    if document.faults is not None:
        plan = document.faults
        data["faults"] = {
            "name": plan.name,
            "handoff_storm_rate": plan.handoff_storm_rate,
            "handoff_storm_mean_outage": plan.handoff_storm_mean_outage,
            "deep_fade_rate": plan.deep_fade_rate,
            "deep_fade_mean_duration": plan.deep_fade_mean_duration,
            "deep_fade_loss": plan.deep_fade_loss,
            "ack_blackout_rate": plan.ack_blackout_rate,
            "ack_blackout_mean_duration": plan.ack_blackout_mean_duration,
            "rtt_spike_sigma": plan.rtt_spike_sigma,
        }
    if document.extra_loss:
        data["extra_loss"] = [
            {
                "direction": overlay.direction,
                "mean_good_s": overlay.mean_good_s,
                "mean_bad_s": overlay.mean_bad_s,
                "loss_good": overlay.loss_good,
                "loss_bad": overlay.loss_bad,
                "label": overlay.label,
            }
            for overlay in document.extra_loss
        ]
    if document.scenario_name is not None:
        data["scenario_name"] = document.scenario_name
    return data
