"""The scenario name registry and the bundled library.

Every ``.yaml``/``.yml``/``.json`` file under ``library/`` is one
bundled scenario; the registry loads them lazily, indexes them by their
``name`` field, and layers user registrations
(:func:`register_document`) on top.  A *reference* — the string the CLI
and ``FlowSpec.scenario_ref`` accept — resolves first as a registered
name and then, if it names no scenario but points at an existing file,
as a path; :func:`compile_scenario` takes it straight to a frozen
:class:`~repro.hsr.scenario.Scenario`.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.hsr.scenario import Scenario
from repro.scenarios.compile import compile_document
from repro.scenarios.document import ScenarioDocument
from repro.scenarios.serialize import load_document_file
from repro.util.errors import ConfigurationError

__all__ = [
    "compile_scenario",
    "get_scenario_document",
    "library_dir",
    "library_paths",
    "register_document",
    "resolve_scenario_ref",
    "scenario_names",
    "unregister_document",
]

_SUFFIXES = (".yaml", ".yml", ".json")

_lock = threading.Lock()
_bundled: Optional[Dict[str, ScenarioDocument]] = None
_registered: Dict[str, ScenarioDocument] = {}


def library_dir() -> Path:
    """The directory holding the bundled scenario files."""
    return Path(__file__).resolve().parent / "library"


def library_paths() -> Tuple[Path, ...]:
    """The bundled scenario files, sorted by file name."""
    return tuple(
        sorted(
            (
                path
                for path in library_dir().iterdir()
                if path.suffix in _SUFFIXES
            ),
            key=lambda path: path.name,
        )
    )


def _load_bundled() -> Dict[str, ScenarioDocument]:
    global _bundled
    with _lock:
        if _bundled is None:
            documents: Dict[str, ScenarioDocument] = {}
            for path in library_paths():
                document = load_document_file(path)
                if document.name in documents:
                    raise ConfigurationError(
                        f"bundled scenario name {document.name!r} appears "
                        f"twice (second occurrence: {path})"
                    )
                documents[document.name] = document
            _bundled = documents
    return _bundled


def scenario_names() -> Tuple[str, ...]:
    """Every known scenario name (bundled + registered), sorted."""
    return tuple(sorted({**_load_bundled(), **_registered}))


def get_scenario_document(name: str) -> ScenarioDocument:
    """The document registered under ``name``; registrations shadow
    bundled scenarios of the same name."""
    document = _registered.get(name) or _load_bundled().get(name)
    if document is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{list(scenario_names())}"
        )
    return document


def register_document(document: ScenarioDocument) -> None:
    """Add ``document`` to the registry under its own name.

    Registering the same name twice raises — like channel hooks, a
    scenario name is an identity two runs must agree on.
    """
    if document.name in _registered:
        raise ConfigurationError(
            f"scenario {document.name!r} is already registered"
        )
    _registered[document.name] = document


def unregister_document(name: str) -> None:
    """Remove a user registration (bundled scenarios cannot be removed)."""
    if name not in _registered:
        raise ConfigurationError(f"scenario {name!r} is not registered")
    del _registered[name]


def resolve_scenario_ref(ref: str) -> ScenarioDocument:
    """A reference — registered name, or path to a scenario file — as a
    validated document."""
    bundled = _load_bundled()
    if ref in _registered or ref in bundled:
        return get_scenario_document(ref)
    path = Path(ref)
    if path.suffix in _SUFFIXES and path.exists():
        return load_document_file(path)
    raise ConfigurationError(
        f"scenario reference {ref!r} is neither a known scenario name nor "
        f"an existing {'/'.join(_SUFFIXES)} file; known scenarios: "
        f"{list(scenario_names())}"
    )


def compile_scenario(ref: str) -> Scenario:
    """A reference straight to its frozen :class:`Scenario`."""
    return compile_document(resolve_scenario_ref(ref))
