"""Scenarios as data: schema, compiler, registry, bundled library.

This package turns the measurement environments of Wang et al. — and
any environment a user wants to study — into validated, serializable
*scenario documents* (YAML/JSON) that compile to the frozen
:class:`~repro.hsr.scenario.Scenario` the rest of the stack runs:

* :mod:`repro.scenarios.schema` — loading + located validation errors;
* :mod:`repro.scenarios.document` — the document model and its parser;
* :mod:`repro.scenarios.compile` — document ⇄ scenario, both ways;
* :mod:`repro.scenarios.serialize` — YAML/JSON text round-tripping;
* :mod:`repro.scenarios.registry` — the name registry plus the bundled
  library (``python -m repro.scenarios list``);
* :mod:`repro.scenarios.cli` — the ``list|validate|show|compile``
  command-line toolbox.

The paper's three presets re-expressed as bundled documents compile to
byte-identical flows (the equivalence tests pin this), so the data path
is not an approximation of the code path — it *is* the code path.
"""

from repro.scenarios.compile import compile_document, document_from_scenario
from repro.scenarios.document import (
    CellsSpec,
    ExtraLossSpec,
    MobilitySpec,
    ProviderSpec,
    ScenarioDocument,
    document_to_dict,
    parse_document,
)
from repro.scenarios.registry import (
    compile_scenario,
    get_scenario_document,
    library_dir,
    library_paths,
    register_document,
    resolve_scenario_ref,
    scenario_names,
    unregister_document,
)
from repro.scenarios.schema import SchemaError, SourceInfo, load_mapping
from repro.scenarios.serialize import (
    document_to_json,
    document_to_yaml,
    load_document_file,
    load_document_text,
    roundtrip_check,
)

__all__ = [
    "CellsSpec",
    "ExtraLossSpec",
    "MobilitySpec",
    "ProviderSpec",
    "ScenarioDocument",
    "SchemaError",
    "SourceInfo",
    "compile_document",
    "compile_scenario",
    "document_from_scenario",
    "document_to_dict",
    "document_to_json",
    "document_to_yaml",
    "get_scenario_document",
    "library_dir",
    "library_paths",
    "load_document_file",
    "load_document_text",
    "load_mapping",
    "parse_document",
    "register_document",
    "resolve_scenario_ref",
    "roundtrip_check",
    "scenario_names",
    "unregister_document",
]
