"""``python -m repro.scenarios`` — the scenario toolbox.

Subcommands:

* ``list`` — catalog of every known scenario (name, speed, carrier,
  loss regime), ``--json`` for machines;
* ``validate`` — parse + compile scenario files or the whole bundled
  library (``--all``), optionally running a short flow through each
  compiled scenario (``--run-flows SECONDS``) — the CI gate;
* ``show`` — one scenario re-serialized as canonical YAML;
* ``compile`` — compile a reference and report the built channel
  parameters as JSON.

References are registered names or paths to ``.yaml``/``.yml``/
``.json`` files, everywhere a scenario is accepted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.scenarios.compile import compile_document
from repro.scenarios.document import ScenarioDocument
from repro.scenarios.registry import (
    resolve_scenario_ref,
    scenario_names,
)
from repro.scenarios.serialize import document_to_yaml
from repro.util.errors import ReproError
from repro.util.units import mps_to_kmh

__all__ = ["main"]


def _loss_regime(document: ScenarioDocument) -> str:
    parts: List[str] = ["base"]
    if document.extra_loss:
        parts.append("overlay")
    if document.faults is not None and not document.faults.is_noop():
        parts.append("faults")
    return "+".join(parts)


def _catalog_row(document: ScenarioDocument) -> dict:
    scenario = compile_document(document)
    return {
        "name": document.name,
        "speed_kmh": round(mps_to_kmh(scenario.cruise_speed()), 1),
        "provider": scenario.provider.name,
        "technology": scenario.provider.technology,
        "loss_regime": _loss_regime(document),
        "tags": list(document.tags),
        "description": document.description,
    }


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in scenario_names():
        document = resolve_scenario_ref(name)
        if args.tag and args.tag not in document.tags:
            continue
        rows.append(_catalog_row(document))
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    header = f"{'NAME':<26} {'KM/H':>6} {'PROVIDER':<18} {'TECH':<4} REGIME"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<26} {row['speed_kmh']:>6.1f} "
            f"{row['provider']:<18} {row['technology']:<4} "
            f"{row['loss_regime']}"
        )
    print(f"{len(rows)} scenario(s)")
    return 0


def _run_short_flow(document: ScenarioDocument, duration: float, seed: int):
    # Imported here so `list`/`show` never pull in the executor stack.
    from repro.exec.executor import simulate_spec
    from repro.exec.spec import FlowSpec

    spec = FlowSpec(
        scenario=compile_document(document),
        duration=duration,
        seed=seed,
        flow_id=document.name,
    )
    result, _ = simulate_spec(spec)
    return result


def _cmd_validate(args: argparse.Namespace) -> int:
    refs: Sequence[str] = args.refs
    if args.all or not refs:
        refs = scenario_names()
    failures = 0
    for ref in refs:
        try:
            document = resolve_scenario_ref(ref)
            scenario = compile_document(document)
            status = f"ok       compiled {scenario.name!r}"
            if args.run_flows is not None:
                result = _run_short_flow(document, args.run_flows, args.seed)
                status = (
                    f"ok       {result.throughput_mbps:8.3f} Mbps over "
                    f"{args.run_flows:g}s"
                )
        except ReproError as error:
            failures += 1
            status = f"FAIL     {error}"
        print(f"{ref:<28} {status}")
    if failures:
        print(f"{failures} scenario(s) failed validation", file=sys.stderr)
        return 1
    print(f"{len(refs)} scenario(s) valid")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    document = resolve_scenario_ref(args.ref)
    sys.stdout.write(document_to_yaml(document))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    document = resolve_scenario_ref(args.ref)
    scenario = compile_document(document)
    built = scenario.build(duration=args.duration, seed=args.seed)
    payload = {
        "name": scenario.name,
        "document_name": document.name,
        "mobility": scenario.mobility.name,
        "cruise_speed_kmh": mps_to_kmh(scenario.cruise_speed()),
        "provider": scenario.provider.name,
        "technology": scenario.provider.technology,
        "loss_regime": _loss_regime(document),
        "declarative": scenario.is_declarative,
        "build": {
            "duration_s": args.duration,
            "seed": args.seed,
            "base_rtt_s": scenario.provider.base_rtt,
            "min_rto_s": built.config.min_rto,
            "wmax": built.config.wmax,
            "jitter_sigma": built.config.jitter_sigma,
            "outage_windows": len(built.outages),
        },
    }
    print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List, validate, inspect, and compile scenario documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="catalog of known scenarios")
    p_list.add_argument("--json", action="store_true", help="JSON output")
    p_list.add_argument("--tag", help="only scenarios carrying this tag")
    p_list.set_defaults(fn=_cmd_list)

    p_validate = sub.add_parser(
        "validate", help="parse + compile scenarios (default: whole library)"
    )
    p_validate.add_argument(
        "refs", nargs="*", help="scenario names or files (default: all)"
    )
    p_validate.add_argument(
        "--all", action="store_true", help="validate every known scenario"
    )
    p_validate.add_argument(
        "--run-flows",
        type=float,
        metavar="SECONDS",
        help="also run one flow of this duration per scenario",
    )
    p_validate.add_argument("--seed", type=int, default=1)
    p_validate.set_defaults(fn=_cmd_validate)

    p_show = sub.add_parser("show", help="one scenario as canonical YAML")
    p_show.add_argument("ref", help="scenario name or file")
    p_show.set_defaults(fn=_cmd_show)

    p_compile = sub.add_parser(
        "compile", help="compile a scenario and report built parameters"
    )
    p_compile.add_argument("ref", help="scenario name or file")
    p_compile.add_argument("--duration", type=float, default=60.0)
    p_compile.add_argument("--seed", type=int, default=1)
    p_compile.set_defaults(fn=_cmd_compile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
