"""Compiling scenario documents to :class:`~repro.hsr.scenario.Scenario`
objects, and decompiling scenarios back to documents.

The compiler is a pure function of the document: compiling the same
document twice yields equal (``==``) frozen scenarios, and everything
stochastic stays seed-derived inside ``Scenario.build`` — a compiled
scenario is bit-compatible with a hand-constructed one.  In particular
the three paper presets re-expressed as documents (with
``scenario_name`` pinning the legacy RNG stream label) produce
byte-identical flows.

Decompilation (:func:`document_from_scenario`) is the tooling path:
any *declarative* scenario — one whose ``channel_hook`` is ``None`` or
a :class:`~repro.hsr.hooks.HookSpec` — maps back to a document, which
is how ``parse → compile → serialize → parse`` round-trips.  A scenario
carrying an opaque callable hook cannot be decompiled and fails with a
:class:`~repro.util.errors.ConfigurationError`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hsr.cells import CellLayout
from repro.hsr.hooks import HookSpec, chain_hooks
from repro.hsr.mobility import (
    MobilityProfile,
    btr_profile,
    driving_profile,
    stationary_profile,
)
from repro.hsr.provider import ALL_PROVIDERS, Provider, provider_by_name
from repro.hsr.scenario import Scenario
from repro.robustness.faults import FaultPlan
from repro.scenarios.document import (
    CellsSpec,
    ExtraLossSpec,
    MobilitySpec,
    ProviderSpec,
    ScenarioDocument,
)
from repro.util.errors import ConfigurationError

__all__ = ["compile_document", "document_from_scenario"]

_PRESET_PROFILES = {
    "btr": btr_profile,
    "stationary": stationary_profile,
    "driving": driving_profile,
}


def _compile_mobility(spec: MobilitySpec) -> MobilityProfile:
    if spec.preset is not None:
        return _PRESET_PROFILES[spec.preset]()
    assert spec.peak_speed_mps is not None  # enforced by parse_document
    name = spec.name
    if name is None:
        name = (
            "stationary"
            if spec.peak_speed_mps == 0.0
            else f"custom-{spec.peak_speed_mps:g}mps"
        )
    return MobilityProfile(
        name=name,
        peak_speed=spec.peak_speed_mps,
        acceleration=spec.acceleration,
        route_length=spec.route_length_m,
    )


def _compile_provider(spec: ProviderSpec) -> Provider:
    if spec.ref is not None:
        return provider_by_name(spec.ref)
    return Provider(
        name=spec.name or "custom",
        technology=spec.technology,
        one_way_delay=spec.one_way_delay_s,
        base_data_loss=spec.base_data_loss,
        base_ack_loss=spec.base_ack_loss,
        coverage_penalty=spec.coverage_penalty,
        wmax=spec.wmax,
        handoff_mean_outage=spec.handoff_mean_outage_s,
        ack_burst_mean_duration=spec.ack_burst_mean_duration_s,
        ack_burst_spacing=spec.ack_burst_spacing_s,
    )


def _overlay_hook(overlay: ExtraLossSpec) -> HookSpec:
    return HookSpec.make(
        "extra_loss",
        direction=overlay.direction,
        mean_good_s=overlay.mean_good_s,
        mean_bad_s=overlay.mean_bad_s,
        loss_good=overlay.loss_good,
        loss_bad=overlay.loss_bad,
        label=overlay.label,
    )


def compile_document(document: ScenarioDocument) -> Scenario:
    """The frozen :class:`Scenario` a document describes."""
    hooks: List[HookSpec] = []
    if document.faults is not None and not document.faults.is_noop():
        hooks.append(document.faults.to_hook_spec())
    hooks.extend(_overlay_hook(overlay) for overlay in document.extra_loss)
    return Scenario(
        name=document.scenario_name or document.name,
        mobility=_compile_mobility(document.mobility),
        provider=_compile_provider(document.provider),
        cells=CellLayout(
            spacing=document.cells.spacing_m, offset=document.cells.offset_m
        ),
        flow_start_offset=document.flow_start_offset_s,
        channel_hook=chain_hooks(hooks) if hooks else None,
    )


# -- decompilation ------------------------------------------------------

_PRESET_PROVIDERS = {provider: provider.name for provider in ALL_PROVIDERS}


def _decompile_mobility(profile: MobilityProfile) -> MobilitySpec:
    for preset, factory in _PRESET_PROFILES.items():
        if profile == factory():
            return MobilitySpec(preset=preset)
    return MobilitySpec(
        preset=None,
        name=profile.name,
        peak_speed_mps=profile.peak_speed,
        acceleration=profile.acceleration,
        route_length_m=profile.route_length,
    )


def _decompile_provider(provider: Provider) -> ProviderSpec:
    ref = _PRESET_PROVIDERS.get(provider)
    if ref is not None:
        return ProviderSpec(ref=ref)
    return ProviderSpec(
        ref=None,
        name=provider.name,
        technology=provider.technology,
        one_way_delay_s=provider.one_way_delay,
        base_data_loss=provider.base_data_loss,
        base_ack_loss=provider.base_ack_loss,
        coverage_penalty=provider.coverage_penalty,
        wmax=provider.wmax,
        handoff_mean_outage_s=provider.handoff_mean_outage,
        ack_burst_mean_duration_s=provider.ack_burst_mean_duration,
        ack_burst_spacing_s=provider.ack_burst_spacing,
    )


def _split_hooks(hook: Optional[object], scenario_name: str):
    """Decompose a declarative channel hook into (faults, overlays)."""
    if hook is None:
        return None, ()
    if not isinstance(hook, HookSpec):
        raise ConfigurationError(
            f"scenario {scenario_name!r} carries an opaque channel_hook "
            f"({hook!r}); only declarative HookSpec hooks can be "
            "serialized to a document"
        )
    specs = (
        list(hook.as_dict()["hooks"]) if hook.name == "chain" else [hook]
    )
    faults: Optional[FaultPlan] = None
    overlays: List[ExtraLossSpec] = []
    for spec in specs:
        params = spec.as_dict()
        if spec.name == "faults":
            if faults is not None:
                raise ConfigurationError(
                    f"scenario {scenario_name!r} chains two fault plans; "
                    "documents carry at most one"
                )
            faults = FaultPlan(**params)
        elif spec.name == "extra_loss":
            overlays.append(ExtraLossSpec(**params))
        else:
            raise ConfigurationError(
                f"scenario {scenario_name!r} uses hook {spec.name!r}, which "
                "has no document form; only 'faults' and 'extra_loss' "
                "serialize"
            )
    return faults, tuple(overlays)


def document_from_scenario(
    scenario: Scenario,
    *,
    name: Optional[str] = None,
    description: str = "",
    tags: tuple = (),
) -> ScenarioDocument:
    """A document that compiles back to exactly ``scenario``.

    ``name`` defaults to the scenario's own name; when they differ the
    scenario name is preserved in ``scenario_name`` so the compiled
    RNG stream label (and therefore every draw) survives the round
    trip.
    """
    document_name = name if name is not None else scenario.name
    faults, overlays = _split_hooks(scenario.channel_hook, scenario.name)
    return ScenarioDocument(
        name=document_name,
        description=description,
        tags=tuple(tags),
        mobility=_decompile_mobility(scenario.mobility),
        cells=CellsSpec(
            spacing_m=scenario.cells.spacing, offset_m=scenario.cells.offset
        ),
        provider=_decompile_provider(scenario.provider),
        flow_start_offset_s=scenario.flow_start_offset,
        faults=faults,
        extra_loss=overlays,
        scenario_name=(
            scenario.name if scenario.name != document_name else None
        ),
    )
