"""Hypothesis strategies generating valid scenario documents.

The fuzzer's job is to pin the scenario pipeline's two core contracts
over the whole input space, not just the bundled library:

* **determinism** — parsing, compiling, and building the same document
  twice yields equal results;
* **inversion** — serialize → parse is the identity on documents, and
  compile → decompile → compile is the identity on scenarios.

Strategies stick to finite, in-range values because the schema already
rejects everything else (those rejections have their own direct tests);
speeds/accelerations/route lengths are co-constrained so every drawn
mobility satisfies ``MobilityProfile``'s ramp-fits-route invariant.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.robustness.faults import FaultPlan
from repro.scenarios.document import (
    MOBILITY_PRESETS,
    CellsSpec,
    ExtraLossSpec,
    MobilitySpec,
    ProviderSpec,
    ScenarioDocument,
)

__all__ = ["scenario_documents"]

_PROVIDER_REFS = ("China Mobile", "China Unicom", "China Telecom")


def _finite(minimum: float, maximum: float) -> st.SearchStrategy:
    return st.floats(
        min_value=minimum,
        max_value=maximum,
        allow_nan=False,
        allow_infinity=False,
    )


_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=24
).filter(lambda text: text.strip("-"))


@st.composite
def _mobilities(draw) -> MobilitySpec:
    if draw(st.booleans()):
        return MobilitySpec(preset=draw(st.sampled_from(MOBILITY_PRESETS)))
    peak = draw(_finite(0.0, 300.0))
    acceleration = draw(_finite(0.1, 3.0))
    # Ramp-up plus ramp-down must fit the route: 2 * v^2/(2a) <= L.
    floor = max(1.0, 2.0 * peak * peak / (2.0 * acceleration))
    route = draw(_finite(floor * 1.01 + 1.0, floor * 1.01 + 500_000.0))
    return MobilitySpec(
        preset=None,
        name=draw(st.one_of(st.none(), _names)),
        peak_speed_mps=peak,
        acceleration=acceleration,
        route_length_m=route,
    )


@st.composite
def _providers(draw) -> ProviderSpec:
    if draw(st.booleans()):
        return ProviderSpec(ref=draw(st.sampled_from(_PROVIDER_REFS)))
    return ProviderSpec(
        ref=None,
        name=draw(_names),
        technology=draw(st.sampled_from(("LTE", "3G"))),
        one_way_delay_s=draw(_finite(0.005, 0.5)),
        base_data_loss=draw(_finite(0.0, 0.05)),
        base_ack_loss=draw(_finite(0.0, 0.05)),
        coverage_penalty=draw(_finite(1.0, 5.0)),
        wmax=draw(_finite(4.0, 256.0)),
        handoff_mean_outage_s=draw(_finite(0.1, 5.0)),
        ack_burst_mean_duration_s=draw(_finite(0.05, 2.0)),
        ack_burst_spacing_s=draw(_finite(5.0, 120.0)),
    )


_faults = st.builds(
    FaultPlan,
    name=_names,
    handoff_storm_rate=_finite(0.0, 0.2),
    handoff_storm_mean_outage=_finite(0.1, 3.0),
    deep_fade_rate=_finite(0.0, 0.2),
    deep_fade_mean_duration=_finite(0.1, 4.0),
    deep_fade_loss=_finite(0.0, 1.0),
    ack_blackout_rate=_finite(0.0, 0.2),
    ack_blackout_mean_duration=_finite(0.1, 3.0),
    rtt_spike_sigma=_finite(0.0, 1.0),
)

_extra_loss = st.builds(
    ExtraLossSpec,
    direction=st.sampled_from(("data", "ack")),
    mean_good_s=_finite(1.0, 120.0),
    mean_bad_s=_finite(0.1, 10.0),
    loss_good=_finite(0.0, 0.2),
    loss_bad=_finite(0.5, 1.0),
    label=_names,
)

@st.composite
def _cells(draw) -> CellsSpec:
    # CellLayout requires 0 <= offset < spacing.
    spacing = draw(_finite(200.0, 50_000.0))
    offset = draw(_finite(0.0, spacing * 0.99))
    return CellsSpec(spacing_m=spacing, offset_m=offset)


@st.composite
def scenario_documents(draw) -> ScenarioDocument:
    """Arbitrary valid :class:`ScenarioDocument` instances."""
    return ScenarioDocument(
        name=draw(_names),
        description=draw(
            st.text(
                alphabet=st.characters(
                    codec="utf-8", categories=("L", "N", "P", "Zs")
                ),
                max_size=60,
            )
        ),
        tags=tuple(draw(st.lists(_names, max_size=3))),
        mobility=draw(_mobilities()),
        cells=draw(_cells()),
        provider=draw(_providers()),
        flow_start_offset_s=draw(_finite(0.0, 600.0)),
        faults=draw(st.one_of(st.none(), _faults)),
        extra_loss=tuple(draw(st.lists(_extra_loss, max_size=2))),
        scenario_name=draw(st.one_of(st.none(), _names)),
    )
