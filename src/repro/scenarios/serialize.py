"""Text-form IO for scenario documents: YAML/JSON in, YAML out.

Floats survive the cycle bit-for-bit: PyYAML emits ``repr``-style
shortest round-trip literals and parses them back to the identical
double, so ``parse(to_yaml(doc)) == doc`` holds exactly — the property
the scenario fuzzer pins down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import yaml

from repro.scenarios.document import (
    ScenarioDocument,
    document_to_dict,
    parse_document,
)
from repro.scenarios.schema import load_mapping

__all__ = [
    "document_to_json",
    "document_to_yaml",
    "load_document_file",
    "load_document_text",
    "roundtrip_check",
]


def load_document_text(
    text: str, source_name: str = "<string>"
) -> ScenarioDocument:
    """Parse YAML/JSON text into a validated document."""
    data, info = load_mapping(text, source_name)
    return parse_document(data, info)


def load_document_file(path: Union[str, Path]) -> ScenarioDocument:
    """Parse one scenario file (``.yaml`` / ``.yml`` / ``.json``)."""
    file_path = Path(path)
    return load_document_text(
        file_path.read_text(encoding="utf-8"), source_name=str(file_path)
    )


def _ordered_dump(data: dict) -> str:
    return yaml.safe_dump(
        data, sort_keys=False, default_flow_style=False, allow_unicode=True
    )


def document_to_yaml(document: ScenarioDocument) -> str:
    """The document as YAML text; ``load_document_text`` inverts this."""
    return _ordered_dump(document_to_dict(document))


def document_to_json(document: ScenarioDocument, *, indent: int = 2) -> str:
    """The document as JSON text (YAML superset — same loader reads it)."""
    return json.dumps(document_to_dict(document), indent=indent) + "\n"


def roundtrip_check(document: ScenarioDocument) -> Tuple[str, ScenarioDocument]:
    """Serialize then re-parse; returns ``(yaml_text, reparsed)``.

    Convenience for tests asserting serializer/parser inversion.
    """
    text = document_to_yaml(document)
    return text, load_document_text(text)
