"""Resilient-campaign bookkeeping: retries, quarantine, and the report.

The paper's dataset (Table I) was collected under hostile radio
conditions where individual flows fail routinely; a campaign that
aborts on the first bad flow loses everything collected so far.  This
module holds the *accounting* side of per-flow isolation — the
:class:`RetryPolicy` that derives deterministic retry seeds and the
:class:`CampaignReport` the generator returns alongside the partial
dataset — while :mod:`repro.traces.generator` holds the execution loop.

Everything here is deliberately wall-clock-free: two campaign runs with
the same root seed produce byte-identical reports
(:meth:`CampaignReport.to_json`), including under injected faults, so a
degraded run is exactly reproducible for debugging.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed

__all__ = [
    "CampaignReport",
    "FlowFailure",
    "QuarantineRecord",
    "RetryPolicy",
]


@dataclass(frozen=True)
class FlowFailure:
    """One failed attempt at simulating one flow."""

    flow_id: str
    attempt: int  # 0 = first try, 1.. = retries
    seed: int  # the exact seed of the failed attempt (reproduces it)
    error_type: str
    error: str


@dataclass(frozen=True)
class QuarantineRecord:
    """A flow abandoned after exhausting its retry budget."""

    flow_id: str
    seed: int  # the flow's base seed (attempt 0)
    reason: str


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failed flow is retried, and with which seeds.

    Retry seeds are derived from the flow's base seed with the same
    SplitMix64 path scheme the rest of the library uses, so they are
    deterministic, collision-free across attempts, and independent of
    how many *other* flows failed — the property behind byte-identical
    reports under retries.
    """

    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def seed_for_attempt(self, base_seed: int, attempt: int) -> int:
        """Seed for the given attempt (attempt 0 = the base seed)."""
        if attempt == 0:
            return base_seed
        return derive_seed(base_seed, "retry", attempt) & 0x7FFFFFFF


@dataclass
class CampaignReport:
    """Structured outcome of one resilient campaign run.

    ``attempted`` counts flows (not attempts); every attempted flow ends
    up either ``succeeded`` or ``quarantined``, so
    ``attempted == succeeded + quarantined`` always holds.  ``retried``
    counts extra attempts beyond each flow's first.

    The ``cache_*`` fields say how a store-backed run obtained its
    flows (served from the result store vs computed fresh).  They are
    deliberately **excluded** from :meth:`to_dict`/:meth:`to_json`:
    serialised reports stay byte-identical whether a campaign ran cold,
    warm, or without a store at all — use :meth:`cache_summary` to
    surface them.
    """

    attempted: int = 0
    succeeded: int = 0
    retried: int = 0
    quarantined: int = 0
    failures: List[FlowFailure] = field(default_factory=list)
    quarantines: List[QuarantineRecord] = field(default_factory=list)
    #: flows served from an ambient result store without simulating
    cache_hits: int = 0
    #: flows computed fresh under an ambient result store
    cache_misses: int = 0
    #: subset of ``cache_misses`` recomputed after quarantining a
    #: corrupt store entry
    cache_corrupt: int = 0

    @property
    def ok(self) -> bool:
        """True when every attempted flow eventually succeeded."""
        return self.quarantined == 0

    def record_failure(self, failure: FlowFailure) -> None:
        self.failures.append(failure)

    def record_quarantine(self, record: QuarantineRecord) -> None:
        self.quarantines.append(record)
        self.quarantined += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "failures": [asdict(failure) for failure in self.failures],
            "quarantines": [asdict(record) for record in self.quarantines],
        }

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — byte-identical across
        reruns with the same seed."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        """One line for logs: ``17/20 flows ok, 5 retries, 3 quarantined``."""
        return (
            f"{self.succeeded}/{self.attempted} flows ok, "
            f"{self.retried} retries, {self.quarantined} quarantined"
        )

    def cache_summary(self) -> str:
        """One line on store behaviour: ``250 cached, 5 fresh, 1 corrupt``.

        Empty string when no store was in play (so callers can print it
        unconditionally without cluttering uncached runs).
        """
        if not (self.cache_hits or self.cache_misses):
            return ""
        line = f"{self.cache_hits} cached, {self.cache_misses} fresh"
        if self.cache_corrupt:
            line += f", {self.cache_corrupt} corrupt"
        return line

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"campaign report: {self.summary()}"]
        for failure in self.failures:
            lines.append(
                f"  attempt {failure.attempt} of {failure.flow_id} "
                f"(seed {failure.seed}) failed: "
                f"{failure.error_type}: {failure.error}"
            )
        for record in self.quarantines:
            lines.append(
                f"  quarantined {record.flow_id} (seed {record.seed}): "
                f"{record.reason}"
            )
        return "\n".join(lines)
