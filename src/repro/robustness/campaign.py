"""Resilient-campaign bookkeeping: retries, quarantine, and the report.

The paper's dataset (Table I) was collected under hostile radio
conditions where individual flows fail routinely; a campaign that
aborts on the first bad flow loses everything collected so far.  This
module holds the *accounting* side of per-flow isolation — the
:class:`RetryPolicy` that derives deterministic retry seeds and the
:class:`CampaignReport` the generator returns alongside the partial
dataset — while :mod:`repro.traces.generator` holds the execution loop.

Everything here is deliberately wall-clock-free: two campaign runs with
the same root seed produce byte-identical reports
(:meth:`CampaignReport.to_json`), including under injected faults, so a
degraded run is exactly reproducible for debugging.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.util.errors import (
    ConfigurationError,
    DeadlineExceededError,
    WorkerCrashError,
)
from repro.util.rng import derive_seed

__all__ = [
    "CampaignReport",
    "FAILURE_CLASSES",
    "FlowFailure",
    "QuarantineRecord",
    "RetryPolicy",
]

#: The failure taxonomy the retry layer reasons over.
#:
#: * ``transient`` — stochastic failures (degenerate channel draws,
#:   validation rejects); a reseeded retry genuinely rolls new dice.
#: * ``deterministic`` — same spec, same crash (bad configuration,
#:   a sim bug the seed reproduces exactly); retrying burns budget for
#:   nothing, so these quarantine on attempt 0.
#: * ``infrastructure`` — the *host* failed, not the flow (worker
#:   process death, deadline preemption, disk errors); the same seed is
#:   retried because the simulation itself was never at fault.
FAILURE_CLASSES = ("transient", "deterministic", "infrastructure")


@dataclass(frozen=True)
class FlowFailure:
    """One failed attempt at simulating one flow."""

    flow_id: str
    attempt: int  # 0 = first try, 1.. = retries
    seed: int  # the exact seed of the failed attempt (reproduces it)
    error_type: str
    error: str
    #: taxonomy bucket (``transient``/``deterministic``/``infrastructure``)
    #: plus the supervision-layer mechanisms ``worker_crash`` and
    #: ``deadline`` — both infrastructure-class for retry purposes, but
    #: named distinctly so reports show *how* the host failed
    failure_class: str = "transient"


@dataclass(frozen=True)
class QuarantineRecord:
    """A flow abandoned after exhausting its retry budget."""

    flow_id: str
    seed: int  # the flow's base seed (attempt 0)
    reason: str


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failed flow is retried, and with which seeds.

    Retry seeds are derived from the flow's base seed with the same
    SplitMix64 path scheme the rest of the library uses, so they are
    deterministic, collision-free across attempts, and independent of
    how many *other* flows failed — the property behind byte-identical
    reports under retries.

    Retries are taxonomy-aware (:data:`FAILURE_CLASSES`):
    ``deterministic`` failures are quarantined on attempt 0 instead of
    being pointlessly re-run, while ``transient`` and
    ``infrastructure`` failures consume the retry budget.  Between
    attempts the policy prescribes deterministic exponential backoff
    with seeded jitter (:meth:`backoff_for_attempt`) — the default
    ``backoff_base_s=0`` keeps historical no-sleep behaviour, and the
    jitter is a pure function of the flow's seed, so two runs of the
    same campaign back off identically.
    """

    max_retries: int = 2
    #: seconds slept before retry attempt 1; attempt ``n`` waits
    #: ``backoff_base_s * backoff_factor ** (n - 1)`` (0 = no backoff)
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    #: fraction of the backoff added as seeded jitter (decorrelates
    #: retry bursts across flows without breaking determinism)
    backoff_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def seed_for_attempt(self, base_seed: int, attempt: int) -> int:
        """Seed for the given attempt (attempt 0 = the base seed)."""
        if attempt == 0:
            return base_seed
        return derive_seed(base_seed, "retry", attempt) & 0x7FFFFFFF

    def classify(self, error: BaseException) -> str:
        """Taxonomy bucket for one failure (:data:`FAILURE_CLASSES`).

        ``ConfigurationError`` is deterministic by construction — the
        same spec produces the same crash on every attempt, so retrying
        it is pure waste.  Host-side failures (worker death, deadline
        preemption, I/O errors) are infrastructure: the same seed runs
        again because the *flow* was never at fault.  Everything else —
        simulation blow-ups, budget trips, validation rejects — is
        transient: a reseeded retry genuinely rolls new dice.
        """
        if isinstance(error, ConfigurationError):
            return "deterministic"
        if isinstance(error, (WorkerCrashError, DeadlineExceededError, OSError)):
            return "infrastructure"
        return "transient"

    def retries(self, failure_class: str) -> bool:
        """Whether a failure of this class consumes retry budget at all."""
        return failure_class != "deterministic"

    def backoff_for_attempt(self, base_seed: int, attempt: int) -> float:
        """Deterministic pre-attempt sleep (seconds) with seeded jitter.

        Attempt 0 never waits; attempt ``n`` waits the exponential base
        plus a jitter fraction drawn from the flow's own seed — a pure
        function of ``(base_seed, attempt)``, so reports and timing
        behaviour replay identically.
        """
        if attempt <= 0 or self.backoff_base_s <= 0.0:
            return 0.0
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter <= 0.0:
            return base
        # 53-bit uniform in [0, 1) from the same SplitMix64 derivation
        # the retry seeds use; no RNG object, no global state.
        unit = (derive_seed(base_seed, "backoff", attempt) >> 11) / float(1 << 53)
        return base * (1.0 + self.backoff_jitter * unit)


@dataclass
class CampaignReport:
    """Structured outcome of one resilient campaign run.

    ``attempted`` counts flows (not attempts); every attempted flow ends
    up either ``succeeded`` or ``quarantined``, so
    ``attempted == succeeded + quarantined`` always holds.  ``retried``
    counts extra attempts beyond each flow's first.

    The ``cache_*`` fields say how a store-backed run obtained its
    flows (served from the result store vs computed fresh).  They are
    deliberately **excluded** from :meth:`to_dict`/:meth:`to_json`:
    serialised reports stay byte-identical whether a campaign ran cold,
    warm, or without a store at all — use :meth:`cache_summary` to
    surface them.
    """

    attempted: int = 0
    succeeded: int = 0
    retried: int = 0
    quarantined: int = 0
    failures: List[FlowFailure] = field(default_factory=list)
    quarantines: List[QuarantineRecord] = field(default_factory=list)
    #: True when a signal drain stopped the campaign before every spec
    #: ran: the report covers only the flows that were attempted, and a
    #: re-run against the same result store executes exactly the
    #: remainder.  Serialised (a resumable report must say it is
    #: partial), so an interrupted report never byte-matches a complete
    #: one — by design.
    interrupted: bool = False
    #: flows served from an ambient result store without simulating
    cache_hits: int = 0
    #: flows computed fresh under an ambient result store
    cache_misses: int = 0
    #: subset of ``cache_misses`` recomputed after quarantining a
    #: corrupt store entry
    cache_corrupt: int = 0
    #: subset of ``cache_misses`` that ran uncached because the store's
    #: circuit breaker was open (or the store operation itself failed)
    cache_errors: int = 0

    @property
    def ok(self) -> bool:
        """True when every attempted flow eventually succeeded."""
        return self.quarantined == 0

    def record_failure(self, failure: FlowFailure) -> None:
        self.failures.append(failure)

    def record_quarantine(self, record: QuarantineRecord) -> None:
        self.quarantines.append(record)
        self.quarantined += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "interrupted": self.interrupted,
            "failures": [asdict(failure) for failure in self.failures],
            "quarantines": [asdict(record) for record in self.quarantines],
        }

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — byte-identical across
        reruns with the same seed."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        """One line for logs: ``17/20 flows ok, 5 retries, 3 quarantined``."""
        line = (
            f"{self.succeeded}/{self.attempted} flows ok, "
            f"{self.retried} retries, {self.quarantined} quarantined"
        )
        if self.interrupted:
            line += " (interrupted — rerun to resume)"
        return line

    def cache_summary(self) -> str:
        """One line on store behaviour: ``250 cached, 5 fresh, 1 corrupt``.

        Empty string when no store was in play (so callers can print it
        unconditionally without cluttering uncached runs).
        """
        if not (self.cache_hits or self.cache_misses):
            return ""
        line = f"{self.cache_hits} cached, {self.cache_misses} fresh"
        if self.cache_corrupt:
            line += f", {self.cache_corrupt} corrupt"
        if self.cache_errors:
            line += f", {self.cache_errors} uncached (store errors)"
        return line

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"campaign report: {self.summary()}"]
        for failure in self.failures:
            lines.append(
                f"  attempt {failure.attempt} of {failure.flow_id} "
                f"(seed {failure.seed}) failed: "
                f"{failure.error_type}: {failure.error}"
            )
        for record in self.quarantines:
            lines.append(
                f"  quarantined {record.flow_id} (seed {record.seed}): "
                f"{record.reason}"
            )
        return "\n".join(lines)
