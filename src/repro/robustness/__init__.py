"""Fault injection and resilient campaign execution.

The paper's dataset was collected under hostile, highly variable radio
conditions; this subpackage makes the reproduction's long synthetic
campaigns survive the same regime:

* :mod:`repro.robustness.faults` — :class:`FaultPlan`, seeded chaos
  hooks (handoff storms, deep fades, ACK blackouts, RTT spikes) that
  wrap scenario channels;
* :mod:`repro.robustness.watchdog` — :class:`Watchdog` budgets that
  turn runaway simulations into catchable
  :class:`~repro.util.errors.BudgetExceededError`;
* :mod:`repro.robustness.campaign` — :class:`RetryPolicy` and the
  :class:`CampaignReport` returned by resilient
  :func:`~repro.traces.generator.generate_dataset` runs;
* :mod:`repro.robustness.validate` — post-capture trace validation
  backing the quarantine path.
"""

from repro.robustness.campaign import (
    FAILURE_CLASSES,
    CampaignReport,
    FlowFailure,
    QuarantineRecord,
    RetryPolicy,
)
from repro.robustness.faults import (
    FaultPlan,
    current_fault_plan,
    fault_scope,
    with_faults,
)
from repro.robustness.validate import ValidationResult, check_trace, validate_trace
from repro.robustness.watchdog import (
    DEFAULT_EVENT_BUDGET,
    DEFAULT_WALL_CLOCK_S,
    Watchdog,
    current_watchdog,
    watchdog_scope,
)

__all__ = [
    "CampaignReport",
    "DEFAULT_EVENT_BUDGET",
    "DEFAULT_WALL_CLOCK_S",
    "FAILURE_CLASSES",
    "FaultPlan",
    "FlowFailure",
    "QuarantineRecord",
    "RetryPolicy",
    "ValidationResult",
    "Watchdog",
    "check_trace",
    "current_fault_plan",
    "current_watchdog",
    "fault_scope",
    "validate_trace",
    "watchdog_scope",
    "with_faults",
]
