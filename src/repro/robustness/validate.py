"""Post-capture trace validation: quarantine bad flows, keep the stats clean.

A single corrupt :class:`~repro.traces.events.FlowTrace` — timestamps
running backwards, an arrival recorded for a dropped packet, an ACK
acknowledging data that was never sent — silently poisons every
campaign-level statistic built on top of it (Table I volumes, the
Fig. 10 deviation CDF, loss-rate fits).  :func:`validate_trace` checks
the structural invariants every honest capture satisfies and returns
the list of violations; the campaign layer quarantines offenders with
those reasons instead of aggregating them.

The module deliberately duck-types the trace (and imports nothing from
:mod:`repro.traces`) so it sits below the trace layer in the import
graph and :mod:`repro.traces.capture` can call into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traces.events import FlowTrace

__all__ = ["ValidationResult", "validate_trace", "check_trace"]

#: Slack for "did this happen within the flow's duration" checks; jitter
#: never schedules anything this far past the horizon.
_TIME_SLACK = 1e-9


@dataclass
class ValidationResult:
    """Outcome of validating one trace."""

    flow_id: str
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def _check_wire_records(records, duration: float, kind: str, issues: List[str]) -> int:
    """Shared per-transmission invariants; returns the max seq/ack seen."""
    previous_send = -float("inf")
    highest = -1
    for index, record in enumerate(records):
        label = f"{kind}[{index}]"
        seq = record.seq if kind == "data" else record.ack_seq
        highest = max(highest, seq)
        if seq < 0:
            issues.append(f"{label}: negative sequence number {seq}")
        if record.send_time < 0.0:
            issues.append(f"{label}: negative send time {record.send_time}")
        if record.send_time < previous_send - _TIME_SLACK:
            issues.append(
                f"{label}: send time {record.send_time} precedes previous "
                f"{previous_send} (records must be in send order)"
            )
        previous_send = max(previous_send, record.send_time)
        if record.send_time > duration + _TIME_SLACK:
            issues.append(
                f"{label}: sent at {record.send_time} after flow end {duration}"
            )
        if record.dropped and record.arrival_time is not None:
            issues.append(
                f"{label}: marked lost but has an arrival time "
                f"{record.arrival_time}"
            )
        if record.arrival_time is not None:
            if record.arrival_time < record.send_time - _TIME_SLACK:
                issues.append(
                    f"{label}: arrived at {record.arrival_time} before it was "
                    f"sent at {record.send_time}"
                )
            if record.arrival_time > duration + _TIME_SLACK:
                issues.append(
                    f"{label}: arrived at {record.arrival_time} after flow "
                    f"end {duration}"
                )
    return highest


def validate_trace(trace: "FlowTrace") -> List[str]:
    """Return every structural violation found in ``trace`` (empty = valid).

    Checks, in order: metadata sanity, per-direction wire-record
    invariants (monotone send order, causal arrivals, loss-flag
    consistency, horizon bounds), seqno/ACK consistency (cumulative ACKs
    never acknowledge unsent data), payload-counter consistency, and
    timeout/recovery-phase bounds.
    """
    issues: List[str] = []
    duration = trace.metadata.duration
    if duration <= 0.0:
        issues.append(f"metadata: non-positive duration {duration}")
        return issues  # every time-bound check below would be noise

    max_seq = _check_wire_records(trace.data_packets, duration, "data", issues)
    _check_wire_records(trace.acks, duration, "ack", issues)

    # Cumulative ACKs acknowledge the next expected byte, so an ack_seq
    # may exceed the highest *data* seq by at most one packet.
    for index, ack in enumerate(trace.acks):
        if ack.ack_seq > max_seq + 1:
            issues.append(
                f"ack[{index}]: acknowledges seq {ack.ack_seq} but highest "
                f"data seq sent is {max_seq}"
            )

    if trace.delivered_payloads < 0:
        issues.append(f"delivered_payloads is negative: {trace.delivered_payloads}")
    if trace.duplicate_payloads < 0:
        issues.append(f"duplicate_payloads is negative: {trace.duplicate_payloads}")
    arrivals = sum(
        1 for record in trace.data_packets if record.arrival_time is not None
    )
    if trace.delivered_payloads + trace.duplicate_payloads > arrivals:
        issues.append(
            f"payload counters ({trace.delivered_payloads} delivered + "
            f"{trace.duplicate_payloads} duplicate) exceed the {arrivals} "
            f"recorded arrivals"
        )

    previous_timeout = -float("inf")
    for index, timeout in enumerate(trace.timeouts):
        if not 0.0 <= timeout.time <= duration + _TIME_SLACK:
            issues.append(
                f"timeout[{index}]: fired at {timeout.time}, outside "
                f"[0, {duration}]"
            )
        if timeout.time < previous_timeout - _TIME_SLACK:
            issues.append(
                f"timeout[{index}]: fired at {timeout.time}, before the "
                f"previous timeout at {previous_timeout}"
            )
        previous_timeout = max(previous_timeout, timeout.time)

    for index, phase in enumerate(trace.recovery_phases):
        if phase.end_time is not None and phase.end_time < phase.start_time:
            issues.append(
                f"recovery[{index}]: ends at {phase.end_time} before it "
                f"starts at {phase.start_time}"
            )
        if phase.retransmissions_lost > phase.retransmissions:
            issues.append(
                f"recovery[{index}]: {phase.retransmissions_lost} lost "
                f"retransmissions out of only {phase.retransmissions} sent"
            )
    return issues


def check_trace(trace: "FlowTrace") -> ValidationResult:
    """Validate ``trace`` and wrap the outcome in a :class:`ValidationResult`."""
    return ValidationResult(
        flow_id=trace.metadata.flow_id, issues=validate_trace(trace)
    )
