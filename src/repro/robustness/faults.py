"""Deterministic chaos: fault plans that stress-test the simulator.

Wang et al.'s active/passive HSR measurements show that handoff storms,
multi-second deep fades and uplink blackouts are *expected* inputs on a
300 km/h link, not tail events.  A :class:`FaultPlan` injects exactly
those pathologies into an already-built scenario channel — extra outage
windows on both directions (handoff storm), long high-loss episodes on
the data direction (deep fade), total ACK-channel blackouts, and RTT
spikes via extra delay jitter — all drawn from a seed-derived RNG
stream, so a chaos run is as reproducible as a clean one.

Plans attach at two levels:

* :meth:`FaultPlan.apply` wraps one :class:`~repro.hsr.scenario.BuiltChannels`;
* :func:`with_faults` (or ``Scenario.with_channel_hook``) wraps a whole
  scenario, so every flow a campaign builds from it is faulted;
* :func:`fault_scope` installs a plan ambiently for CLI runs
  (``python -m repro.experiments all --chaos 1.0``).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

from repro.simulator.channel import CompositeLoss, HandoffLoss, LossModel
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hsr.scenario import BuiltChannels, Scenario

__all__ = [
    "FaultPlan",
    "current_fault_plan",
    "fault_scope",
    "with_faults",
]

Windows = Tuple[Tuple[float, float], ...]


def _poisson_windows(
    rng: RngStream, rate: float, mean_duration: float, duration: float
) -> Windows:
    """Disjoint, sorted (start, end) episodes from a Poisson arrival
    process with exponential lengths, clipped to ``[0, duration]``."""
    if rate <= 0.0:
        return ()
    windows: List[Tuple[float, float]] = []
    t = rng.expovariate(rate)
    while t < duration:
        length = min(rng.expovariate(1.0 / mean_duration), duration - t)
        windows.append((t, t + length))
        t = t + length + rng.expovariate(rate)
    return tuple(windows)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of channel pathologies for one flow.

    Rates are events per second of flow time; all-zero rates (the
    default) make the plan a no-op.  Intensities are deliberately
    orthogonal so tests can enable one pathology at a time.
    """

    name: str = "chaos"
    #: extra handoff-like outages hitting both directions at once
    handoff_storm_rate: float = 0.0
    handoff_storm_mean_outage: float = 1.0
    #: long high-loss episodes on the data direction only
    deep_fade_rate: float = 0.0
    deep_fade_mean_duration: float = 1.5
    deep_fade_loss: float = 0.98
    #: total ACK-channel blackouts (the paper's spurious-timeout trigger)
    ack_blackout_rate: float = 0.0
    ack_blackout_mean_duration: float = 1.0
    #: extra log-normal delay jitter (seconds of sigma) — RTT spikes
    rtt_spike_sigma: float = 0.0

    def __post_init__(self) -> None:
        for attribute in (
            "handoff_storm_rate",
            "handoff_storm_mean_outage",
            "deep_fade_rate",
            "deep_fade_mean_duration",
            "ack_blackout_rate",
            "ack_blackout_mean_duration",
            "rtt_spike_sigma",
        ):
            if getattr(self, attribute) < 0.0:
                raise ConfigurationError(
                    f"{attribute} must be >= 0, got {getattr(self, attribute)}"
                )
        if not 0.0 <= self.deep_fade_loss <= 1.0:
            raise ConfigurationError(
                f"deep_fade_loss must be in [0, 1], got {self.deep_fade_loss}"
            )

    @classmethod
    def aggressive(cls, intensity: float = 1.0) -> "FaultPlan":
        """A plan that hits a 60 s flow with several episodes of every
        pathology; ``intensity`` scales the event rates and spike size."""
        if intensity <= 0.0:
            raise ConfigurationError(
                f"intensity must be positive, got {intensity}"
            )
        return cls(
            name=f"aggressive-{intensity:g}",
            handoff_storm_rate=0.05 * intensity,
            handoff_storm_mean_outage=1.0,
            deep_fade_rate=0.05 * intensity,
            deep_fade_mean_duration=1.5,
            deep_fade_loss=0.98,
            ack_blackout_rate=0.04 * intensity,
            ack_blackout_mean_duration=1.0,
            rtt_spike_sigma=0.5 * intensity,
        )

    def is_noop(self) -> bool:
        return (
            self.handoff_storm_rate == 0.0
            and self.deep_fade_rate == 0.0
            and self.ack_blackout_rate == 0.0
            and self.rtt_spike_sigma == 0.0
        )

    # -- application ---------------------------------------------------

    def apply(self, built: "BuiltChannels", seed: int) -> "BuiltChannels":
        """Wrap one flow's built channels with this plan's faults.

        The fault schedule is drawn from an RNG stream derived from
        ``seed`` and the plan name, independent of the scenario's own
        streams — adding faults never perturbs the base channel's
        random sequence.
        """
        if self.is_noop():
            return built
        rng = RngStream(seed, f"faults/{self.name}")
        duration = built.config.duration

        storms = _poisson_windows(
            rng.spawn("storm"),
            self.handoff_storm_rate,
            self.handoff_storm_mean_outage,
            duration,
        )
        fades = _poisson_windows(
            rng.spawn("deep-fade"),
            self.deep_fade_rate,
            self.deep_fade_mean_duration,
            duration,
        )
        blackouts = _poisson_windows(
            rng.spawn("ack-blackout"),
            self.ack_blackout_rate,
            self.ack_blackout_mean_duration,
            duration,
        )

        data_faults: List[LossModel] = []
        ack_faults: List[LossModel] = []
        if storms:
            data_faults.append(
                HandoffLoss(rng.spawn("storm-data"), storms, loss_during=0.95)
            )
            ack_faults.append(
                HandoffLoss(rng.spawn("storm-ack"), storms, loss_during=0.95)
            )
        if fades:
            data_faults.append(
                HandoffLoss(
                    rng.spawn("fade-data"), fades, loss_during=self.deep_fade_loss
                )
            )
        if blackouts:
            ack_faults.append(
                HandoffLoss(rng.spawn("blackout-ack"), blackouts, loss_during=1.0)
            )

        config = built.config
        if self.rtt_spike_sigma > 0.0:
            config = config.with_(
                jitter_sigma=config.jitter_sigma + self.rtt_spike_sigma
            )

        def _compose(base: LossModel, faults: List[LossModel]) -> LossModel:
            return CompositeLoss([base, *faults]) if faults else base

        return replace(
            built,
            data_loss=_compose(built.data_loss, data_faults),
            ack_loss=_compose(built.ack_loss, ack_faults),
            config=config,
            outages=tuple(sorted([*built.outages, *storms])),
        )

    def as_channel_hook(self) -> Callable[["BuiltChannels", int], "BuiltChannels"]:
        """The plan as a ``Scenario.channel_hook`` callable."""
        return self.apply

    def to_hook_spec(self):
        """The plan as a declarative ``"faults"``
        :class:`~repro.hsr.hooks.HookSpec` — pure data, so a scenario
        carrying it serializes to a document and content-hashes for the
        result store.  Round-trips exactly:
        ``FaultPlan(**spec.as_dict())`` rebuilds this plan.
        """
        # Lazy import: repro.hsr sits above repro.robustness in the
        # layering (hooks.py imports this module).
        from repro.hsr.hooks import HookSpec

        return HookSpec.make(
            "faults",
            name=self.name,
            handoff_storm_rate=self.handoff_storm_rate,
            handoff_storm_mean_outage=self.handoff_storm_mean_outage,
            deep_fade_rate=self.deep_fade_rate,
            deep_fade_mean_duration=self.deep_fade_mean_duration,
            deep_fade_loss=self.deep_fade_loss,
            ack_blackout_rate=self.ack_blackout_rate,
            ack_blackout_mean_duration=self.ack_blackout_mean_duration,
            rtt_spike_sigma=self.rtt_spike_sigma,
        )


def with_faults(scenario: "Scenario", plan: FaultPlan) -> "Scenario":
    """A copy of ``scenario`` whose every build is wrapped by ``plan``.

    The plan is attached declaratively (:meth:`FaultPlan.to_hook_spec`),
    so the faulted scenario remains serializable and content-hashable —
    a chaos campaign caches and resumes exactly like a clean one.
    """
    return scenario.with_channel_hook(plan.to_hook_spec())


_ambient_plan: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_ambient_fault_plan", default=None
)


def current_fault_plan() -> Optional[FaultPlan]:
    """The ambient plan installed by :func:`fault_scope`, if any."""
    return _ambient_plan.get()


@contextlib.contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` ambiently: campaign generators inside the block
    pick it up when not given an explicit ``fault_plan``."""
    token = _ambient_plan.set(plan)
    try:
        yield plan
    finally:
        _ambient_plan.reset(token)
