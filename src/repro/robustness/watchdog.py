"""Watchdog budgets: bounded simulations instead of hung campaigns.

A :class:`Watchdog` bundles the three guard rails the engine
understands — an event budget, a simulated-time budget, and a
wall-clock budget — into one value that can be passed explicitly to
:func:`~repro.simulator.connection.run_flow` or installed ambiently for
a whole CLI invocation with :func:`watchdog_scope` (how the
``--timeout-s`` / ``--max-events`` experiment flags are plumbed without
threading parameters through every experiment driver).

All three guards raise :class:`~repro.util.errors.BudgetExceededError`,
which the resilient campaign layer treats like any other per-flow
failure: record, retry with a fresh seed, quarantine if persistent.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.util.errors import ConfigurationError

__all__ = [
    "DEFAULT_EVENT_BUDGET",
    "DEFAULT_WALL_CLOCK_S",
    "Watchdog",
    "current_watchdog",
    "watchdog_scope",
]

#: Default per-flow event budget used by the CLI.  A full-scale 60 s
#: HSR flow processes on the order of 10^5 events; 50 million is three
#: orders of magnitude of headroom, so only a genuinely runaway loop
#: (an event that reschedules itself without advancing the clock) can
#: trip it.
DEFAULT_EVENT_BUDGET = 50_000_000

#: Default per-flow wall-clock budget (seconds) used by the CLI.
DEFAULT_WALL_CLOCK_S = 900.0


@dataclass(frozen=True)
class Watchdog:
    """Guard-rail configuration for one simulation run.

    ``None`` disables the corresponding guard; the all-``None`` default
    is byte-for-byte equivalent to pre-watchdog behaviour.
    """

    max_events: Optional[int] = None
    max_sim_time: Optional[float] = None
    wall_clock_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events <= 0:
            raise ConfigurationError(
                f"max_events must be positive, got {self.max_events}"
            )
        if self.max_sim_time is not None and self.max_sim_time <= 0:
            raise ConfigurationError(
                f"max_sim_time must be positive, got {self.max_sim_time}"
            )
        if self.wall_clock_s is not None and self.wall_clock_s <= 0:
            raise ConfigurationError(
                f"wall_clock_s must be positive, got {self.wall_clock_s}"
            )

    @classmethod
    def default(cls) -> "Watchdog":
        """The CLI's generous defaults (see module constants)."""
        return cls(
            max_events=DEFAULT_EVENT_BUDGET, wall_clock_s=DEFAULT_WALL_CLOCK_S
        )

    def run_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :meth:`repro.simulator.engine.Simulator.run`.

        The wall-clock deadline is anchored at call time, so build the
        kwargs immediately before ``run()``.
        """
        kwargs: Dict[str, object] = {}
        if self.max_events is not None:
            kwargs["event_budget"] = self.max_events
        if self.max_sim_time is not None:
            kwargs["time_budget"] = self.max_sim_time
        if self.wall_clock_s is not None:
            kwargs["wall_deadline"] = time.monotonic() + self.wall_clock_s
        return kwargs


_ambient_watchdog: ContextVar[Optional[Watchdog]] = ContextVar(
    "repro_ambient_watchdog", default=None
)


def current_watchdog() -> Optional[Watchdog]:
    """The ambient watchdog installed by :func:`watchdog_scope`, if any."""
    return _ambient_watchdog.get()


@contextlib.contextmanager
def watchdog_scope(watchdog: Optional[Watchdog]) -> Iterator[Optional[Watchdog]]:
    """Install ``watchdog`` as the ambient guard for the enclosed block.

    Every ``run_flow`` call inside the block that is not given an
    explicit watchdog picks this one up.  Passing ``None`` explicitly
    shadows (disables) any outer scope.
    """
    token = _ambient_watchdog.set(watchdog)
    try:
        yield watchdog
    finally:
        _ambient_watchdog.reset(token)
