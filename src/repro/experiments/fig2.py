"""Fig. 2 — the retransmission process inside one timeout-recovery phase.

The paper zooms into a recovery phase: the single packet retransmitted
per timeout, the exponential backoff of the timer (T, 2T, … up to 64T),
and the slow start that follows the resuming ACK.  This driver finds
the longest recovery phase of a Fig-1-style flow and reports each
retransmission with its timer value and fate.
"""

from __future__ import annotations

from repro.experiments.fig1 import simulate_fig1_flow
from repro.experiments.registry import ExperimentResult, experiment


@experiment("fig2", "Fig. 2: retransmissions within a timeout-recovery phase")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    trace = simulate_fig1_flow(scale=max(scale, 1.0), seed=seed)
    phases = trace.completed_recovery_phases()
    if not phases:
        return ExperimentResult(
            experiment_id="fig2",
            title="Fig. 2: retransmissions within a timeout-recovery phase",
            notes="no completed recovery phase in this run; raise scale or change seed",
        )
    phase = max(phases, key=lambda p: p.duration)
    phase_index = trace.recovery_phases.index(phase)
    timeouts = [t for t in trace.timeouts if t.sequence_index == phase_index]
    retransmissions = [
        record
        for record in trace.data_packets
        if record.in_timeout_recovery
        and phase.start_time <= record.send_time <= phase.end_time
    ]
    rows = []
    for index, timeout in enumerate(timeouts):
        sent = [r for r in retransmissions if abs(r.send_time - timeout.time) < 1e-9]
        outcome = "lost"
        if sent and not sent[0].lost:
            outcome = "delivered"
        rows.append(
            {
                "timeout": index + 1,
                "time_s": timeout.time - phase.start_time,
                "seq": timeout.seq,
                "timer_s": timeout.rto_value,
                "timer_multiple": 2**timeout.backoff_exponent,
                "retransmission": outcome,
            }
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2: retransmissions within a timeout-recovery phase",
        rows=rows,
        headline={
            "phase_duration_s": phase.duration,
            "timeouts_in_sequence": float(phase.timeouts),
            "retransmissions": float(phase.retransmissions),
            "retransmissions_lost": float(phase.retransmissions_lost),
            "in_recovery_loss_rate": (
                phase.retransmissions_lost / phase.retransmissions
                if phase.retransmissions
                else 0.0
            ),
            "paper_example_loss_rate": 0.666,
        },
        notes=(
            "one packet retransmitted per timeout; timer doubles per backoff "
            "(capped at 64T), matching the paper's Fig. 2 narrative"
        ),
    )
