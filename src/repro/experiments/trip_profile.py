"""Extension — the throughput profile of a complete BTR journey.

Runs a flow through the whole trip (acceleration → 300 km/h cruise →
deceleration) and reports throughput/losses per segment.  Expected
shape: the slow segments near the stations behave like the stationary
scenario; the cruise collapses like the HSR scenario — the "journey
view" of the paper's stationary-vs-HSR contrast.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.trip import simulate_trip
from repro.util.stats import mean


@experiment("trip_profile", "Extension: throughput profile over a full BTR trip")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    # scale controls temporal resolution: more segments at higher scale.
    segment_duration = max(60.0, 180.0 / max(scale, 0.1))
    segments = simulate_trip(
        segment_duration=segment_duration, seed=seed, workers=workers
    )
    rows = [
        {
            "t_start_s": segment.start_time,
            "position_km": segment.position_km,
            "speed_kmh": segment.speed_kmh,
            "throughput_pps": segment.throughput,
            "ack_loss": segment.ack_loss_rate,
            "timeouts": segment.timeouts,
        }
        for segment in segments
    ]
    slow = [s for s in segments if s.speed_kmh < 150.0]
    fast = [s for s in segments if s.speed_kmh >= 250.0]
    slow_tp = mean([s.throughput for s in slow]) if slow else 0.0
    fast_tp = mean([s.throughput for s in fast]) if fast else 0.0
    return ExperimentResult(
        experiment_id="trip_profile",
        title="Extension: throughput profile over a full BTR trip",
        rows=rows,
        headline={
            "segments": float(len(segments)),
            "slow_segment_pps": slow_tp,
            "cruise_segment_pps": fast_tp,
            "cruise_collapse_factor": slow_tp / max(fast_tp, 1e-9),
            "trip_duration_min": segments[-1].end_time / 60.0 if segments else 0.0,
        },
        notes=(
            "station-adjacent segments behave like the stationary scenario; "
            "the 300 km/h cruise collapses — the journey view of Section III"
        ),
    )
