"""Fig. 9 — window evolution under the receiver's window limitation.

A low-loss flow with a small advertised window W_m: the window ramps
from W_m/2 to W_m in E[U] = b·W_m/2 rounds, then stays flat for E[V]
rounds until the next loss indication.  This driver measures the ramp
and flat durations and compares them with the model's Eqs. (16)–(18).
"""

from __future__ import annotations

from repro.core.components import expected_flat_rounds, flat_rounds_padhye
from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.simulator.channel import NoLoss, RoundCorrelatedLoss
from repro.simulator.connection import ConnectionConfig
from repro.util.rng import RngStream


@experiment("fig9", "Fig. 9: window evolution under the window limitation W_m")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    wmax, b = 12.0, 2
    data_loss_rate = 0.002
    config = ConnectionConfig(duration=120.0 * scale, wmax=wmax, b=b, min_rto=0.4)
    rng = RngStream(seed, "fig9")
    result, _ = simulate_spec(
        FlowSpec(
            config=config,
            data_loss=RoundCorrelatedLoss(
                rng.spawn("data"),
                trigger_rate=data_loss_rate,
                round_duration=config.base_rtt,
            ),
            ack_loss=NoLoss(),
            seed=seed,
            flow_id="fig9/flow",
        )
    )
    samples = result.log.cwnd_samples
    # Segment time at W_m (flat) vs below (ramp) within CA periods.
    flat_time = 0.0
    ramp_time = 0.0
    for earlier, later in zip(samples, samples[1:]):
        span = later.time - earlier.time
        if earlier.phase in ("congestion_avoidance", "slow_start"):
            if earlier.cwnd >= wmax - 1e-9:
                flat_time += span
            else:
                ramp_time += span
    rtt = config.base_rtt
    v_p = flat_rounds_padhye(data_loss_rate, wmax, b)
    rows = [
        {"segment": "ramp (W_m/2 -> W_m)", "sim_time_s": ramp_time,
         "sim_rounds": ramp_time / rtt, "model_rounds": b * wmax / 2.0},
        {"segment": "flat (at W_m)", "sim_time_s": flat_time,
         "sim_rounds": flat_time / rtt, "model_rounds": expected_flat_rounds(v_p, 0.0)},
    ]
    fraction_at_wmax = flat_time / max(flat_time + ramp_time, 1e-9)
    return ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9: window evolution under the window limitation W_m",
        rows=rows,
        headline={
            "wmax": wmax,
            "fraction_of_ca_time_at_wmax": fraction_at_wmax,
            "loss_indications": float(
                len(result.log.recovery_phases)
                + sum(
                    1
                    for record in result.log.data_packets
                    if record.is_retransmission and not record.in_timeout_recovery
                )
            ),
        },
        notes=(
            "low loss + small W_m: the flow spends most CA time pinned at "
            "W_m, the regime of Eq. (21)'s second branch"
        ),
    )
