"""Fig. 7 — window evolution in a CA phase, with and without ACK burst loss.

Case (a): a data loss ends the congestion-avoidance phase (the Padhye
ending).  Case (b): before any data loss, an ACK burst loss ends the
phase early via a spurious timeout — the paper's Table-III mechanism
that shortens E[X].
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.simulator.channel import HandoffLoss, NoLoss, TraceDrivenLoss
from repro.simulator.connection import ConnectionConfig
from repro.util.rng import RngStream


def _trajectory(result, limit=40):
    samples = result.log.cwnd_samples
    step = max(1, len(samples) // limit)
    return [
        {"time_s": s.time, "cwnd": s.cwnd, "phase": s.phase}
        for s in samples[::step]
    ]


@experiment("fig7", "Fig. 7: CA-phase window evolution, data loss vs ACK burst loss")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    config = ConnectionConfig(duration=20.0, wmax=24.0, min_rto=0.4)
    # (a) the 400th data transmission is lost; the CA phase ends by a
    # loss indication, the window halves (or collapses on timeout).
    data_ended, _ = simulate_spec(
        FlowSpec(
            config=config,
            data_loss=TraceDrivenLoss([400]),
            ack_loss=NoLoss(),
            seed=seed,
            flow_id="fig7/data-ended",
        )
    )
    # (b) no data loss at all; an ACK outage at t=6 s ends the CA phase
    # with a spurious timeout and a window collapse to 1.
    ack_ended, _ = simulate_spec(
        FlowSpec(
            config=config,
            data_loss=NoLoss(),
            ack_loss=HandoffLoss(
                RngStream(seed, "fig7"), [(6.0, 8.0)], loss_during=1.0
            ),
            seed=seed,
            flow_id="fig7/ack-ended",
        )
    )
    rows = []
    for label, result in (("data-loss ending", data_ended), ("ACK-burst ending", ack_ended)):
        for sample in _trajectory(result, limit=18):
            rows.append({"case": label, **sample})
    return ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7: CA-phase window evolution, data loss vs ACK burst loss",
        rows=rows,
        headline={
            "case_a_timeouts": float(len(data_ended.log.timeouts)),
            "case_a_data_lost": float(data_ended.log.data_lost),
            "case_b_timeouts": float(len(ack_ended.log.timeouts)),
            "case_b_data_lost": float(ack_ended.log.data_lost),
            "case_b_duplicate_payloads": float(ack_ended.log.duplicate_payloads),
        },
        notes=(
            "case (b) ends its CA phase with zero data loss — the early "
            "termination by ACK burst loss of paper Fig. 7(b)"
        ),
    )
