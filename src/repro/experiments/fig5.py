"""Fig. 5 — two scripted cases where ACK loss does / does not trigger a timeout.

Case (a): *every* ACK of one transmission round is lost → the sender
mistakes ACK loss for data loss and a spurious retransmission timeout
fires once the timer T expires.

Case (b): not all ACKs of the round are lost → the surviving ACK
updates the sliding window, the sender sends more data, the next
round's ACK returns, and no timeout occurs.

Both cases run in "slow motion" (RTT = 1 s) so a transmission round is
a well-separated burst of ACKs that a time window can target exactly —
the same logical experiment as the paper's 6-packet rounds.
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.simulator.channel import HandoffLoss, LossModel, NoLoss
from repro.simulator.connection import ConnectionConfig
from repro.util.rng import RngStream

#: Slow-motion connection: one round of 6 packets per second, one ACK
#: per packet, retransmission timer well above the RTT.
_CONFIG = ConnectionConfig(
    forward_delay=0.5,
    reverse_delay=0.5,
    wmax=6.0,
    b=1,
    min_rto=2.6,
    initial_rto=2.6,
    duration=14.0,
)
#: Time window bracketing exactly one round's ACK burst (at t ≈ 6 s).
_ROUND_WINDOW = (5.5, 6.5)


class AllButFirstInWindow(LossModel):
    """Loses every packet inside the window except the first one."""

    def __init__(self, start: float, end: float) -> None:
        self.start = start
        self.end = end
        self._seen = 0

    def is_lost(self, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        self._seen += 1
        return self._seen != 1


def _describe(result, case: str) -> dict:
    log = result.log
    return {
        "case": case,
        "data_lost": log.data_lost,
        "acks_lost": log.acks_lost,
        "timeouts": len(log.timeouts),
        "duplicate_payloads": log.duplicate_payloads,
        "verdict": "spurious timeout" if log.timeouts else "no timeout",
    }


@experiment("fig5", "Fig. 5: ACK burst loss triggering (or not) a timeout")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    all_lost, _ = simulate_spec(
        FlowSpec(
            config=_CONFIG,
            data_loss=NoLoss(),
            ack_loss=HandoffLoss(
                RngStream(seed, "fig5"), [_ROUND_WINDOW], loss_during=1.0
            ),
            seed=seed,
            flow_id="fig5/all-lost",
        )
    )
    one_survives, _ = simulate_spec(
        FlowSpec(
            config=_CONFIG,
            data_loss=NoLoss(),
            ack_loss=AllButFirstInWindow(*_ROUND_WINDOW),
            seed=seed,
            flow_id="fig5/one-survives",
        )
    )
    rows = [
        _describe(all_lost, "(a) all 6 ACKs of the round lost"),
        _describe(one_survives, "(b) one ACK survives, window slides"),
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: ACK burst loss triggering (or not) a timeout",
        rows=rows,
        headline={
            "case_a_timeouts": float(len(all_lost.log.timeouts)),
            "case_a_data_lost": float(all_lost.log.data_lost),
            "case_b_timeouts": float(len(one_survives.log.timeouts)),
        },
        notes=(
            "case (a): >=1 timeout with zero data loss (pure spurious); "
            "case (b): zero timeouts — a timeout needs ALL ACKs of the "
            "round lost, the paper's Section III-B.2 conclusion"
        ),
    )
