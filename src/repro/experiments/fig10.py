"""Fig. 10 — the headline: model accuracy, enhanced vs Padhye, per provider.

Methodology (paper §IV-E): for every flow in the dataset, feed the
*measured* link parameters (RTT, T, p_d, p_a, q, and the measured
ACK-burst probability P_a) into each closed-form model and compare the
prediction against the flow's measured throughput via the deviation
rate D (Eq. 22).  Paper result: mean D = 21.96% for Padhye vs 5.66%
for the enhanced model — a 16.3-point improvement.
"""

from __future__ import annotations

from typing import List

from repro.core.accuracy import FlowObservation, compare_models
from repro.core.enhanced import ModelOptions, enhanced_throughput, padhye_paper_form
from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.correlation import MeasuredInputs, measured_model_inputs
from repro.traces.generator import generate_dataset

PAPER_PADHYE_D = 0.2196
PAPER_ENHANCED_D = 0.0566
PAPER_IMPROVEMENT = 0.163


def collect_observations(
    scale: float, seed: int, workers: int = 1
) -> List[MeasuredInputs]:
    dataset = generate_dataset(
        seed=seed, duration=90.0, flow_scale=0.12 * scale, workers=workers
    )
    inputs = []
    for trace in dataset.traces:
        measured = measured_model_inputs(trace)
        if measured is not None:
            inputs.append(measured)
    return inputs


@experiment("fig10", "Fig. 10: deviation rate D, enhanced model vs Padhye")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    inputs = collect_observations(scale, seed, workers=workers)
    if len(inputs) < 3:
        return ExperimentResult(
            experiment_id="fig10",
            title="Fig. 10: deviation rate D, enhanced model vs Padhye",
            notes="not enough measurable flows; raise scale",
        )
    burst_by_flow = {m.flow_id: m.ack_burst_probability for m in inputs}
    observations = [
        FlowObservation(
            params=m.params, throughput=m.throughput, group=m.provider, flow_id=m.flow_id
        )
        for m in inputs
    ]
    # The enhanced model consumes the measured per-round ACK-burst
    # probability; matching prediction to flow via params identity.
    burst_by_params = {id(obs.params): burst_by_flow[obs.flow_id] for obs in observations}

    def enhanced(params) -> float:
        options = ModelOptions(ack_burst_override=burst_by_params[id(params)])
        return enhanced_throughput(params, options).throughput

    def padhye(params) -> float:
        return padhye_paper_form(params).throughput

    comparison = compare_models(observations, {"enhanced": enhanced, "padhye": padhye})
    rows = [
        {
            "provider": row["group"],
            "model": row["model"],
            "mean_D_pct": row["mean_deviation_pct"],
        }
        for row in comparison.summary_rows()
    ]
    return ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: deviation rate D, enhanced model vs Padhye",
        rows=rows,
        headline={
            "flows": float(len(observations)),
            "enhanced_mean_D": comparison.mean_deviation("enhanced"),
            "paper_enhanced_mean_D": PAPER_ENHANCED_D,
            "padhye_mean_D": comparison.mean_deviation("padhye"),
            "paper_padhye_mean_D": PAPER_PADHYE_D,
            "improvement_points": comparison.improvement("enhanced", "padhye"),
            "paper_improvement_points": PAPER_IMPROVEMENT,
        },
        notes=(
            "shape target: enhanced mean D well below Padhye mean D on every "
            "provider; absolute values depend on the synthetic channel"
        ),
    )
