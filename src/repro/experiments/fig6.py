"""Fig. 6 — CDFs of per-flow ACK loss: stationary vs high-speed.

Paper finding: average ACK loss 0.661% in HSR vs 0.0718% stationary —
roughly a 9× elevation, and the reason ACK loss "should not be ignored
in the modeling process".
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.generator import generate_dataset, generate_stationary_reference
from repro.util.stats import EmpiricalCdf

PAPER_HSR_ACK_LOSS = 0.00661
PAPER_STATIONARY_ACK_LOSS = 0.000718

_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90)


@experiment("fig6", "Fig. 6: CDF of ACK loss, stationary vs HSR")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    hsr = generate_dataset(
        seed=seed, duration=90.0, flow_scale=0.08 * scale, workers=workers
    )
    flows_per_provider = max(2, round(4 * scale))
    stationary = generate_stationary_reference(
        seed=seed + 1,
        duration=90.0,
        flows_per_provider=flows_per_provider,
        workers=workers,
    )
    hsr_cdf = EmpiricalCdf.from_samples([t.ack_loss_rate for t in hsr.traces])
    stationary_cdf = EmpiricalCdf.from_samples(
        [t.ack_loss_rate for t in stationary.traces]
    )
    rows = [
        {
            "quantile": q,
            "stationary_ack_loss": stationary_cdf.quantile(q),
            "hsr_ack_loss": hsr_cdf.quantile(q),
        }
        for q in _QUANTILES
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6: CDF of ACK loss, stationary vs HSR",
        rows=rows,
        headline={
            "mean_hsr_ack_loss": hsr_cdf.mean(),
            "paper_hsr_ack_loss": PAPER_HSR_ACK_LOSS,
            "mean_stationary_ack_loss": stationary_cdf.mean(),
            "paper_stationary_ack_loss": PAPER_STATIONARY_ACK_LOSS,
            "elevation_factor": hsr_cdf.mean() / max(stationary_cdf.mean(), 1e-9),
            "paper_elevation_factor": PAPER_HSR_ACK_LOSS / PAPER_STATIONARY_ACK_LOSS,
        },
        notes="the HSR CDF must sit far right of the stationary CDF",
    )
