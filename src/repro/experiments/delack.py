"""Section V-A extension — delayed-ACK window sweep under the model.

The paper flags tuning of the delayed-ACK window as future work; this
driver quantifies the trade-off with the enhanced model across
scenarios: larger ``b`` thins the ACK stream (raising ACK-burst risk)
but also slows window growth.
"""

from __future__ import annotations

from repro.core.delayed_ack import adaptive_delayed_window, delayed_ack_tradeoff
from repro.core.params import LinkParams
from repro.experiments.registry import ExperimentResult, experiment

#: Operating points: (label, LinkParams) — a benign stationary channel
#: and two HSR-like channels with increasingly heavy ACK loss.
_CHANNELS = (
    ("stationary", LinkParams(rtt=0.06, timeout=0.5, data_loss=0.002,
                              ack_loss=0.01, recovery_loss=0.02, wmax=64.0)),
    ("hsr-moderate", LinkParams(rtt=0.12, timeout=0.9, data_loss=0.0075,
                                ack_loss=0.25, recovery_loss=0.3, wmax=32.0)),
    ("hsr-harsh", LinkParams(rtt=0.15, timeout=1.2, data_loss=0.02,
                             ack_loss=0.45, recovery_loss=0.38, wmax=32.0)),
)

_B_VALUES = (1, 2, 3, 4, 6, 8)


@experiment("delack", "Section V-A: delayed-ACK window sweep (extension)")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    rows = []
    best = {}
    for label, params in _CHANNELS:
        points = delayed_ack_tradeoff(params, b_values=_B_VALUES)
        for point in points:
            rows.append(
                {
                    "channel": label,
                    "b": point.b,
                    "throughput_pps": point.throughput,
                    "ack_burst_P_a": point.ack_burst_loss,
                    "spurious_share": point.spurious_timeout_fraction,
                }
            )
        best[label] = max(points, key=lambda p: p.throughput).b
    adaptive = {
        label: adaptive_delayed_window(params, max_b=8, spurious_budget=0.25)
        for label, params in _CHANNELS
    }
    return ExperimentResult(
        experiment_id="delack",
        title="Section V-A: delayed-ACK window sweep (extension)",
        rows=rows,
        headline={
            "best_b_stationary": float(best["stationary"]),
            "best_b_hsr_moderate": float(best["hsr-moderate"]),
            "best_b_hsr_harsh": float(best["hsr-harsh"]),
            "adaptive_b_stationary": float(adaptive["stationary"]),
            "adaptive_b_hsr_harsh": float(adaptive["hsr-harsh"]),
        },
        notes=(
            "harsher channels should prefer smaller delayed windows — "
            "ACKs become 'precious' exactly as Section V-A argues"
        ),
    )
