"""Eq.-(21) ablation — paper-literal math vs the consistent derivation.

DESIGN.md §2 documents three internal inconsistencies in the paper's
printed equations.  This driver quantifies how much each variant
matters across a parameter grid: for the paper's own evaluation
setting (b = 2) the window-slope discrepancy vanishes, for b = 1/4 it
does not.
"""

from __future__ import annotations

from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.params import LinkParams
from repro.experiments.registry import ExperimentResult, experiment

_GRID = tuple(
    LinkParams(rtt=rtt, timeout=4 * rtt + 0.4, data_loss=p_d, ack_loss=0.05,
               recovery_loss=0.3, wmax=64.0, b=b)
    for rtt in (0.06, 0.12)
    for p_d in (0.002, 0.0075, 0.03)
    for b in (1, 2, 4)
)

#: The ablation as data: variant name -> the ModelOptions that select
#: it.  Adding a row sweeps a new model variant over the whole grid.
_MODEL_VARIANTS = (
    ("consistent", ModelOptions()),
    ("paper_literal", ModelOptions(paper_literal=True)),
    ("linear_yield", ModelOptions(timeout_yield_paper_form=False)),
)
#: The baseline every other variant's gap is measured against.
_BASELINE = "consistent"


@experiment("eq21_ablation", "Ablation: paper-literal vs consistent Eq. (21)")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    rows = []
    b_gaps = {}
    for params in _GRID:
        throughput = {
            name: enhanced_throughput(params, options).throughput
            for name, options in _MODEL_VARIANTS
        }
        baseline = throughput[_BASELINE]
        gaps = {
            name: abs(throughput[name] - baseline) / baseline
            for name, _ in _MODEL_VARIANTS
            if name != _BASELINE
        }
        rows.append(
            {
                "rtt": params.rtt,
                "p_d": params.data_loss,
                "b": params.b,
                "consistent_pps": baseline,
                "paper_literal_pps": throughput["paper_literal"],
                "literal_gap": gaps["paper_literal"],
                "timeout_yield_gap": gaps["linear_yield"],
            }
        )
        b_gaps.setdefault(params.b, []).append(gaps["paper_literal"])
    mean_gap = {b: sum(v) / len(v) for b, v in b_gaps.items()}
    return ExperimentResult(
        experiment_id="eq21_ablation",
        title="Ablation: paper-literal vs consistent Eq. (21)",
        rows=rows,
        headline={
            "mean_literal_gap_b1": mean_gap[1],
            "mean_literal_gap_b2": mean_gap[2],
            "mean_literal_gap_b4": mean_gap[4],
        },
        notes=(
            "expected: the b=2 gap is tiny (the paper's evaluation setting), "
            "b=1 and b=4 gaps are large — the printed (b/2) slope only "
            "coincides with the Eq.-(3)-consistent (2/b) slope at b=2"
        ),
    )
