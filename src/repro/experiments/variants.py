"""Extension — TCP variants (Reno / NewReno / Veno) in high-speed mobility.

The paper bases its model on Reno "as a first step"; this experiment
asks how far variant-level fixes go in the HSR channel, both
analytically (the variant models of :mod:`repro.core.variants`) and by
simulation (the :class:`~repro.simulator.newreno.NewRenoSender`).

Expected shape: NewReno trims data-loss timeouts (fewer RTOs, slightly
higher throughput) and Veno's milder backoff helps under random loss —
but *neither* touches the ACK-burst spurious-timeout channel, which is
the paper's point that the HSR problem is not variant-specific.
"""

from __future__ import annotations

from repro.core.enhanced import ModelOptions
from repro.core.params import LinkParams
from repro.core.variants import variant_throughput
from repro.exec import Executor, FlowSpec
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.scenario import hsr_scenario
from repro.cc import cc_names
from repro.util.stats import mean

_OPERATING_POINTS = (
    ("hsr-typical", LinkParams(rtt=0.12, timeout=0.8, data_loss=0.0075,
                               ack_loss=0.0066, recovery_loss=0.27, wmax=64.0)),
    ("hsr-bursty", LinkParams(rtt=0.12, timeout=0.8, data_loss=0.0075,
                              ack_loss=0.0066, recovery_loss=0.27, wmax=64.0)),
)


@experiment("variants", "Extension: Reno vs NewReno vs Veno under HSR conditions")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    rows = []
    # Analytic comparison: clean vs measured-burst operating point.
    for label, params in _OPERATING_POINTS:
        options = (
            ModelOptions(ack_burst_override=0.05)
            if label == "hsr-bursty"
            else ModelOptions()
        )
        table = variant_throughput(params, options)
        rows.append({"source": "model", "channel": label, **{
            key: round(value, 2) for key, value in table.items()
        }})

    # Simulated comparison: every registered sender over the same HSR
    # channel — registering a new variant (repro.cc) adds a column here
    # with no code change.
    duration = 120.0 * scale
    scenario = hsr_scenario()
    variants = cc_names()
    sims = {name: [] for name in variants}
    timeouts = {name: [] for name in variants}
    flows = max(2, round(3 * scale))
    specs = [
        FlowSpec(
            scenario=scenario, duration=duration, seed=seed + 101 * index,
            cc=variant, flow_id=f"variants/{variant}/{index}",
        )
        for index in range(flows)
        for variant in variants
    ]
    execution = Executor.for_workers(workers).run(specs)
    for outcome in execution.outcomes:
        if outcome.result is None:
            continue
        sims[outcome.spec.cc].append(outcome.result.throughput)
        timeouts[outcome.spec.cc].append(len(outcome.result.log.timeouts))
    sim_row = {"source": "simulation", "channel": "hsr/China Mobile", "veno": None}
    for variant in variants:
        sim_row[variant] = round(mean(sims[variant]), 2)
    rows.append(sim_row)
    headline = {}
    for variant in variants:
        headline[f"sim_{variant}_pps"] = mean(sims[variant])
        headline[f"sim_{variant}_timeouts"] = mean(
            [float(t) for t in timeouts[variant]]
        )
    return ExperimentResult(
        experiment_id="variants",
        title="Extension: Reno vs NewReno vs Veno under HSR conditions",
        rows=rows,
        headline=headline,
        notes=(
            "NewReno reduces data-loss RTOs but cannot prevent ACK-burst "
            "spurious timeouts — the HSR bottleneck is variant-agnostic"
        ),
    )
