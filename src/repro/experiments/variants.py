"""Extension — TCP variants (Reno / NewReno / Veno) in high-speed mobility.

The paper bases its model on Reno "as a first step"; this experiment
asks how far variant-level fixes go in the HSR channel, both
analytically (the variant models of :mod:`repro.core.variants`) and by
simulation (the :class:`~repro.simulator.newreno.NewRenoSender`).

Expected shape: NewReno trims data-loss timeouts (fewer RTOs, slightly
higher throughput) and Veno's milder backoff helps under random loss —
but *neither* touches the ACK-burst spurious-timeout channel, which is
the paper's point that the HSR problem is not variant-specific.
"""

from __future__ import annotations

from repro.core.enhanced import ModelOptions
from repro.core.params import LinkParams
from repro.core.variants import variant_throughput
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.scenario import hsr_scenario
from repro.simulator.connection import run_flow
from repro.util.stats import mean

_OPERATING_POINTS = (
    ("hsr-typical", LinkParams(rtt=0.12, timeout=0.8, data_loss=0.0075,
                               ack_loss=0.0066, recovery_loss=0.27, wmax=64.0)),
    ("hsr-bursty", LinkParams(rtt=0.12, timeout=0.8, data_loss=0.0075,
                              ack_loss=0.0066, recovery_loss=0.27, wmax=64.0)),
)


@experiment("variants", "Extension: Reno vs NewReno vs Veno under HSR conditions")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    rows = []
    # Analytic comparison: clean vs measured-burst operating point.
    for label, params in _OPERATING_POINTS:
        options = (
            ModelOptions(ack_burst_override=0.05)
            if label == "hsr-bursty"
            else ModelOptions()
        )
        table = variant_throughput(params, options)
        rows.append({"source": "model", "channel": label, **{
            key: round(value, 2) for key, value in table.items()
        }})

    # Simulated comparison: same HSR channel, Reno vs NewReno sender.
    duration = 120.0 * scale
    scenario = hsr_scenario()
    sims = {"reno": [], "newreno": []}
    timeouts = {"reno": [], "newreno": []}
    flows = max(2, round(3 * scale))
    for index in range(flows):
        flow_seed = seed + 101 * index
        for variant in ("reno", "newreno"):
            built = scenario.build(duration=duration, seed=flow_seed)
            result = run_flow(
                built.config, built.data_loss, built.ack_loss,
                seed=flow_seed, variant=variant,
            )
            sims[variant].append(result.throughput)
            timeouts[variant].append(len(result.log.timeouts))
    rows.append({
        "source": "simulation", "channel": "hsr/China Mobile",
        "reno": round(mean(sims["reno"]), 2),
        "newreno": round(mean(sims["newreno"]), 2),
        "veno": None,
    })
    return ExperimentResult(
        experiment_id="variants",
        title="Extension: Reno vs NewReno vs Veno under HSR conditions",
        rows=rows,
        headline={
            "sim_reno_pps": mean(sims["reno"]),
            "sim_newreno_pps": mean(sims["newreno"]),
            "sim_reno_timeouts": mean([float(t) for t in timeouts["reno"]]),
            "sim_newreno_timeouts": mean([float(t) for t in timeouts["newreno"]]),
        },
        notes=(
            "NewReno reduces data-loss RTOs but cannot prevent ACK-burst "
            "spurious timeouts — the HSR bottleneck is variant-agnostic"
        ),
    )
