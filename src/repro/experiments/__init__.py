"""Per-figure/table experiment drivers.

Each module regenerates one artefact of the paper's evaluation; see
DESIGN.md §4 for the experiment ↔ module ↔ benchmark index.  Use the
CLI (``python -m repro.experiments``) or the registry API:

    from repro.experiments import run_experiment, format_result
    print(format_result(run_experiment("fig10", scale=0.5)))
"""

from repro.experiments.registry import (
    ExperimentResult,
    experiment,
    format_result,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "experiment",
    "format_result",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
