"""Fig. 12 — MPTCP vs single-path TCP throughput, per provider.

The paper's estimator: two concurrent flows with no shared bottleneck,
summed, stand in for a two-subflow MPTCP connection; compared against
one flow over the same channel.  Reported gains: China Mobile +42.15%,
China Unicom +95.64%, China Telecom +283.33% (Telecom gains most
because its Beijing–Tianjin coverage is poorest).

For MPTCP's second subflow we pair each provider with the best
alternative carrier (Telecom/Unicom fall back to Mobile LTE; Mobile
pairs with Unicom), which is what a real MPTCP deployment across two
SIMs/radios would do and what drives the paper's ordering.
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.provider import CHINA_MOBILE, CHINA_TELECOM, CHINA_UNICOM, Provider
from repro.hsr.scenario import hsr_scenario
from repro.simulator.mptcp import run_duplex
from repro.util.stats import mean

PAPER_GAINS = {
    "China Mobile": 0.4215,
    "China Unicom": 0.9564,
    "China Telecom": 2.8333,
}

#: Second-subflow carrier per primary carrier.
_ALTERNATE = {
    "China Mobile": CHINA_UNICOM,
    "China Unicom": CHINA_MOBILE,
    "China Telecom": CHINA_MOBILE,
}


def _gain_for_provider(provider: Provider, flows: int, duration: float, seed: int) -> dict:
    scenario = hsr_scenario(provider)
    alternate = hsr_scenario(_ALTERNATE[provider.name])
    gains = []
    tcp_throughputs = []
    mptcp_throughputs = []
    for index in range(flows):
        flow_seed = seed + 1000 * index
        tcp, _ = simulate_spec(
            FlowSpec(
                scenario=scenario, duration=duration, seed=flow_seed,
                flow_id=f"fig12/{provider.name}/{index}/tcp",
            )
        )
        # Subflow channels are built under their own seeds (historically
        # offset from the connection seeds), hence the channel_seed split.
        mptcp = run_duplex(
            FlowSpec(
                scenario=scenario, duration=duration,
                seed=flow_seed + 3, channel_seed=flow_seed + 1,
                flow_id=f"fig12/{provider.name}/{index}/primary",
            ),
            FlowSpec(
                scenario=alternate, duration=duration,
                seed=flow_seed + 4, channel_seed=flow_seed + 2,
                flow_id=f"fig12/{provider.name}/{index}/secondary",
            ),
        )
        if tcp.throughput > 0:
            gains.append(mptcp.throughput / tcp.throughput - 1.0)
            tcp_throughputs.append(tcp.throughput)
            mptcp_throughputs.append(mptcp.throughput)
    return {
        "provider": provider.name,
        "flows": len(gains),
        "tcp_pps": mean(tcp_throughputs),
        "mptcp_pps": mean(mptcp_throughputs),
        "gain_pct": 100.0 * mean(gains),
        "paper_gain_pct": 100.0 * PAPER_GAINS[provider.name],
    }


@experiment("fig12", "Fig. 12: MPTCP vs TCP throughput per provider")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    flows = max(2, round(4 * scale))
    duration = 60.0
    rows = [
        _gain_for_provider(provider, flows, duration, seed)
        for provider in (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)
    ]
    gains = {row["provider"]: row["gain_pct"] for row in rows}
    return ExperimentResult(
        experiment_id="fig12",
        title="Fig. 12: MPTCP vs TCP throughput per provider",
        rows=rows,
        headline={
            "mobile_gain_pct": gains["China Mobile"],
            "unicom_gain_pct": gains["China Unicom"],
            "telecom_gain_pct": gains["China Telecom"],
            "paper_mobile_pct": 42.15,
            "paper_unicom_pct": 95.64,
            "paper_telecom_pct": 283.33,
        },
        notes=(
            "shape target: every provider gains, ordered "
            "Telecom > Unicom > Mobile (worst coverage gains most)"
        ),
    )
