"""Extension — TCP throughput as a function of train speed.

The paper's motivation (and its related work: Huang et al. see stable
RTT under 120 km/h; Xiao et al. find driving at 100 km/h barely hurts
TCP while 300 km/h devastates it) implies a throughput-vs-speed curve
that is flat at low speed and collapses toward HSR speeds.  This
driver sweeps the speed axis with both the simulator and the enhanced
model fed by the same radio-quality mapping.
"""

from __future__ import annotations

from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.params import LinkParams
from repro.exec import Executor, FlowSpec
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.mobility import MobilityProfile
from repro.hsr.provider import CHINA_MOBILE
from repro.hsr.radio import channel_quality
from repro.hsr.scenario import Scenario
from repro.util.stats import mean
from repro.util.units import kmh_to_mps

SPEEDS_KMH = (0.0, 50.0, 100.0, 200.0, 300.0, 350.0)


def _scenario_at(speed_kmh: float) -> Scenario:
    if speed_kmh == 0.0:
        profile = MobilityProfile(name="sweep-0", peak_speed=0.0)
        offset = 0.0
    else:
        peak = kmh_to_mps(speed_kmh)
        profile = MobilityProfile(
            name=f"sweep-{speed_kmh:.0f}", peak_speed=peak, route_length=200_000.0
        )
        ramp_time = peak / profile.acceleration
        offset = ramp_time + 60.0  # safely inside the cruise segment
    return Scenario(
        name=f"sweep/{speed_kmh:.0f}kmh",
        mobility=profile,
        provider=CHINA_MOBILE,
        flow_start_offset=offset,
    )


def _model_at(speed_kmh: float) -> float:
    quality = channel_quality(CHINA_MOBILE, kmh_to_mps(speed_kmh))
    params = LinkParams(
        rtt=CHINA_MOBILE.base_rtt * 1.4,
        timeout=max(0.5, 2.0 * quality.rto_floor),
        data_loss=quality.data_loss,
        ack_loss=quality.ack_loss,
        recovery_loss=0.05 + 0.3 * min(speed_kmh / 300.0, 1.2),
        wmax=CHINA_MOBILE.wmax,
        b=2,
    )
    # ACK bursts grow with speed: approximate the per-round burst
    # probability from the episode geometry (round RTT / burst spacing).
    if quality.has_ack_bursts:
        burst_share = quality.ack_burst_mean_bad / (
            quality.ack_burst_mean_good + quality.ack_burst_mean_bad
        )
        pa = min(0.5, burst_share)
    else:
        pa = 0.0
    return enhanced_throughput(params, ModelOptions(ack_burst_override=pa)).throughput


@experiment("speed_sweep", "Extension: throughput vs train speed")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    duration = 90.0 * scale
    flows = max(1, round(2 * scale))
    # The whole sweep as one FlowSpec batch: every (speed, flow) point
    # is seeded independently, so the executor can fan it out over
    # ``workers`` processes without changing a single result.
    specs = []
    for speed in SPEEDS_KMH:
        scenario = _scenario_at(speed)
        for index in range(flows):
            flow_seed = seed + 97 * index + int(speed)
            specs.append(
                FlowSpec(
                    scenario=scenario,
                    duration=duration,
                    seed=flow_seed,
                    flow_id=f"speed_sweep/{speed:.0f}kmh/{index}",
                )
            )
    execution = Executor.for_workers(workers).run(specs)
    rows = []
    sim_by_speed = {}
    for position, speed in enumerate(SPEEDS_KMH):
        outcomes = execution.outcomes[position * flows : (position + 1) * flows]
        throughputs = [
            outcome.result.throughput
            for outcome in outcomes
            if outcome.result is not None
        ]
        sim_by_speed[speed] = mean(throughputs)
        rows.append(
            {
                "speed_kmh": speed,
                "sim_throughput_pps": sim_by_speed[speed],
                "model_throughput_pps": _model_at(speed),
            }
        )
    return ExperimentResult(
        experiment_id="speed_sweep",
        title="Extension: throughput vs train speed",
        rows=rows,
        headline={
            "stationary_pps": sim_by_speed[0.0],
            "driving_100_pps": sim_by_speed[100.0],
            "hsr_300_pps": sim_by_speed[300.0],
            "collapse_factor_300": sim_by_speed[0.0] / max(sim_by_speed[300.0], 1e-9),
            "driving_retention": sim_by_speed[100.0] / max(sim_by_speed[0.0], 1e-9),
        },
        notes=(
            "expected shape ([8], [20]): mild degradation up to ~100 km/h, "
            "severe collapse by 300 km/h, in both simulator and model"
        ),
    )
