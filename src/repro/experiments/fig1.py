"""Fig. 1 — per-packet arrival latency of one HSR flow, with timeouts.

The paper's figure scatters, for one 300 km/h flow, every data packet
and ACK by (send time, delivery latency), marks lost packets at −1,
and annotates 10 timeout events.  This driver regenerates the series
and reports the per-timeout annotations plus the latency aggregates.
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.scenario import hsr_scenario
from repro.traces.analysis import arrival_latency_series
from repro.traces.events import FlowMetadata
from repro.util.stats import mean


def simulate_fig1_flow(scale: float = 1.0, seed: int = 2015):
    """The Fig-1 flow: one China Mobile LTE flow during the 300 km/h cruise."""
    scenario = hsr_scenario()
    duration = 120.0 * scale
    metadata = FlowMetadata(
        flow_id="fig1/flow", provider=scenario.provider.name,
        technology=scenario.provider.technology, scenario="hsr",
        capture_month="2015-10", phone_model="Samsung Note 3",
        duration=duration, seed=seed,
    )
    spec = FlowSpec(
        scenario=scenario, duration=duration, seed=seed,
        flow_id="fig1/flow", metadata=metadata,
    )
    _, trace = simulate_spec(spec)
    return trace


@experiment("fig1", "Fig. 1: packet/ACK arrival latency with timeout marks")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    trace = simulate_fig1_flow(scale=scale, seed=seed)
    points = arrival_latency_series(trace)
    data_latencies = [p.latency for p in points if p.direction == "data" and not p.lost]
    ack_latencies = [p.latency for p in points if p.direction == "ack" and not p.lost]
    rows = [
        {
            "timeout": index + 1,
            "time_s": record.time,
            "seq": record.seq,
            "rto_s": record.rto_value,
            "backoff": record.backoff_exponent,
        }
        for index, record in enumerate(trace.timeouts)
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1: packet/ACK arrival latency with timeout marks",
        rows=rows,
        headline={
            "points": float(len(points)),
            "timeouts": float(len(trace.timeouts)),
            "paper_timeouts": 10.0,
            "mean_data_latency_ms": 1000.0 * mean(data_latencies),
            "mean_ack_latency_ms": 1000.0 * mean(ack_latencies),
            "paper_typical_latency_ms": 30.0,
            "lost_data": float(sum(1 for p in points if p.lost and p.direction == "data")),
            "lost_acks": float(sum(1 for p in points if p.lost and p.direction == "ack")),
        },
        notes="lost packets are reported at latency -1, as in the paper's plot",
    )
