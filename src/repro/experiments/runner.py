"""CLI for the experiment registry.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig10 [--scale 1.0] [--seed 2015] [--json]
    python -m repro.experiments all [--scale 0.5]

Every table and figure of the paper has an id here (``table1``,
``fig1`` … ``fig12``) plus the extension experiments (``delack``,
``eq21_ablation``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.experiments.registry import (
    format_result,
    list_experiments,
    run_experiment,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    _add_common(run_parser)
    all_parser = sub.add_parser("all", help="run every experiment")
    _add_common(all_parser)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, title in list_experiments().items():
            print(f"{experiment_id:14s} {title}")
        return 0
    ids = [args.experiment_id] if args.command == "run" else list(list_experiments())
    exit_code = 0
    for experiment_id in ids:
        try:
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(asdict(result), indent=2))
        else:
            print(format_result(result))
            print()
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
