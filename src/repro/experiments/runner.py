"""CLI for the experiment registry.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig10 [--scale 1.0] [--seed 2015] [--json]
    python -m repro.experiments run cross_cc --cc all [--workers lockstep]
    python -m repro.experiments all [--scale 0.5]

Every table and figure of the paper has an id here (``table1``,
``fig1`` … ``fig12``) plus the extension experiments (``delack``,
``eq21_ablation``, ``variants``, ``cross_cc``).  ``--cc`` selects the
congestion control(s) for experiments that sweep the registry
(``cross_cc``): a name, a comma list, or ``all``
(see ``python -m repro.cc list``).

Robustness controls (see README "Robustness & fault injection"):

* ``--timeout-s`` / ``--max-events`` install a per-flow watchdog, so a
  degenerate simulation fails with ``BudgetExceededError`` instead of
  hanging the batch;
* ``--chaos INTENSITY`` installs an aggressive
  :class:`~repro.robustness.faults.FaultPlan` for campaign-based
  experiments — the resilience smoke path;
* ``--deadline-s`` / ``--max-worker-restarts`` configure the campaign
  supervision layer (parent-enforced per-flow wall-clock preemption
  and the worker-crash restart budget; see EXPERIMENTS.md);
* SIGINT/SIGTERM during a campaign drain gracefully: in-flight flows
  finish, completed results flush to the store, the report is marked
  interrupted, no further experiments launch, and the process exits
  with the conventional ``128 + signum``;
* ``all`` isolates experiments: one failure prints a one-line summary,
  the rest keep running, and the exit code is 1 if anything failed.

Observability (see README "Observability"):

* ``--telemetry`` collects per-flow counters in every executor-driven
  campaign/sweep and prints the merged summary (JSON) to stderr at the
  end — result bytes are unchanged;
* ``--progress`` prints flows done/total, flows/s, and ETA lines to
  stderr while campaigns run (implies nothing about results either).

Persistence (see README "Persistence & resumable campaigns"):

* ``--store DIR`` backs every executor-driven campaign with a
  content-addressed result store rooted at DIR — already-simulated
  flows are served from disk and a killed run resumes where it left
  off, with stdout byte-identical to an uncached run;
* ``--no-cache`` (with ``--store``) recomputes everything but still
  refreshes the store's entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.exec.supervise import (
    SupervisorPolicy,
    clear_interrupt,
    interrupt_signal,
    supervise_scope,
)
from repro.experiments.registry import (
    format_result,
    list_experiments,
    run_experiment_safe,
)
from repro.robustness.faults import FaultPlan, fault_scope
from repro.robustness.watchdog import (
    DEFAULT_EVENT_BUDGET,
    DEFAULT_WALL_CLOCK_S,
    Watchdog,
    watchdog_scope,
)
from repro.store.scope import store_scope
from repro.telemetry import CampaignTelemetry, TelemetryConfig, telemetry_scope

__all__ = ["main"]


def _workers_arg(value: str):
    """Parse ``--workers``: an integer, 'auto', 'lockstep', or 'fabric'."""
    if value in ("auto", "lockstep", "fabric"):
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, 'auto', 'lockstep', or "
            f"'fabric', got {value!r}"
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser(
        "run", help="run one experiment (or one scenario via --scenario)"
    )
    run_parser.add_argument(
        "experiment_id", nargs="?", default=None,
        help="experiment id (omit when using --scenario)")
    run_parser.add_argument(
        "--scenario", metavar="NAME|FILE", default=None,
        help="run a flow campaign in this scenario (a bundled scenario "
             "name or a scenario document file; see "
             "`python -m repro.scenarios list`) instead of a registered "
             "experiment")
    _add_scenario_workload(run_parser)
    _add_common(run_parser)
    sweep_parser = sub.add_parser(
        "sweep", help="run a campaign per scenario and compare them"
    )
    sweep_parser.add_argument(
        "scenarios", nargs="*", metavar="NAME|FILE",
        help="scenario names or document files (default with --all: the "
             "whole bundled library)")
    sweep_parser.add_argument(
        "--all", action="store_true",
        help="sweep every bundled scenario")
    _add_scenario_workload(sweep_parser)
    _add_common(sweep_parser)
    all_parser = sub.add_parser("all", help="run every experiment")
    _add_common(all_parser)
    return parser


def _add_scenario_workload(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--flows", type=int, default=4,
        help="flows per scenario campaign (default 4)")
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="seconds of simulated time per flow (default 30)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    parser.add_argument(
        "--timeout-s", type=float, default=DEFAULT_WALL_CLOCK_S,
        help=f"per-flow wall-clock watchdog in seconds, 0 disables "
             f"(default {DEFAULT_WALL_CLOCK_S:g})")
    parser.add_argument(
        "--max-events", type=int, default=DEFAULT_EVENT_BUDGET,
        help=f"per-flow simulator event budget, 0 disables "
             f"(default {DEFAULT_EVENT_BUDGET})")
    parser.add_argument(
        "--chaos", type=float, default=0.0, metavar="INTENSITY",
        help="inject an aggressive fault plan at this intensity into "
             "campaign experiments (default 0 = off)")
    parser.add_argument(
        "--deadline-s", type=float, default=0.0, metavar="S",
        help="parent-enforced per-flow wall-clock deadline: a flow "
             "still running after S seconds has its worker killed, the "
             "preemption recorded, and the flow retried — catches hangs "
             "the in-process watchdog cannot see (default 0 = off)")
    parser.add_argument(
        "--max-worker-restarts", type=int, default=8, metavar="N",
        help="how many times the supervision layer may rebuild a "
             "crashed or preempted worker pool per batch before "
             "quarantining the remainder (default 8)")
    parser.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N",
        help="fan campaign/sweep flows out over N processes, 'auto' to "
             "probe the batch and pick lockstep/serial/pool, "
             "'lockstep' to run eligible flows on one shared event "
             "wheel in-process, or 'fabric' to run on the distributed "
             "campaign fabric (see --fabric-workers); results are "
             "byte-identical to a serial run any way (default 1)")
    parser.add_argument(
        "--fabric-workers", type=int, default=2, metavar="N",
        help="with --workers fabric: local worker processes to spawn "
             "per campaign (0 = coordinator only; external workers "
             "attach to the URL printed on stderr; default 2)")
    parser.add_argument(
        "--fabric-port", type=int, default=0, metavar="P",
        help="with --workers fabric: coordinator bind port "
             "(default 0 = ephemeral)")
    parser.add_argument(
        "--fabric-host", default="127.0.0.1", metavar="H",
        help="with --workers fabric: coordinator bind address "
             "(default 127.0.0.1)")
    parser.add_argument(
        "--lease-timeout-s", type=float, default=30.0, metavar="S",
        help="with --workers fabric: seconds before an unfinished "
             "shard lease expires back to pending — how fast dead "
             "workers shed their work (default 30)")
    parser.add_argument(
        "--cc", metavar="NAME[,NAME...]", default=None,
        help="congestion control selection for CC-aware experiments "
             "(cross_cc): a repro.cc registry name, a comma-separated "
             "list, or 'all' for every registered variant; experiments "
             "that don't declare a cc parameter ignore it")
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect per-flow counters in every campaign and print the "
             "merged summary (JSON) to stderr; result bytes unchanged")
    parser.add_argument(
        "--progress", action="store_true",
        help="print flows done/total, flows/s and ETA to stderr while "
             "campaigns run (presentation only)")
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed flow-result store: cached flows are "
             "served from DIR without simulating, fresh ones persisted "
             "there; output stays byte-identical (default: no store)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="with --store: recompute every flow but still refresh its "
             "store entry (repair mode); no-op without --store")


def _watchdog_from(args: argparse.Namespace) -> Optional[Watchdog]:
    max_events = args.max_events if args.max_events > 0 else None
    wall_clock = args.timeout_s if args.timeout_s > 0 else None
    if max_events is None and wall_clock is None:
        return None
    return Watchdog(max_events=max_events, wall_clock_s=wall_clock)


def _run_scenarios(args: argparse.Namespace, refs: List[str]) -> int:
    """Run the scenario campaign/sweep the CLI asked for; 0 on success."""
    # Imported lazily: the experiments CLI should not pay for the
    # scenarios package (or its YAML parse of the library) unless a
    # scenario run was actually requested.
    from repro.experiments.scenario_run import (
        run_scenario_campaign,
        run_scenario_sweep,
    )
    from repro.util.errors import ReproError

    flows = max(1, round(args.flows * args.scale))
    try:
        if len(refs) == 1 and args.command == "run":
            result = run_scenario_campaign(
                refs[0],
                flows=flows,
                duration=args.duration,
                seed=args.seed,
                workers=args.workers,
            )
        else:
            result = run_scenario_sweep(
                refs,
                flows=flows,
                duration=args.duration,
                seed=args.seed,
                workers=args.workers,
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(asdict(result), indent=2))
    else:
        print(format_result(result))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, title in list_experiments().items():
            print(f"{experiment_id:14s} {title}")
        return 0
    ids: List[str] = []
    scenario_refs: Optional[List[str]] = None
    if args.command == "run":
        if args.scenario is not None:
            if args.experiment_id is not None:
                print(
                    "give an experiment id or --scenario, not both",
                    file=sys.stderr,
                )
                return 2
            scenario_refs = [args.scenario]
        elif args.experiment_id is None:
            print(
                "an experiment id (or --scenario NAME|FILE) is required",
                file=sys.stderr,
            )
            return 2
        else:
            ids = [args.experiment_id]
            if args.experiment_id not in list_experiments():
                known = ", ".join(sorted(list_experiments()))
                print(
                    f"unknown experiment {args.experiment_id!r}; known: {known}",
                    file=sys.stderr,
                )
                return 2
    elif args.command == "sweep":
        if args.all:
            from repro.scenarios import scenario_names

            scenario_refs = list(scenario_names()) + list(args.scenarios)
        elif args.scenarios:
            scenario_refs = list(args.scenarios)
        else:
            print(
                "sweep needs scenario names/files or --all", file=sys.stderr
            )
            return 2
    else:
        ids = list(list_experiments())

    plan = FaultPlan.aggressive(args.chaos) if args.chaos > 0 else None
    telemetry_config: Optional[TelemetryConfig] = None
    if args.telemetry or args.progress:
        telemetry_config = TelemetryConfig(
            collect=args.telemetry,
            progress=args.progress,
            aggregate=CampaignTelemetry() if args.telemetry else None,
        )
    supervisor = SupervisorPolicy(
        deadline_s=args.deadline_s if args.deadline_s > 0 else None,
        max_worker_restarts=args.max_worker_restarts,
    )
    from repro.fabric.backend import FabricConfig, fabric_scope

    fabric_config = None
    if args.workers == "fabric":
        # The store reference travels into the config too, so fabric
        # workers persist flows through the same store the driver's
        # cache partition reads (a URL reference works across hosts).
        fabric_config = FabricConfig(
            workers=args.fabric_workers,
            host=args.fabric_host,
            port=args.fabric_port,
            store=args.store,
            lease_timeout_s=args.lease_timeout_s,
            max_worker_restarts=args.max_worker_restarts,
        )
    clear_interrupt()  # sticky flag; don't inherit an old invocation's drain
    exit_code = 0
    interrupted_by: Optional[int] = None
    with watchdog_scope(_watchdog_from(args)), fault_scope(plan), telemetry_scope(
        telemetry_config
    ), store_scope(args.store, refresh=args.no_cache), supervise_scope(
        supervisor
    ), fabric_scope(fabric_config):
        if scenario_refs is not None:
            exit_code = _run_scenarios(args, scenario_refs)
            interrupted_by = interrupt_signal()
        for experiment_id in ids:
            result, failure = run_experiment_safe(
                experiment_id,
                scale=args.scale,
                seed=args.seed,
                workers=args.workers,
                cc=args.cc,
            )
            if failure is not None:
                print(failure.summary(), file=sys.stderr)
                exit_code = 1
            elif args.json:
                print(json.dumps(asdict(result), indent=2))
            else:
                print(format_result(result))
                print()
            interrupted_by = interrupt_signal()
            if interrupted_by is not None:
                # A drain happened inside this experiment: whatever
                # completed is flushed (and printed above); launching
                # the next experiment would ignore the operator.
                print(
                    "runner: campaign interrupted — completed flows are "
                    "persisted; rerun the same command to resume",
                    file=sys.stderr,
                )
                break
    if telemetry_config is not None and telemetry_config.aggregate is not None:
        aggregate = telemetry_config.aggregate
        if aggregate.flows:
            print(f"telemetry: {aggregate.summary()}", file=sys.stderr)
            print(aggregate.to_json(), file=sys.stderr)
        else:
            print(
                "telemetry: no executor-driven flows ran under this "
                "invocation (nothing to aggregate)",
                file=sys.stderr,
            )
    if interrupted_by is not None:
        return 128 + interrupted_by
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
