"""Cross-CC sweep — the Table-I campaign once per congestion control.

The paper models Reno "as a first step"; the CC zoo (:mod:`repro.cc`)
asks the follow-up question: how do CUBIC, BBR, Compound, and
Relentless fare in the same HSR channel, and how far does each stray
from the paper's closed forms?  For every selected variant this
experiment reruns the full Table-I scenario matrix (same flow ids,
same seeds — only the ``cc`` field of each :class:`~repro.exec.FlowSpec`
changes), then feeds every flow's *measured* link parameters into the
enhanced model (Eq. 21, with the measured ACK-burst probability) and
the Padhye baseline, reporting the mean deviation rate D (Eq. 22)
per CC.

Expected shape: the window-law variants (NewReno, CUBIC, Compound,
Relentless) land near Reno — window tuning barely moves the needle in
the paper's RTO-dominated channel, which is its point that the HSR
problem is not variant-specific — while BBR's rate-based pacing rides
through random loss and escapes the Reno closed forms entirely; the
deviation column quantifies that gap.

The sweep runs through the executor under every ambient scope, so
``--workers``, ``--chaos``, ``--telemetry``, and ``--store`` all apply;
with a store, a warm rerun serves every flow from cache (the headline
counts hits vs simulated flows).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cc import describe_cc
from repro.cc import cc_infos as _cc_infos
from repro.core.accuracy import FlowObservation, compare_models
from repro.core.enhanced import ModelOptions, enhanced_throughput, padhye_paper_form
from repro.exec import Executor
from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.correlation import MeasuredInputs, measured_model_inputs
from repro.traces.generator import campaign_specs
from repro.util.stats import mean

__all__ = ["run", "resolve_cc_selection"]

#: campaign shape at scale 1 — mirrors fig10's measurement window with
#: a smaller per-cell flow count (the sweep multiplies it by the number
#: of variants)
_DURATION = 90.0
_FLOW_SCALE = 0.06


def resolve_cc_selection(cc: Optional[str]) -> Tuple[str, ...]:
    """Expand the CLI's ``--cc`` value into registry names.

    ``all`` (or None/empty) selects every registered variant, in
    registration order; otherwise a single name or a comma-separated
    list, each validated against the registry (unknown names raise
    :class:`~repro.util.errors.ConfigurationError` listing what is
    registered).
    """
    if cc is None or cc.strip() in ("", "all"):
        return tuple(info.name for info in _cc_infos())
    names = tuple(name.strip() for name in cc.split(",") if name.strip())
    for name in names:
        describe_cc(name)
    return names


def _model_deviation(
    inputs: Sequence[MeasuredInputs],
) -> Dict[str, Optional[float]]:
    """Mean deviation rate D per model over one CC's measurable flows."""
    if len(inputs) < 2:
        return {"enhanced": None, "padhye": None}
    observations = [
        FlowObservation(
            params=m.params,
            throughput=m.throughput,
            group=m.provider,
            flow_id=m.flow_id,
        )
        for m in inputs
    ]
    burst_by_params = {
        id(obs.params): m.ack_burst_probability
        for obs, m in zip(observations, inputs)
    }

    def enhanced(params) -> float:
        options = ModelOptions(ack_burst_override=burst_by_params[id(params)])
        return enhanced_throughput(params, options).throughput

    def padhye(params) -> float:
        return padhye_paper_form(params).throughput

    comparison = compare_models(
        observations, {"enhanced": enhanced, "padhye": padhye}
    )
    return {
        "enhanced": comparison.mean_deviation("enhanced"),
        "padhye": comparison.mean_deviation("padhye"),
    }


@experiment("cross_cc", "Cross-CC sweep: Table-I campaign per congestion control")
def run(
    scale: float = 1.0,
    seed: int = 2015,
    workers=1,
    cc: str = "all",
) -> ExperimentResult:
    selection = resolve_cc_selection(cc)
    executor = Executor.for_workers(workers)
    rows: List[dict] = []
    headline: Dict[str, float] = {}
    hits = simulated = failed = 0
    store_active = False
    for name in selection:
        info = describe_cc(name)
        # Same seeds and flow ids for every variant — per-flow
        # comparisons line up; store keys differ via the cc field.
        specs = campaign_specs(
            seed=seed,
            duration=_DURATION * min(scale, 1.0),
            flow_scale=_FLOW_SCALE * scale,
            cc=name,
        )
        execution = executor.run(specs)
        throughputs = []
        timeouts = []
        inputs: List[MeasuredInputs] = []
        for outcome in execution.outcomes:
            if outcome.cache_state is not None:
                store_active = True
            if outcome.cache_state == "hit":
                hits += 1
            elif outcome.cache_state is not None:
                simulated += 1
            if outcome.result is None:
                failed += 1
                continue
            if outcome.cache_state is None:
                simulated += 1
            throughputs.append(outcome.result.throughput)
            timeouts.append(float(len(outcome.result.log.timeouts)))
            if outcome.trace is not None:
                measured = measured_model_inputs(outcome.trace)
                if measured is not None:
                    inputs.append(measured)
        deviation = _model_deviation(inputs)
        tput = mean(throughputs) if throughputs else 0.0
        rows.append(
            {
                "cc": name,
                "family": info.family,
                "flows": len(execution.outcomes),
                "mean_tput_pps": round(tput, 2),
                "mean_timeouts": round(mean(timeouts), 2) if timeouts else None,
                "enhanced_D_pct": (
                    round(100.0 * deviation["enhanced"], 2)
                    if deviation["enhanced"] is not None
                    else None
                ),
                "padhye_D_pct": (
                    round(100.0 * deviation["padhye"], 2)
                    if deviation["padhye"] is not None
                    else None
                ),
            }
        )
        headline[f"sim_{name}_pps"] = tput
    by_tput = sorted(rows, key=lambda row: row["mean_tput_pps"])
    if rows:
        headline["best_cc_pps"] = by_tput[-1]["mean_tput_pps"]
        headline["worst_cc_pps"] = by_tput[0]["mean_tput_pps"]
    if failed:
        headline["failed_flows"] = float(failed)
    if store_active:
        # Cache accounting goes to stderr, not into the result: a
        # warm-store rerun must stay byte-identical to the cold run.
        print(
            f"cross_cc: store hits={hits} flows simulated={simulated}",
            file=sys.stderr,
        )
    notes = (
        "deviation columns measure each variant's distance from the "
        "Reno-based closed forms; window-law tweaks barely move the "
        "needle in the RTO-dominated HSR channel, while rate-based "
        "pacing (bbr) escapes the Reno model entirely"
    )
    if rows:
        notes += (
            f"; best: {by_tput[-1]['cc']}, worst: {by_tput[0]['cc']}"
        )
    return ExperimentResult(
        experiment_id="cross_cc",
        title="Cross-CC sweep: Table-I campaign per congestion control",
        rows=rows,
        headline=headline,
        notes=notes,
    )
