"""Fig. 11 — one surviving ACK cancels the would-be spurious timeout.

The paper's point: thanks to cumulative acknowledgement, if even a
single ACK of the round reaches the sender (the ACK marked *a* — the
one acknowledging the whole round), the window advances and no
spurious retransmission happens — ACKs are "precious" in high-speed
mobility.

Same slow-motion setup as the Fig. 5 experiment, but the survivor is
the *last* ACK of the round (the paper's mark *a*), which cumulatively
acknowledges everything sent.
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.fig5 import _CONFIG, _ROUND_WINDOW
from repro.experiments.registry import ExperimentResult, experiment
from repro.simulator.channel import HandoffLoss, LossModel, NoLoss
from repro.util.rng import RngStream


class AllButLastInWindow(LossModel):
    """Loses every packet in the window except the ``round_size``-th one.

    With one ACK per packet and a round of ``round_size`` packets, the
    ``round_size``-th ACK inside the window is the round's final,
    all-covering cumulative ACK — the paper's ACK *a*.
    """

    def __init__(self, start: float, end: float, round_size: int) -> None:
        self.start = start
        self.end = end
        self.round_size = round_size
        self._seen = 0

    def is_lost(self, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        self._seen += 1
        return self._seen != self.round_size


@experiment("fig11", "Fig. 11: a single surviving ACK prevents the timeout")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    all_lost, _ = simulate_spec(
        FlowSpec(
            config=_CONFIG,
            data_loss=NoLoss(),
            ack_loss=HandoffLoss(
                RngStream(seed, "fig11"), [_ROUND_WINDOW], loss_during=1.0
            ),
            seed=seed,
            flow_id="fig11/all-lost",
        )
    )
    ack_a_survives, _ = simulate_spec(
        FlowSpec(
            config=_CONFIG,
            data_loss=NoLoss(),
            ack_loss=AllButLastInWindow(*_ROUND_WINDOW, round_size=int(_CONFIG.wmax)),
            seed=seed,
            flow_id="fig11/ack-a-survives",
        )
    )
    rows = [
        {
            "case": "all ACKs of the round lost",
            "timeouts": len(all_lost.log.timeouts),
            "duplicate_payloads": all_lost.log.duplicate_payloads,
            "acks_lost": all_lost.log.acks_lost,
        },
        {
            "case": "ACK 'a' (last of round) survives",
            "timeouts": len(ack_a_survives.log.timeouts),
            "duplicate_payloads": ack_a_survives.log.duplicate_payloads,
            "acks_lost": ack_a_survives.log.acks_lost,
        },
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: a single surviving ACK prevents the timeout",
        rows=rows,
        headline={
            "timeouts_all_lost": float(len(all_lost.log.timeouts)),
            "timeouts_ack_a_survives": float(len(ack_a_survives.log.timeouts)),
        },
        notes=(
            "the surviving cumulative ACK acknowledges the whole round, so "
            "the second case must show zero timeouts and zero duplicates"
        ),
    )
