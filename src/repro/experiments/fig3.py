"""Fig. 3 — CDFs of lifetime vs in-recovery data loss rates.

Paper finding: the average data loss rate over a flow's lifetime is
0.7526%, while the loss rate of retransmissions inside timeout-recovery
phases averages 27.26% — a ~36× gap that motivates the separate ``q``
parameter of the enhanced model.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.generator import generate_dataset
from repro.traces.timeouts import loss_rate_pair
from repro.util.stats import EmpiricalCdf

#: Paper aggregates.
PAPER_LIFETIME_LOSS = 0.007526
PAPER_RECOVERY_LOSS = 0.2726

_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90)


@experiment("fig3", "Fig. 3: CDF of lifetime vs in-recovery data loss")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    dataset = generate_dataset(
        seed=seed, duration=90.0, flow_scale=0.1 * scale, workers=workers
    )
    lifetime_rates = []
    recovery_rates = []
    for trace in dataset.traces:
        lifetime, recovery = loss_rate_pair(trace)
        lifetime_rates.append(lifetime)
        if recovery is not None:
            recovery_rates.append(recovery)
    if not recovery_rates:
        return ExperimentResult(
            experiment_id="fig3",
            title="Fig. 3: CDF of lifetime vs in-recovery data loss",
            notes="no completed recovery phases; raise scale",
        )
    lifetime_cdf = EmpiricalCdf.from_samples(lifetime_rates)
    recovery_cdf = EmpiricalCdf.from_samples(recovery_rates)
    rows = [
        {
            "quantile": q,
            "lifetime_loss": lifetime_cdf.quantile(q),
            "recovery_loss": recovery_cdf.quantile(q),
        }
        for q in _QUANTILES
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: CDF of lifetime vs in-recovery data loss",
        rows=rows,
        headline={
            "mean_lifetime_loss": lifetime_cdf.mean(),
            "paper_lifetime_loss": PAPER_LIFETIME_LOSS,
            "mean_recovery_loss": recovery_cdf.mean(),
            "paper_recovery_loss": PAPER_RECOVERY_LOSS,
            "separation_factor": recovery_cdf.mean() / max(lifetime_cdf.mean(), 1e-9),
            "flows": float(dataset.flow_count),
        },
        notes="the recovery-phase CDF must sit far to the right of the lifetime CDF",
    )
