"""Table I — the dataset summary, regenerated from the synthetic campaign."""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.dataset import table1_rows
from repro.traces.generator import generate_dataset

#: Paper totals: 255 flows, 40.47 GB over both campaigns.
PAPER_FLOWS = 255
PAPER_GB = 40.47


@experiment("table1", "Table I: dataset summary (campaign regeneration)")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    """Regenerate the Table-I campaign at ``scale`` × the paper's flow counts.

    The default scale runs a 20%-size campaign (51 flows) so the CLI
    finishes in about a minute; ``scale=5`` reproduces all 255 flows,
    and ``workers=4`` cuts the wall-clock near-linearly with identical
    output.
    """
    flow_scale = 0.2 * scale
    dataset = generate_dataset(
        seed=seed, duration=60.0, flow_scale=flow_scale, workers=workers
    )
    rows = [
        {
            "month": row.capture_month,
            "trips": row.trips,
            "phone": row.phone_model,
            "provider": row.provider,
            "flows": row.flows,
            "size_gb": row.trace_size_gb,
        }
        for row in table1_rows(dataset)
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: dataset summary (campaign regeneration)",
        rows=rows,
        headline={
            "flows": float(dataset.flow_count),
            "total_gb": dataset.total_bytes / 1e9,
            "paper_flows_at_full_scale": float(PAPER_FLOWS),
            "paper_gb": PAPER_GB,
        },
        notes=(
            f"campaign generated at flow_scale={flow_scale:.2f}; "
            "flow counts scale linearly, bytes depend on simulated throughput"
        ),
    )
