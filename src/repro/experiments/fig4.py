"""Fig. 4 — ACK loss rate vs timeout probability: a positive envelope.

The paper plots one point per flow and observes all points inside a
band between two oblique lines — a positive (though not strong)
correlation between ACK loss and the probability that a loss
indication is a timeout.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.traces.correlation import (
    scatter_correlation,
    scatter_envelope,
    timeout_ack_scatter,
)
from repro.traces.generator import generate_dataset


@experiment("fig4", "Fig. 4: ACK loss rate vs P(timeout) scatter + envelope")
def run(scale: float = 1.0, seed: int = 2015, workers: int = 1) -> ExperimentResult:
    dataset = generate_dataset(
        seed=seed, duration=90.0, flow_scale=0.1 * scale, workers=workers
    )
    points = timeout_ack_scatter(dataset.traces)
    if len(points) < 3:
        return ExperimentResult(
            experiment_id="fig4",
            title="Fig. 4: ACK loss rate vs P(timeout) scatter + envelope",
            notes="not enough lossy flows; raise scale",
        )
    (slope, low_intercept), (_, high_intercept) = scatter_envelope(points)
    correlation = scatter_correlation(points)
    rows = [
        {
            "flow": point.flow_id,
            "ack_loss_rate": point.ack_loss_rate,
            "timeout_probability": point.timeout_probability,
        }
        for point in points[: min(len(points), 40)]
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4: ACK loss rate vs P(timeout) scatter + envelope",
        rows=rows,
        headline={
            "flows": float(len(points)),
            "pearson_correlation": correlation,
            "envelope_slope": slope,
            "envelope_low_intercept": low_intercept,
            "envelope_high_intercept": high_intercept,
        },
        notes=(
            "paper expectation: positive correlation (tendency, not strong); "
            "all points lie between the two envelope lines by construction"
        ),
    )
