"""Scenario-driven campaigns: run any scenario document as a workload.

The figure drivers each hard-code their environment; this module is the
generic counterpart the ``--scenario`` flag and the ``sweep`` command
expose — point the runner at a scenario *reference* (a bundled name or
a document file) and it runs a seeded flow campaign there, under all
the usual ambient scopes (watchdog, chaos, telemetry, store,
supervision).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.exec import Executor, FlowSpec
from repro.experiments.registry import ExperimentResult
from repro.hsr.scenario import Scenario
from repro.robustness.faults import current_fault_plan, with_faults
from repro.scenarios import resolve_scenario_ref
from repro.scenarios.compile import compile_document
from repro.scenarios.document import ScenarioDocument
from repro.util.stats import mean
from repro.util.units import mps_to_kmh, pps_to_mbps

__all__ = ["run_scenario_campaign", "run_scenario_sweep", "scenario_specs"]


def _effective_scenario(document: ScenarioDocument) -> Scenario:
    scenario = compile_document(document)
    plan = current_fault_plan()
    if plan is not None and not plan.is_noop():
        scenario = with_faults(scenario, plan)
    return scenario


def scenario_specs(
    document: ScenarioDocument,
    *,
    flows: int,
    duration: float,
    seed: int,
    cc: str = "reno",
    cc_params: Optional[object] = None,
) -> List[FlowSpec]:
    """Independently seeded FlowSpecs for one scenario campaign.

    Seeds depend only on (``seed``, flow index), so the batch fans out
    over workers — or reruns against a result store — byte-identically.
    ``cc``/``cc_params`` pick the congestion control (a :mod:`repro.cc`
    registry name) every flow of the campaign runs.
    """
    scenario = _effective_scenario(document)
    return [
        FlowSpec(
            scenario=scenario,
            duration=duration,
            seed=seed + 1009 * index,
            cc=cc,
            cc_params=cc_params,
            flow_id=f"scenario/{document.name}/{index}",
        )
        for index in range(flows)
    ]


def _campaign_row(
    document: ScenarioDocument, outcomes: Sequence
) -> dict:
    scenario = compile_document(document)
    results = [
        outcome.result for outcome in outcomes if outcome.result is not None
    ]
    throughputs = [result.throughput for result in results]
    average = mean(throughputs) if throughputs else 0.0
    return {
        "scenario": document.name,
        "speed_kmh": mps_to_kmh(scenario.cruise_speed()),
        "provider": scenario.provider.name,
        "flows": len(outcomes),
        "failed": sum(1 for outcome in outcomes if outcome.result is None),
        "throughput_pps": average,
        "throughput_mbps": pps_to_mbps(average),
        "timeouts": sum(len(result.log.timeouts) for result in results),
        "retransmissions": sum(
            1
            for result in results
            for packet in result.log.data_packets
            if packet.is_retransmission
        ),
    }


def run_scenario_campaign(
    ref: str,
    *,
    flows: int = 4,
    duration: float = 30.0,
    seed: int = 2015,
    workers: Union[int, str] = 1,
) -> ExperimentResult:
    """Run ``flows`` seeded flows in the scenario ``ref`` names."""
    document = resolve_scenario_ref(ref)
    specs = scenario_specs(
        document, flows=flows, duration=duration, seed=seed
    )
    execution = Executor.for_workers(workers).run(specs)
    row = _campaign_row(document, execution.outcomes)
    return ExperimentResult(
        experiment_id=f"scenario:{document.name}",
        title=f"Scenario campaign: {document.name}",
        rows=[row],
        headline={
            "throughput_pps": row["throughput_pps"],
            "throughput_mbps": row["throughput_mbps"],
            "failed_flows": float(row["failed"]),
        },
        notes=document.description,
    )


def run_scenario_sweep(
    refs: Sequence[str],
    *,
    flows: int = 2,
    duration: float = 20.0,
    seed: int = 2015,
    workers: Union[int, str] = 1,
) -> ExperimentResult:
    """One campaign per scenario in ``refs``, as a single comparable table.

    The whole sweep is submitted as one flat batch, so worker fan-out
    crosses scenario boundaries instead of draining one scenario at a
    time.
    """
    documents = [resolve_scenario_ref(ref) for ref in refs]
    specs: List[FlowSpec] = []
    for document in documents:
        specs += scenario_specs(
            document, flows=flows, duration=duration, seed=seed
        )
    execution = Executor.for_workers(workers).run(specs)
    rows = []
    best: Optional[dict] = None
    worst: Optional[dict] = None
    for position, document in enumerate(documents):
        outcomes = execution.outcomes[
            position * flows : (position + 1) * flows
        ]
        row = _campaign_row(document, outcomes)
        rows.append(row)
        if best is None or row["throughput_pps"] > best["throughput_pps"]:
            best = row
        if worst is None or row["throughput_pps"] < worst["throughput_pps"]:
            worst = row
    headline = {}
    if best is not None and worst is not None:
        headline = {
            "scenarios": float(len(documents)),
            "best_pps": best["throughput_pps"],
            "worst_pps": worst["throughput_pps"],
        }
    return ExperimentResult(
        experiment_id="scenario_sweep",
        title=f"Scenario sweep over {len(documents)} scenario(s)",
        rows=rows,
        headline=headline,
        notes=(
            f"best: {best['scenario']}, worst: {worst['scenario']}"
            if best is not None and worst is not None
            else ""
        ),
    )
