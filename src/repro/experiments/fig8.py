"""Fig. 8 — the cycle structure: CA sequences punctuated by timeout sequences.

The paper's Fig. 8 shows a flow's lifetime as cycles, each consisting
of ``n`` congestion-avoidance phases (ended by triple-dup-ACK fast
retransmits) followed by one timeout sequence, with ``Q = 1/n``.  This
driver segments a simulated flow into those cycles and compares the
empirical ``Q`` with the model's.
"""

from __future__ import annotations

from repro.exec import FlowSpec, simulate_spec
from repro.experiments.registry import ExperimentResult, experiment
from repro.hsr.scenario import hsr_scenario
from repro.util.stats import mean


@experiment("fig8", "Fig. 8: CA sequences + timeout sequences (cycles)")
def run(scale: float = 1.0, seed: int = 2015) -> ExperimentResult:
    scenario = hsr_scenario()
    duration = 180.0 * scale
    result, _ = simulate_spec(
        FlowSpec(scenario=scenario, duration=duration, seed=seed, flow_id="fig8/flow")
    )
    log = result.log

    # Loss indications in time order: fast retransmits (CA-phase
    # endings) and timeout-sequence starts.
    fast_retransmits = sorted(
        record.send_time
        for record in log.data_packets
        if record.is_retransmission and not record.in_timeout_recovery
    )
    timeout_starts = sorted(phase.start_time for phase in log.recovery_phases)

    # Cycle = the fast retransmits between two consecutive timeout
    # sequences, plus the closing sequence.
    rows = []
    cursor = 0
    previous_end = 0.0
    ca_phase_counts = []
    for index, start in enumerate(timeout_starts):
        ca_phases = 0
        while cursor < len(fast_retransmits) and fast_retransmits[cursor] < start:
            ca_phases += 1
            cursor += 1
        ca_phase_counts.append(ca_phases + 1)  # the last CA phase ends in the timeout
        phase = log.recovery_phases[index]
        rows.append(
            {
                "cycle": index + 1,
                "ca_phases_n": ca_phases + 1,
                "cycle_start_s": previous_end,
                "timeout_sequence_start_s": start,
                "timeouts_in_sequence": phase.timeouts,
                "sequence_duration_s": phase.duration,
            }
        )
        previous_end = phase.end_time if phase.end_time is not None else start
    if not rows:
        return ExperimentResult(
            experiment_id="fig8",
            title="Fig. 8: CA sequences + timeout sequences (cycles)",
            notes="no timeout sequences in this run; raise scale",
        )
    empirical_q = 1.0 / mean([float(n) for n in ca_phase_counts])
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8: CA sequences + timeout sequences (cycles)",
        rows=rows[: min(len(rows), 25)],
        headline={
            "cycles": float(len(rows)),
            "mean_ca_phases_per_cycle_n": mean([float(n) for n in ca_phase_counts]),
            "empirical_Q_1_over_n": empirical_q,
            "mean_timeouts_per_sequence": mean(
                [float(row["timeouts_in_sequence"]) for row in rows]
            ),
        },
        notes="Q = 1/n links this cycle structure to the model's Eq. (8)",
    )
