"""Experiment registry: one named, runnable driver per paper artefact.

Each experiment module registers a ``run(scale, seed) -> ExperimentResult``
function under the paper artefact's id (``table1``, ``fig1`` … ``fig12``,
plus extensions).  ``scale`` multiplies the workload (flow counts and/or
durations) so benchmarks can run miniatures of the same experiment;
``scale=1`` is the default CLI-sized run.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "ExperimentFailure",
    "ExperimentResult",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_experiment_safe",
    "format_result",
]


@dataclass
class ExperimentResult:
    """The regenerated rows/series of one paper table or figure."""

    experiment_id: str
    title: str
    #: printable rows — the same series the paper's artefact reports
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: the headline numbers (what EXPERIMENTS.md records vs the paper)
    headline: Dict[str, float] = field(default_factory=dict)
    notes: str = ""


#: id -> (title, runner)
_REGISTRY: Dict[str, tuple] = {}


def experiment(experiment_id: str, title: str) -> Callable:
    """Class of decorators registering an experiment runner."""

    def decorator(runner: Callable[..., ExperimentResult]) -> Callable:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = (title, runner)
        return runner

    return decorator


def list_experiments() -> Mapping[str, str]:
    """id -> title for every registered experiment."""
    _ensure_loaded()
    return {experiment_id: title for experiment_id, (title, _) in _REGISTRY.items()}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def _runner_kwargs(
    runner: Callable,
    scale: float,
    seed: int,
    workers: "Union[int, str]",
    cc: Optional[str] = None,
) -> dict:
    """The kwargs a runner accepts.

    ``workers`` is passed only to runners that declare it — parallel
    fan-out is an opt-in per experiment (campaigns and sweeps take it;
    single-flow drivers don't), and third-party runners registered
    before the parameter existed keep working.  ``cc`` (a congestion
    control selection, e.g. the CLI's ``--cc``) follows the same rule,
    so CC-aware experiments like ``cross_cc`` opt in by declaring it.
    """
    kwargs = {"scale": scale, "seed": seed}
    parameters = inspect.signature(runner).parameters
    if workers != 1 and "workers" in parameters:
        kwargs["workers"] = workers
    if cc is not None and "cc" in parameters:
        kwargs["cc"] = cc
    return kwargs


def run_experiment(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = 2015,
    workers: "Union[int, str]" = 1,
    cc: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by id."""
    runner = get_experiment(experiment_id)
    return runner(**_runner_kwargs(runner, scale, seed, workers, cc))


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment that raised instead of producing a result."""

    experiment_id: str
    error_type: str
    error: str

    def summary(self) -> str:
        return f"FAILED {self.experiment_id}: {self.error_type}: {self.error}"


def run_experiment_safe(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = 2015,
    workers: "Union[int, str]" = 1,
    cc: Optional[str] = None,
) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
    """Run one experiment, converting any crash into a failure record.

    Exactly one element of the returned pair is non-``None``.  An
    unknown ``experiment_id`` still raises :class:`KeyError` — that is
    a caller mistake, not an experiment failure.  Batch drivers (the
    ``all`` command) use this so one broken experiment cannot abort the
    rest of the run.
    """
    runner = get_experiment(experiment_id)  # KeyError propagates
    try:
        return runner(**_runner_kwargs(runner, scale, seed, workers, cc)), None
    except Exception as error:
        return None, ExperimentFailure(
            experiment_id=experiment_id,
            error_type=type(error).__name__,
            error=str(error),
        )


def format_result(result: ExperimentResult) -> str:
    """Render a result as an aligned text report."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        columns = list(result.rows[0].keys())
        widths = {
            column: max(
                len(column), *(len(_cell(row.get(column))) for row in result.rows)
            )
            for column in columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in result.rows:
            lines.append(
                "  ".join(
                    _cell(row.get(column)).ljust(widths[column]) for column in columns
                )
            )
    if result.headline:
        lines.append("")
        for key, value in result.headline.items():
            lines.append(f"  {key}: {_cell(value)}")
    if result.notes:
        lines.append("")
        lines.append(f"  note: {result.notes}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


_loaded = False


def _ensure_loaded() -> None:
    """Import every experiment module exactly once (registration side effect)."""
    global _loaded
    if _loaded:
        return
    from repro.experiments import (  # noqa: F401
        ablation,
        cross_cc,
        delack,
        fig1,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        fig12,
        speed_sweep,
        table1,
        trip_profile,
        variants,
    )

    _loaded = True
