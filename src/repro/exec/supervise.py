"""Fault-tolerant campaign supervision around executor backends.

The retry/quarantine loop of :mod:`repro.exec.executor` protects a
campaign from flows that *raise*; this module protects it from failure
modes that an in-process ``except`` can never see:

* **worker death** — a spawn worker that segfaults, is OOM-killed, or
  calls ``os._exit`` breaks the whole ``ProcessPoolExecutor``
  (``BrokenProcessPool``) and, unsupervised, loses the entire batch.
  The :class:`SupervisedBackend` catches the break, rebuilds the pool,
  and isolates the killer spec by re-running the suspects through a
  one-worker pool (an *ordered isolation probe*: with a single worker,
  futures start strictly in submission order, so the first broken
  future **is** the killer — a sharper version of bisecting the failed
  batch).  The killer gets a :class:`~repro.robustness.campaign.FlowFailure`
  with the ``worker_crash`` failure class and is retried; innocent
  bystanders are re-run without any failure record.

* **hung flows** — the in-simulation :class:`~repro.robustness.watchdog.Watchdog`
  polls between events and cannot fire when the interpreter itself is
  stuck.  The supervisor enforces ``deadline_s`` from the *parent*: a
  future that outlives its deadline gets its worker killed, a
  ``deadline``-class failure recorded, and a retry.

* **signals** — SIGINT/SIGTERM trigger a graceful drain instead of
  tearing the process down mid-write: submission stops, in-flight
  flows get ``grace_s`` to finish, completed results flow back to the
  caller (and through it into any ambient
  :class:`~repro.store.ResultStore`), and unrun specs come back as
  ``skipped`` outcomes so the
  :class:`~repro.robustness.campaign.CampaignReport` is marked
  ``interrupted`` — a re-run against the same store executes exactly
  the remainder.  A second signal aborts immediately.

Determinism contract: an execution that is aborted through no fault of
its own (a bystander of another flow's crash, or a preempted-but-
innocent in-flight flow) does **not** consume its execution index, so
every scheduled chaos action — and therefore every failure record —
fires exactly once regardless of worker-pool timing.  As long as the
restart budget is not exhausted, two runs of the same supervised
campaign produce byte-identical reports.  Exhausting
``max_worker_restarts`` is an emergency stop (genuinely sick
infrastructure) and sacrifices that guarantee: whatever is still
unfinished at that moment is quarantined.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextvars import ContextVar
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exec.executor import (
    AutoBackend,
    FlowOutcome,
    LockstepBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.robustness.campaign import FlowFailure, QuarantineRecord, RetryPolicy
from repro.telemetry.counters import CountingTelemetry
from repro.util.errors import ConfigurationError

__all__ = [
    "SupervisedBackend",
    "SupervisorPolicy",
    "clear_interrupt",
    "current_supervisor_policy",
    "interrupt_signal",
    "supervise_scope",
]

#: exit status used by the ``crash`` chaos action (and visible in the
#: stderr note when a real worker dies)
_CRASH_EXIT_STATUS = 71  # EX_OSERR: "system error" in sysexits.h


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard the supervision layer fights for a campaign.

    ``deadline_s`` is the parent-enforced per-flow wall-clock limit
    (``None`` disables preemption); ``max_worker_restarts`` caps how
    many times the worker pool may be rebuilt after crashes and
    preemptions before the supervisor gives up on the remainder;
    ``grace_s`` is how long a signal drain waits for in-flight flows
    before killing them; ``drain_signals=False`` leaves SIGINT/SIGTERM
    handling entirely to the caller.
    """

    deadline_s: Optional[float] = None
    max_worker_restarts: int = 8
    grace_s: float = 10.0
    drain_signals: bool = True

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.grace_s < 0.0:
            raise ConfigurationError(
                f"grace_s must be >= 0, got {self.grace_s}"
            )


_ambient_policy: ContextVar[Optional[SupervisorPolicy]] = ContextVar(
    "repro_ambient_supervisor", default=None
)


def current_supervisor_policy() -> Optional[SupervisorPolicy]:
    """The ambient policy installed by :func:`supervise_scope`, if any."""
    return _ambient_policy.get()


@contextlib.contextmanager
def supervise_scope(
    policy: Optional[SupervisorPolicy],
) -> Iterator[Optional[SupervisorPolicy]]:
    """Install ``policy`` ambiently (the CLI's ``--deadline-s`` plumbing).

    Mirrors :func:`~repro.robustness.watchdog.watchdog_scope`: every
    :class:`~repro.exec.executor.Executor` run inside the block
    supervises its backend under this policy.  ``None`` is a no-op
    scope (executors then use the default :class:`SupervisorPolicy`).
    """
    token = _ambient_policy.set(policy)
    try:
        yield policy
    finally:
        _ambient_policy.reset(token)


#: signal number of the most recent drain, sticky until cleared — how
#: the CLI knows to stop launching experiments and exit 128+signum
_last_interrupt: Optional[int] = None


def interrupt_signal() -> Optional[int]:
    """Signal number of the most recent graceful drain (None if none)."""
    return _last_interrupt


def clear_interrupt() -> None:
    """Forget a recorded drain (test isolation; new CLI invocations)."""
    global _last_interrupt
    _last_interrupt = None


class _DrainGuard:
    """Scoped SIGINT/SIGTERM handlers that set a flag instead of dying.

    Installation is best-effort: outside the main thread (or with
    ``drain_signals=False``) the guard is inert and signals keep their
    previous behaviour.  A second signal while draining restores the
    previous handlers and raises ``KeyboardInterrupt`` — the operator
    asked twice, so stop politely refusing to die.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.installed = False
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}

    @property
    def tripped(self) -> bool:
        return self.signum is not None

    def _handle(self, signum: int, frame: object) -> None:
        if self.tripped:
            self._restore()
            raise KeyboardInterrupt
        self.signum = signum
        global _last_interrupt
        _last_interrupt = signum
        name = signal.Signals(signum).name
        print(
            f"supervise: caught {name} — draining in-flight flows, "
            "flushing completed results (send again to abort)",
            file=sys.stderr,
            flush=True,
        )

    def __enter__(self) -> "_DrainGuard":
        if not self.enabled:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        try:
            for signum in self._SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
        except ValueError:  # pragma: no cover - non-main interpreter state
            self._restore()
        else:
            self.installed = True
        return self

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):  # pragma: no cover - teardown
                pass
        self._previous.clear()
        self.installed = False

    def __exit__(self, *exc_info: object) -> None:
        self._restore()


def _supervised_call(fn: Callable, payload: object, action: Optional[Tuple]):
    """Worker-side trampoline: run one payload, chaos action first.

    Module-level so the spawn pool can pickle it.  ``action`` is a
    plain tuple (picklable, no chaos-module import needed in workers):
    ``("crash",)`` kills the worker the way a segfault would,
    ``("hang", seconds)`` wedges it past any deadline, and
    ``("raise", message)`` throws an injected exception.
    """
    if action is not None:
        kind = action[0]
        if kind == "crash":
            os._exit(_CRASH_EXIT_STATUS)
        elif kind == "hang":
            time.sleep(float(action[1]))
        elif kind == "raise":
            from repro.util.errors import ChaosError

            raise ChaosError(str(action[1]))
    return fn(payload)


@dataclass
class _Tracked:
    """Supervisor-side state of one payload across executions."""

    position: int
    payload: Tuple
    executions: int = 0
    started: float = 0.0
    failures: List[FlowFailure] = field(default_factory=list)

    @property
    def spec(self):
        return self.payload[1]

    @property
    def retry_policy(self) -> RetryPolicy:
        return self.payload[2]


class SupervisedBackend:
    """Crash-recovering, deadline-enforcing, drain-aware backend wrapper.

    Wraps any executor backend; the inner backend decides the execution
    *mode* (serial inline vs worker pool, and the worker count), while
    the supervisor owns the pool itself so it can kill and rebuild it.
    Payloads must follow the executor contract —
    ``(index, FlowSpec, RetryPolicy)`` tuples mapped over a picklable
    function — which is exactly what :class:`~repro.exec.executor.Executor`
    submits.

    The supervisor forces a (single-worker) pool when ``deadline_s`` is
    set even for serial inner backends: preemption needs a process
    boundary to kill across.
    """

    #: seconds between drain-flag polls while waiting on futures
    POLL_S = 0.5

    def __init__(
        self,
        inner: Optional[object] = None,
        *,
        policy: Optional[SupervisorPolicy] = None,
    ) -> None:
        self.inner = inner if inner is not None else SerialBackend()
        self.policy = policy if policy is not None else SupervisorPolicy()
        #: True when the last ``map`` was cut short by a signal drain
        self.last_interrupted = False

    @property
    def name(self) -> str:
        return f"supervised[{getattr(self.inner, 'name', 'backend')}]"

    # -- chaos hooks (overridden by ChaosBackend) ----------------------

    def _action_for(
        self, payload: Tuple, execution: int
    ) -> Optional[Tuple]:
        """Chaos action for this payload's Nth execution (None = run)."""
        return None

    def _requires_pool(self, items: Sequence) -> bool:
        """Whether this map must run in a pool regardless of the inner
        backend (crash/hang actions would take the parent down)."""
        return False

    def prepare_batch(self, items: Sequence) -> None:
        """Pre-batch hook (chaos store corruption happens here).

        Must be idempotent: when a :class:`~repro.store.backend.CachedBackend`
        wraps this backend it invokes the hook *before* its store reads
        (so injected corruption is actually seen), and ``map`` calls it
        again for the miss batch.
        """

    # -- the backend protocol ------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        items = list(items)
        self.last_interrupted = False
        if getattr(self.inner, "self_supervising", False):
            # A fabric backend owns its whole fault story — worker
            # respawn, lease re-grants, per-shard retry — across a
            # process boundary this layer cannot see.  Wrapping it in
            # drain guards and pools here would only fight that
            # machinery, so the batch is delegated verbatim.
            return self.inner.map(fn, items, progress)
        results: List[Optional[FlowOutcome]] = [None] * len(items)
        done_box = [0]
        with _DrainGuard(self.policy.drain_signals) as drain:
            self.prepare_batch(items)
            tracked = [
                _Tracked(position=position, payload=payload)
                for position, payload in enumerate(items)
            ]
            workers, use_pool = self._mode(fn, items, tracked, results,
                                           progress, done_box, drain)
            remaining = [t for t in tracked if results[t.position] is None]
            if use_pool and remaining:
                self._run_pooled(
                    fn, remaining, workers, drain, results, progress, done_box
                )
            elif remaining:
                self._run_inline(fn, remaining, drain, results, progress, done_box)
        # Whatever never ran (signal drain) comes back as a skipped
        # placeholder: present, ordered, but excluded from accounting.
        for position, payload in enumerate(items):
            if results[position] is None:
                results[position] = self._skipped_outcome(position, payload)
                self.last_interrupted = True
        return results

    # -- mode selection ------------------------------------------------

    def _mode(
        self, fn, items, tracked, results, progress, done_box, drain
    ) -> Tuple[int, bool]:
        """(workers, use_pool) for this batch, honouring the inner backend.

        An :class:`~repro.exec.executor.AutoBackend` inner still gets
        its serial probe: the head runs inline here (its results are
        kept), and the probe's projection decides whether the tail is
        worth a pool — the decision lands on ``inner.last_decision``
        exactly as an unsupervised auto run would record it.

        Lockstep inners (and auto picking lockstep) run the whole
        batch right here, group by group, completing through the
        supervisor's bookkeeping so drains land between groups; when
        supervision *forces* a pool (chaos actions, ``deadline_s`` —
        both need a process boundary), lockstep is bypassed and the
        batch runs per-item like any pooled map, which is always
        byte-equivalent.
        """
        inner = self.inner
        forced = self._requires_pool(items) or self.policy.deadline_s is not None
        if isinstance(inner, ProcessPoolBackend):
            workers = min(inner.workers, max(len(items), 1))
            return workers, workers > 1 or forced
        if isinstance(inner, LockstepBackend) and not forced:
            self._run_lockstep(
                inner, fn, tracked, drain, results, progress, done_box
            )
            return 1, False
        if isinstance(inner, AutoBackend):
            if not forced:
                candidate = inner.lockstep_candidate(
                    fn, [t.payload for t in tracked]
                )
                if candidate is not None:
                    return self._race_lockstep(
                        candidate, inner, fn, tracked, drain, results,
                        progress, done_box,
                    )
            head, use_pool, workers = inner.probe(
                fn,
                items,
                runner=lambda item, position: self._run_one_inline(
                    fn, tracked[position], drain, results, progress, done_box
                ),
            )
            return workers, use_pool or forced
        # Serial (or unknown) inner: inline unless preemption forces a
        # process boundary.
        return 1, forced

    # -- lockstep execution --------------------------------------------

    def _race_lockstep(
        self, backend, inner, fn, tracked, drain, results, progress, done_box
    ) -> Tuple[int, bool]:
        """Auto's lockstep race under supervision; ``(workers, use_pool)``.

        The first payloads run serial and the next group runs on one
        shared wheel — both timed, both completed through supervisor
        bookkeeping, so nothing is wasted.  The remainder goes to
        whichever paced faster (lockstep groups here; serial or a
        projected pool via the returned mode otherwise).
        """
        clock = inner._clock
        start = clock()
        for item in tracked[: inner.PROBE_ITEMS]:
            self._run_one_inline(fn, item, drain, results, progress, done_box)
        serial_s = clock() - start
        if drain.tripped:
            return 1, False
        group = tracked[
            inner.PROBE_ITEMS : inner.PROBE_ITEMS + inner.LOCKSTEP_PROBE_ITEMS
        ]
        start = clock()
        for item in group:
            item.executions += 1
        outcomes = backend.run_group(fn, [item.payload for item in group])
        for item, outcome in zip(group, outcomes):
            self._complete(item, outcome, results, progress, done_box)
        lockstep_s = clock() - start
        serial_rate = serial_s / inner.PROBE_ITEMS
        lockstep_rate = lockstep_s / len(group)
        rest = tracked[inner.PROBE_ITEMS + inner.LOCKSTEP_PROBE_ITEMS :]
        if inner.decide_lockstep(serial_rate, lockstep_rate, len(tracked)):
            for chunk_start in range(0, len(rest), backend.group_size):
                if drain.tripped:
                    return 1, False
                chunk = rest[chunk_start : chunk_start + backend.group_size]
                for item in chunk:
                    item.executions += 1
                outcomes = backend.run_group(
                    fn, [item.payload for item in chunk]
                )
                for item, outcome in zip(chunk, outcomes):
                    self._complete(item, outcome, results, progress, done_box)
            return 1, False
        use_pool, workers = inner.project_pool(
            serial_rate, len(rest), len(tracked)
        )
        return workers, use_pool

    def _run_lockstep(
        self, backend, fn, tracked, drain, results, progress, done_box
    ) -> None:
        """Drive a lockstep plan group by group under supervision.

        Groups are atomic (one shared simulator each); the drain flag
        is honoured between groups and before each ineligible single,
        and every outcome flows through :meth:`_complete` so
        supervisor-level failure merging and progress stay uniform.
        A plan that does not apply (ambient watchdog appeared, foreign
        ``fn``) degrades to the ordinary inline loop.
        """
        plan = backend.plan(fn, [t.payload for t in tracked])
        if plan is None:
            self._run_inline(fn, tracked, drain, results, progress, done_box)
            return
        chunks, singles = plan
        for chunk in chunks:
            if drain.tripped:
                return
            group = [tracked[position] for position in chunk]
            for item in group:
                item.executions += 1
            outcomes = backend.run_group(fn, [item.payload for item in group])
            for item, outcome in zip(group, outcomes):
                self._complete(item, outcome, results, progress, done_box)
        for position in singles:
            if drain.tripped:
                return
            self._run_one_inline(
                fn, tracked[position], drain, results, progress, done_box
            )

    # -- inline execution ----------------------------------------------

    def _run_one_inline(
        self, fn, tracked: _Tracked, drain, results, progress, done_box
    ) -> Optional[FlowOutcome]:
        if drain.tripped:
            return None
        tracked.executions += 1
        outcome = fn(tracked.payload)
        self._complete(tracked, outcome, results, progress, done_box)
        return outcome

    def _run_inline(self, fn, remaining, drain, results, progress, done_box):
        for tracked in remaining:
            if drain.tripped:
                break
            self._run_one_inline(fn, tracked, drain, results, progress, done_box)

    # -- pooled execution ----------------------------------------------

    def _run_pooled(
        self, fn, remaining, workers, drain, results, progress, done_box
    ) -> None:
        policy = self.policy
        self._isolation_fn = fn
        restarts = [0]
        pending = deque(remaining)
        pool: Optional[ProcessPoolExecutor] = None
        inflight: Dict[object, _Tracked] = {}
        order: Dict[object, int] = {}
        submitted = 0
        try:
            while pending or inflight:
                if drain.tripped:
                    self._drain_inflight(
                        pool, inflight, results, progress, done_box
                    )
                    pool = None
                    return  # pending never ran: map() marks them skipped
                if pool is None:
                    pool = self._fresh_pool(min(workers, max(len(pending), 1)))
                submit_broke = False
                while pending and len(inflight) < workers:
                    tracked = pending.popleft()
                    action = self._action_for(tracked.payload, tracked.executions)
                    tracked.executions += 1
                    tracked.started = time.monotonic()
                    try:
                        future = pool.submit(
                            _supervised_call, fn, tracked.payload, action
                        )
                    except BrokenProcessPool:
                        # The pool broke between waits (a worker died
                        # while idle, or its break was detected late).
                        # This payload never ran: roll it back and let
                        # the crash path below sort out the in-flight.
                        tracked.executions -= 1
                        pending.appendleft(tracked)
                        submit_broke = True
                        break
                    inflight[future] = tracked
                    order[future] = submitted
                    submitted += 1
                if submit_broke and not inflight:
                    # Nothing was in flight, so nobody is a suspect:
                    # the pool just needs rebuilding (budget applies).
                    restarts[0] += 1
                    self._kill_pool(pool)
                    pool = None
                    if restarts[0] > self.policy.max_worker_restarts:
                        self._give_up_all(
                            [], pending, "worker-restart budget exhausted",
                            results, progress, done_box,
                        )
                    continue
                done, _ = wait(
                    list(inflight),
                    timeout=self._wait_timeout(inflight, drain),
                    return_when=FIRST_COMPLETED,
                )
                crashed: List[_Tracked] = []
                for future in sorted(done, key=order.__getitem__):
                    tracked = inflight.pop(future)
                    order.pop(future, None)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        crashed.append(tracked)
                    except BaseException as error:  # worker-side raise
                        self._record_worker_error(
                            tracked, error, pending, results, progress, done_box
                        )
                    else:
                        self._complete(
                            tracked, outcome, results, progress, done_box
                        )
                if crashed:
                    bystanders = sorted(
                        inflight.values(), key=lambda t: t.position
                    )
                    inflight.clear()
                    order.clear()
                    self._kill_pool(pool)
                    pool = None
                    self._handle_crash(
                        crashed, bystanders, workers, restarts, pending,
                        results, progress, done_box,
                    )
                    continue
                if policy.deadline_s is not None and inflight:
                    now = time.monotonic()
                    overdue = [
                        tracked
                        for tracked in inflight.values()
                        if now - tracked.started > policy.deadline_s
                    ]
                    if overdue:
                        bystanders = [
                            tracked
                            for tracked in inflight.values()
                            if tracked not in overdue
                        ]
                        inflight.clear()
                        order.clear()
                        self._kill_pool(pool)
                        pool = None
                        self._handle_deadline(
                            overdue, bystanders, restarts, pending,
                            results, progress, done_box,
                        )
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _wait_timeout(self, inflight: Dict[object, _Tracked], drain) -> float:
        """How long one future-wait may block.

        Short enough to notice drain flags and deadlines promptly; a
        pure wall-clock concern, invisible in results.
        """
        timeout = self.POLL_S
        if self.policy.deadline_s is not None:
            now = time.monotonic()
            nearest = min(
                tracked.started + self.policy.deadline_s - now
                for tracked in inflight.values()
            )
            timeout = min(timeout, max(nearest, 0.0))
        return timeout

    # -- failure handling ----------------------------------------------

    def _handle_crash(
        self, crashed, bystanders, workers, restarts, pending,
        results, progress, done_box,
    ) -> None:
        """A pool break: isolate the killer(s), re-run the innocent.

        With one worker the single in-flight payload *is* the killer.
        With several, nobody knows whose worker died — every broken
        execution is rolled back (the execution index is not consumed)
        and the suspects are re-run through an ordered one-worker
        isolation probe, where the first break identifies a killer
        exactly.  Bystanders re-run with no failure record.
        """
        restarts[0] += 1
        suspects = sorted(crashed + list(bystanders), key=lambda t: t.position)
        if restarts[0] > self.policy.max_worker_restarts:
            self._give_up_all(
                suspects, pending, "worker-restart budget exhausted",
                results, progress, done_box,
            )
            return
        if len(suspects) == 1:
            self._record_crash(
                suspects[0], pending, results, progress, done_box
            )
            return
        for tracked in suspects:
            tracked.executions -= 1  # aborted: the execution never counted
        print(
            f"supervise: worker died; isolating the killer among "
            f"{len(suspects)} in-flight flows",
            file=sys.stderr,
            flush=True,
        )
        for tracked in reversed(suspects):
            pending.appendleft(tracked)
        # The isolation probe is simply the same loop at workers=1: the
        # re-queued suspects run in order, and the next break has
        # exactly one in-flight payload — the killer.  (Flows queued
        # behind them are unaffected: they execute after isolation,
        # wherever the pool is by then.)
        # Switching the whole remainder to one worker would serialise
        # the campaign, so only the suspects are probed: they sit at
        # the queue front, and we momentarily cap submission.
        self._isolate(suspects, pending, restarts, results, progress, done_box)

    def _isolate(
        self, suspects, pending, restarts, results, progress, done_box
    ) -> None:
        """Ordered one-worker probe over the suspect list.

        Runs the suspects (currently at the front of ``pending``)
        through dedicated single-worker pools until none of them is
        left; each break identifies the first unfinished suspect as a
        killer.  Deadlines still apply — a suspect that *hangs* rather
        than crashes is preempted here too.
        """
        suspect_set = {id(t) for t in suspects}
        probe = deque()
        while pending and id(pending[0]) in suspect_set:
            probe.append(pending.popleft())
        fn = self._isolation_fn
        while probe:
            tracked = probe.popleft()
            if restarts[0] > self.policy.max_worker_restarts:
                self._give_up_all(
                    [tracked], probe, "worker-restart budget exhausted",
                    results, progress, done_box,
                )
                continue
            self._probe_one(
                fn, tracked, restarts, probe, results, progress, done_box
            )

    #: set by map() so isolation probes reuse the same mapped function
    _isolation_fn: Optional[Callable] = None

    def _probe_one(
        self, fn, tracked, restarts, requeue, results, progress, done_box
    ) -> bool:
        """Run one suspect alone in a fresh single-worker pool."""
        pool = self._fresh_pool(1)
        action = self._action_for(tracked.payload, tracked.executions)
        tracked.executions += 1
        tracked.started = time.monotonic()
        future = pool.submit(_supervised_call, fn, tracked.payload, action)
        deadline = self.policy.deadline_s
        try:
            while True:
                done, _ = wait([future], timeout=self.POLL_S)
                if done:
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        restarts[0] += 1
                        self._kill_pool(pool)
                        self._record_crash(
                            tracked, requeue, results, progress, done_box
                        )
                        return False
                    except BaseException as error:
                        self._record_worker_error(
                            tracked, error, requeue, results, progress, done_box
                        )
                        return False
                    else:
                        self._complete(
                            tracked, outcome, results, progress, done_box
                        )
                        return True
                if (
                    deadline is not None
                    and time.monotonic() - tracked.started > deadline
                ):
                    restarts[0] += 1
                    self._kill_pool(pool)
                    self._record_deadline(
                        tracked, requeue, results, progress, done_box
                    )
                    return False
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _handle_deadline(
        self, overdue, bystanders, restarts, pending,
        results, progress, done_box,
    ) -> None:
        """Preempt hung flows; re-run the innocent without a record."""
        restarts[0] += 1
        if restarts[0] > self.policy.max_worker_restarts:
            self._give_up_all(
                sorted(overdue + bystanders, key=lambda t: t.position),
                pending, "worker-restart budget exhausted",
                results, progress, done_box,
            )
            return
        for tracked in sorted(bystanders, key=lambda t: t.position, reverse=True):
            tracked.executions -= 1  # aborted, not failed
            pending.appendleft(tracked)
        for tracked in sorted(overdue, key=lambda t: t.position):
            self._record_deadline(tracked, pending, results, progress, done_box)

    def _record_crash(
        self, tracked, requeue, results, progress, done_box
    ) -> None:
        spec = tracked.spec
        tracked.failures.append(
            FlowFailure(
                flow_id=spec.flow_id,
                attempt=tracked.executions - 1,
                seed=spec.seed,
                error_type="WorkerCrashError",
                error=(
                    "worker process died while running this flow "
                    f"(exit status {_CRASH_EXIT_STATUS} or signal); "
                    "pool rebuilt"
                ),
                failure_class="worker_crash",
            )
        )
        print(
            f"supervise: worker crashed on {spec.flow_id!r} "
            f"(execution {tracked.executions - 1}); pool rebuilt",
            file=sys.stderr,
            flush=True,
        )
        self._retry_or_give_up(tracked, requeue, results, progress, done_box)

    def _record_deadline(
        self, tracked, requeue, results, progress, done_box
    ) -> None:
        spec = tracked.spec
        deadline = self.policy.deadline_s
        tracked.failures.append(
            FlowFailure(
                flow_id=spec.flow_id,
                attempt=tracked.executions - 1,
                seed=spec.seed,
                error_type="DeadlineExceededError",
                error=(
                    f"flow exceeded its {deadline:g}s wall-clock deadline; "
                    "worker killed"
                ),
                failure_class="deadline",
            )
        )
        print(
            f"supervise: {spec.flow_id!r} exceeded its {deadline:g}s "
            f"deadline (execution {tracked.executions - 1}); worker killed",
            file=sys.stderr,
            flush=True,
        )
        self._retry_or_give_up(tracked, requeue, results, progress, done_box)

    def _record_worker_error(
        self, tracked, error, requeue, results, progress, done_box
    ) -> None:
        """A worker-side exception that escaped the payload's own retry
        loop (injected chaos, pickling trouble): taxonomy applies."""
        spec = tracked.spec
        failure_class = tracked.retry_policy.classify(error)
        tracked.failures.append(
            FlowFailure(
                flow_id=spec.flow_id,
                attempt=tracked.executions - 1,
                seed=spec.seed,
                error_type=type(error).__name__,
                error=str(error),
                failure_class=failure_class,
            )
        )
        if failure_class == "deterministic":
            self._give_up(
                tracked,
                f"deterministic failure: {type(error).__name__}: {error}",
                results, progress, done_box,
            )
            return
        self._retry_or_give_up(tracked, requeue, results, progress, done_box)

    def _retry_or_give_up(
        self, tracked, requeue, results, progress, done_box
    ) -> None:
        budget = tracked.retry_policy.max_attempts
        if len(tracked.failures) >= budget:
            last = tracked.failures[-1]
            self._give_up(
                tracked,
                (
                    f"supervisor gave up after {len(tracked.failures)} "
                    f"failed executions; last: {last.error_type}: {last.error}"
                ),
                results, progress, done_box,
            )
            return
        requeue.appendleft(tracked)

    def _give_up(self, tracked, reason, results, progress, done_box) -> None:
        spec = tracked.spec
        outcome = FlowOutcome(
            index=tracked.payload[0],
            spec=spec,
            result=None,
            trace=None,
            failures=list(tracked.failures),
            quarantine=QuarantineRecord(
                flow_id=spec.flow_id, seed=spec.seed, reason=reason
            ),
            attempts=max(len(tracked.failures), 1),
        )
        tracked.failures = []  # already on the outcome; don't double-merge
        self._complete(tracked, outcome, results, progress, done_box)

    def _give_up_all(
        self, suspects, pending, reason, results, progress, done_box
    ) -> None:
        print(
            f"supervise: {reason} "
            f"(max_worker_restarts={self.policy.max_worker_restarts}); "
            f"quarantining the {len(suspects) + len(pending)} unfinished flows",
            file=sys.stderr,
            flush=True,
        )
        for tracked in list(suspects) + list(pending):
            self._give_up(tracked, reason, results, progress, done_box)
        pending.clear()

    # -- completion ----------------------------------------------------

    def _complete(self, tracked, outcome, results, progress, done_box) -> None:
        """Merge supervisor-level failures into the outcome and file it."""
        if tracked.failures:
            outcome.failures = list(tracked.failures) + list(outcome.failures)
            outcome.attempts += len(tracked.failures)
        if outcome.result is not None and isinstance(
            outcome.result.telemetry, CountingTelemetry
        ):
            telemetry = outcome.result.telemetry
            telemetry.worker_crashes = sum(
                1 for f in outcome.failures if f.failure_class == "worker_crash"
            )
            telemetry.deadline_preemptions = sum(
                1 for f in outcome.failures if f.failure_class == "deadline"
            )
        results[tracked.position] = outcome
        done_box[0] += 1
        if progress is not None:
            progress(done_box[0])

    @staticmethod
    def _skipped_outcome(position: int, payload: Tuple) -> FlowOutcome:
        index, spec, _policy = payload
        return FlowOutcome(
            index=index,
            spec=spec,
            result=None,
            trace=None,
            attempts=0,
            skipped=True,
        )

    # -- pool plumbing -------------------------------------------------

    @staticmethod
    def _fresh_pool(workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max(workers, 1), mp_context=get_context("spawn")
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate a pool's workers outright (hung or broken pool).

        ``shutdown`` alone waits politely forever on a wedged worker;
        the process handles are reached through the executor's private
        table because the public API deliberately has no kill switch.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead races
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _drain_inflight(
        self, pool, inflight, results, progress, done_box
    ) -> None:
        """Signal drain: give in-flight flows ``grace_s``, then kill."""
        if not inflight:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            return
        done, not_done = wait(list(inflight), timeout=self.policy.grace_s)
        for future in done:
            tracked = inflight.pop(future)
            try:
                outcome = future.result()
            except BaseException:
                tracked.executions -= 1  # lost to the drain, not failed
            else:
                self._complete(tracked, outcome, results, progress, done_box)
        for future in not_done:
            tracked = inflight.pop(future)
            tracked.executions -= 1  # preempted by the drain, not failed
        if pool is not None:
            if not_done:
                self._kill_pool(pool)
            else:
                pool.shutdown(wait=False, cancel_futures=True)
