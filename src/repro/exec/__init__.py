"""repro.exec: the unified flow-execution pipeline.

Describe a run as a :class:`FlowSpec`, hand batches to an
:class:`Executor` (serial, process-pool, or auto — byte-identical any way),
or run one spec with :func:`simulate_spec`.  See the README's
architecture section for how campaigns, experiments, and MPTCP flows
all route through here.
"""

from repro.exec.executor import (
    AutoBackend,
    ExecutionResult,
    Executor,
    FlowOutcome,
    ProcessPoolBackend,
    SerialBackend,
    simulate_spec,
)
from repro.exec.spec import FlowSpec, ResolvedFlow

__all__ = [
    "AutoBackend",
    "ExecutionResult",
    "Executor",
    "FlowOutcome",
    "FlowSpec",
    "ProcessPoolBackend",
    "ResolvedFlow",
    "SerialBackend",
    "simulate_spec",
]
