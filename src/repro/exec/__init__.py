"""repro.exec: the unified flow-execution pipeline.

Describe a run as a :class:`FlowSpec`, hand batches to an
:class:`Executor` (serial, process-pool, or auto — byte-identical any way),
or run one spec with :func:`simulate_spec`.  Every run is wrapped in
the :mod:`~repro.exec.supervise` layer (worker-crash recovery,
parent-enforced deadlines, graceful signal drain), and
:mod:`~repro.exec.chaos` injects fabric faults to test it.  See the
README's architecture section for how campaigns, experiments, and
MPTCP flows all route through here.
"""

from repro.exec.chaos import ChaosBackend, ChaosPlan
from repro.exec.executor import (
    AutoBackend,
    ExecutionResult,
    Executor,
    FlowOutcome,
    LockstepBackend,
    ProcessPoolBackend,
    SerialBackend,
    simulate_spec,
)
from repro.exec.spec import FlowSpec, ResolvedFlow
from repro.exec.supervise import (
    SupervisedBackend,
    SupervisorPolicy,
    clear_interrupt,
    current_supervisor_policy,
    interrupt_signal,
    supervise_scope,
)

__all__ = [
    "AutoBackend",
    "ChaosBackend",
    "ChaosPlan",
    "ExecutionResult",
    "Executor",
    "FlowOutcome",
    "FlowSpec",
    "LockstepBackend",
    "ProcessPoolBackend",
    "ResolvedFlow",
    "SerialBackend",
    "SupervisedBackend",
    "SupervisorPolicy",
    "clear_interrupt",
    "current_supervisor_policy",
    "interrupt_signal",
    "simulate_spec",
    "supervise_scope",
]
