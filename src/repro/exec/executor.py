"""Executing FlowSpec batches: serial or multi-process, byte-identical.

This is the single funnel every campaign and sweep goes through.  The
:class:`Executor` takes a list of :class:`~repro.exec.spec.FlowSpec`,
runs each with the resilient attempt loop (retry with deterministically
reseeded attempts, quarantine on exhaustion), and assembles a
:class:`~repro.robustness.campaign.CampaignReport` **in spec order** —
so a 4-worker run produces the same traces and the same report bytes as
a serial run of the same batch.

Backends:

* :class:`SerialBackend` — a list comprehension; zero overhead, the
  default.
* :class:`ProcessPoolBackend` — a spawn-context process pool.  Specs
  are self-contained and picklable, and every random stream is derived
  from the spec's own seed, so moving a flow to another process cannot
  change its bytes.  Payloads are submitted in chunks so a batch of
  hundreds of specs costs a handful of pickling round-trips per worker
  rather than one per spec.
* :class:`AutoBackend` — runs a short serial probe, projects the cost
  of finishing serially vs paying the pool's spawn overhead, and picks
  whichever is faster.  Because the probe's results are kept and order
  is preserved, the outcome bytes are identical to a serial run either
  way; only wall-clock changes.  On a single-CPU host it always stays
  serial, so ``auto`` is never slower than serial.

Ambient state (the watchdog installed by ``watchdog_scope``) lives in a
ContextVar, which does **not** propagate to spawned workers; the
executor therefore bakes the ambient watchdog into each spec at submit
time, before anything crosses a process boundary.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exec.spec import FlowSpec
from repro.robustness.campaign import (
    CampaignReport,
    FlowFailure,
    QuarantineRecord,
    RetryPolicy,
)
from repro.robustness.watchdog import current_watchdog
from repro.simulator.connection import FlowHarness, FlowResult, run_flow
from repro.simulator.lockstep import run_lockstep
from repro.telemetry.campaign import CampaignTelemetry
from repro.telemetry.counters import CountingTelemetry
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.scope import current_telemetry_config
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    # repro.traces imports repro.exec (the generator runs on the
    # executor); capture is therefore imported lazily at run time.
    from repro.traces.events import FlowTrace

__all__ = [
    "AutoBackend",
    "ExecutionResult",
    "Executor",
    "FlowOutcome",
    "LockstepBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "simulate_spec",
]


def simulate_spec(spec: FlowSpec) -> Tuple[FlowResult, Optional["FlowTrace"]]:
    """Run one spec exactly once — no retries, no report.

    Returns ``(result, trace)``; the trace is None unless the spec
    carries metadata.  This is the primitive the executor's attempt
    loop calls, and the right entry point for single-flow experiment
    code that wants a spec's semantics without campaign bookkeeping.
    """
    resolved = spec.resolve()
    result = run_flow(
        resolved.config,
        resolved.data_loss,
        resolved.ack_loss,
        seed=spec.seed,
        redundant_data_loss=resolved.redundant_data_loss,
        variant=spec.cc,
        cc_params=spec.cc_params,
        bottleneck_rate=spec.bottleneck_rate,
        bottleneck_buffer=spec.bottleneck_buffer,
        watchdog=spec.watchdog,
        telemetry=CountingTelemetry() if spec.telemetry else None,
    )
    trace: Optional["FlowTrace"] = None
    if spec.metadata is not None:
        from repro.traces.capture import capture_flow

        trace = capture_flow(result, spec.metadata, validate=spec.validate)
    return result, trace


@dataclass
class FlowOutcome:
    """What happened to one spec: a result or a quarantine, plus the
    failure records accumulated along the way."""

    index: int
    spec: FlowSpec
    result: Optional[FlowResult]
    trace: Optional["FlowTrace"]
    failures: List[FlowFailure] = field(default_factory=list)
    quarantine: Optional[QuarantineRecord] = None
    attempts: int = 1
    #: how a cached run obtained this outcome: "hit" (served from the
    #: result store), "miss" (computed fresh), "corrupt" (recomputed
    #: after quarantining a damaged entry), "error" (ran uncached
    #: because the store was failing), or None (no store in play)
    cache_state: Optional[str] = None
    #: True for a placeholder emitted by a signal drain: the spec never
    #: ran this campaign and is excluded from report accounting (the
    #: report is marked ``interrupted`` instead)
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.quarantine is None


def _execute_payload(
    payload: Tuple[int, FlowSpec, RetryPolicy],
) -> FlowOutcome:
    """The per-flow attempt loop; module-level so backends can pickle it.

    Failure accounting mirrors the campaign contract: every attempt's
    exception becomes a :class:`FlowFailure` carrying the exact seed
    that reproduces it, and a flow that exhausts its budget becomes a
    :class:`QuarantineRecord` keyed by its base seed.

    The loop is taxonomy-aware
    (:data:`~repro.robustness.campaign.FAILURE_CLASSES`): a failure the
    policy classifies as ``deterministic`` (same spec, same crash —
    e.g. :class:`~repro.util.errors.ConfigurationError`) quarantines on
    attempt 0 instead of burning the retry budget, and retried attempts
    honour the policy's deterministic exponential backoff.
    """
    index, spec, policy = payload
    failures: List[FlowFailure] = []
    last_error = "unknown"
    for attempt in range(policy.max_attempts):
        seed = policy.seed_for_attempt(spec.seed, attempt)
        attempt_spec = spec if attempt == 0 else spec.for_attempt(seed)
        if attempt > 0:
            delay = policy.backoff_for_attempt(spec.seed, attempt)
            if delay > 0.0:
                time.sleep(delay)
        try:
            result, trace = simulate_spec(attempt_spec)
        except Exception as error:  # per-flow isolation: record, retry
            failure_class = policy.classify(error)
            last_error = f"{type(error).__name__}: {error}"
            failures.append(
                FlowFailure(
                    flow_id=spec.flow_id,
                    attempt=attempt,
                    seed=seed,
                    error_type=type(error).__name__,
                    error=str(error),
                    failure_class=failure_class,
                )
            )
            if not policy.retries(failure_class):
                return FlowOutcome(
                    index=index,
                    spec=spec,
                    result=None,
                    trace=None,
                    failures=failures,
                    quarantine=QuarantineRecord(
                        flow_id=spec.flow_id,
                        seed=spec.seed,
                        reason=(
                            f"deterministic failure on attempt {attempt}; "
                            f"not retried: {last_error}"
                        ),
                    ),
                    attempts=attempt + 1,
                )
        else:
            return FlowOutcome(
                index=index,
                spec=spec,
                result=result,
                trace=trace,
                failures=failures,
                attempts=attempt + 1,
            )
    return FlowOutcome(
        index=index,
        spec=spec,
        result=None,
        trace=None,
        failures=failures,
        quarantine=QuarantineRecord(
            flow_id=spec.flow_id,
            seed=spec.seed,
            reason=(
                f"all {policy.max_attempts} attempts failed; last: {last_error}"
            ),
        ),
        attempts=policy.max_attempts,
    )


class SerialBackend:
    """Run payloads in the calling process, in order."""

    name = "serial"

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        if progress is None:
            return [fn(item) for item in items]
        results: List = []
        for done, item in enumerate(items, start=1):
            results.append(fn(item))
            progress(done)
        return results


class ProcessPoolBackend:
    """Run payloads across ``workers`` spawned processes.

    The spawn start method is used unconditionally (fork would share
    lazily-initialised interpreter state and is unavailable on some
    platforms); payloads are submitted in chunks so pickling overhead
    is amortised over many specs per round-trip.  Order is preserved —
    ``pool.map`` yields results in submission order — which is what
    makes parallel reports byte-identical to serial ones.

    ``workers`` defaults to ``os.cpu_count()``: spawning more workers
    than cores is pure oversubscription for this CPU-bound workload
    (it is how the original 4-worker default produced a 0.37× "speedup"
    on a 1-CPU host).  An explicit ``workers`` value is honoured as
    given — determinism tests deliberately run multi-worker pools on
    single-CPU machines.
    """

    name = "process-pool"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return SerialBackend().map(fn, items, progress)
        chunksize = max(1, len(items) // (self.workers * 4))
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)),
            mp_context=get_context("spawn"),
        )
        # Not a ``with`` block: __exit__ is shutdown(wait=True), which
        # on KeyboardInterrupt would block on in-flight futures and
        # leave pending ones queued — orphaning spawn workers past the
        # parent's death.  Cancelling in a finally tears down promptly
        # on *any* exit; ``completed`` keeps the happy path's clean
        # blocking join.
        completed = False
        try:
            # pool.map yields in submission order, so incremental
            # progress is monotone even when workers finish out of order.
            results = []
            for result in pool.map(fn, items, chunksize=chunksize):
                results.append(result)
                if progress is not None:
                    progress(len(results))
            completed = True
            return results
        finally:
            pool.shutdown(wait=completed, cancel_futures=True)


class LockstepBackend:
    """Run FlowSpec batches as shared-wheel lockstep groups.

    Instead of one ``Simulator`` per flow, eligible specs are grouped
    by their effective duration and each group is wired — via
    :class:`~repro.simulator.connection.FlowHarness` — onto **one**
    shared simulator that :func:`~repro.simulator.lockstep.run_lockstep`
    advances in a single event loop.  Flows share no state, so every
    :class:`FlowOutcome` is byte-identical to a serial run of the same
    batch; what changes is wall-clock (one heap, one run loop, no
    per-flow setup/teardown) and that it needs no worker processes.

    A spec is eligible when nothing about it is a per-simulator
    concern: no per-spec watchdog, no telemetry collection, and no
    ambient watchdog installed at map time (budgets and counters
    cannot be attributed to one flow of a shared wheel).  Ineligible
    specs — and any group that raises — fall back to the ordinary
    per-item attempt loop, so semantics (retries, quarantine,
    deterministic-failure taxonomy) are never weakened, only the
    happy path is batched.
    """

    name = "lockstep"

    #: flows wired onto one shared simulator per run.  Bounds the heap
    #: (every flow's pending timers and tombstones share it), keeps the
    #: group's working set cache-resident, and keeps a mid-group
    #: failure's recompute cost proportionate — measured on a 51-flow
    #: campaign, per-flow cost rises monotonically with group size, so
    #: small groups are the right default.
    GROUP_SIZE = 16

    def __init__(self, group_size: Optional[int] = None) -> None:
        size = self.GROUP_SIZE if group_size is None else group_size
        if size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {size}")
        self.group_size = size

    @staticmethod
    def eligible(spec: FlowSpec) -> bool:
        """Whether this spec can share a simulator with other flows."""
        return spec.watchdog is None and not spec.telemetry

    def plan(
        self, fn: Callable, items: Sequence
    ) -> Optional[Tuple[List[List[int]], List[int]]]:
        """``(group_chunks, singles)`` over payload positions, or None.

        None means lockstep does not apply to this map at all (not the
        executor's payload protocol, or an ambient watchdog is
        installed); the caller should run the batch as serial.  Group
        chunks hold positions of eligible specs, grouped by effective
        duration in first-seen order and split at :attr:`group_size`;
        ``singles`` holds the ineligible positions, run per-item.
        """
        if fn is not _execute_payload or not items:
            return None
        if current_watchdog() is not None:
            return None
        by_duration: dict = {}
        singles: List[int] = []
        for position, payload in enumerate(items):
            spec = payload[1]
            if self.eligible(spec):
                by_duration.setdefault(spec.effective_duration, []).append(position)
            else:
                singles.append(position)
        chunks: List[List[int]] = []
        for positions in by_duration.values():
            for start in range(0, len(positions), self.group_size):
                chunks.append(positions[start : start + self.group_size])
        return chunks, singles

    def run_group(self, fn: Callable, payloads: Sequence[Tuple]) -> List[FlowOutcome]:
        """One lockstep group, falling back to per-item on any failure.

        A failure anywhere in the group — a bad spec at resolve time,
        an exception from a flow callback mid-run — discards the whole
        shared simulator (partial per-flow state must never leak into
        results) and re-runs every payload through ``fn``, which is the
        full attempt loop: the failing spec gets its proper retries and
        quarantine, its groupmates recompute fresh and byte-identically.
        """
        try:
            return self._lockstep_group(payloads)
        except Exception:
            return [fn(payload) for payload in payloads]

    @staticmethod
    def _lockstep_group(payloads: Sequence[Tuple]) -> List[FlowOutcome]:
        duration = payloads[0][1].effective_duration
        setups = []
        for _index, spec, _policy in payloads:
            resolved = spec.resolve()

            def setup(sim, spec=spec, resolved=resolved):
                return FlowHarness(
                    resolved.config,
                    simulator=sim,
                    data_loss=resolved.data_loss,
                    ack_loss=resolved.ack_loss,
                    seed=spec.seed,
                    redundant_data_loss=resolved.redundant_data_loss,
                    variant=spec.cc,
                    cc_params=spec.cc_params,
                    bottleneck_rate=spec.bottleneck_rate,
                    bottleneck_buffer=spec.bottleneck_buffer,
                )

            setups.append(setup)
        flow_results = run_lockstep(setups, duration)
        outcomes: List[FlowOutcome] = []
        for (index, spec, _policy), result in zip(payloads, flow_results):
            trace: Optional["FlowTrace"] = None
            if spec.metadata is not None:
                from repro.traces.capture import capture_flow

                trace = capture_flow(result, spec.metadata, validate=spec.validate)
            outcomes.append(
                FlowOutcome(index=index, spec=spec, result=result, trace=trace)
            )
        return outcomes

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        items = list(items)
        plan = self.plan(fn, items)
        if plan is None:
            return SerialBackend().map(fn, items, progress)
        chunks, singles = plan
        results: List = [None] * len(items)
        done = 0
        for chunk in chunks:
            outcomes = self.run_group(fn, [items[position] for position in chunk])
            for position, outcome in zip(chunk, outcomes):
                results[position] = outcome
            done += len(chunk)
            if progress is not None:
                progress(done)
        for position in singles:
            results[position] = fn(items[position])
            done += 1
            if progress is not None:
                progress(done)
        return results


class AutoBackend:
    """Measure a short serial probe, then pick serial vs pool.

    The first :data:`PROBE_ITEMS` payloads always run serially and
    their results are kept; the measured per-item cost projects the
    serial finish time for the remainder, which is compared against a
    conservative estimate of the pool path (spawn + per-worker startup,
    amortised execution).  Only when the pool projects a real win does
    the remainder fan out.

    The decision changes wall-clock only, never bytes: payload order is
    preserved and every payload is a pure function of its spec, so the
    assembled outcome list is identical in both modes.  The last
    decision (mode, probe timing, projections) is kept on
    :attr:`last_decision` for benchmarks and reports.
    """

    name = "auto"

    #: payloads run serially to estimate per-item cost
    PROBE_ITEMS = 2
    #: payloads run as one shared-wheel group to pace lockstep
    LOCKSTEP_PROBE_ITEMS = 4
    #: smallest homogeneous batch worth considering a shared event wheel
    LOCKSTEP_MIN_ITEMS = 8
    #: flat cost of standing up a spawn pool (interpreter + imports)
    SPAWN_BASELINE_S = 0.8
    #: additional cost per spawned worker
    SPAWN_PER_WORKER_S = 0.4

    def __init__(
        self, workers: Optional[int] = None, clock: Optional[Callable] = None
    ) -> None:
        cpus = os.cpu_count() or 1
        if workers is None:
            workers = cpus
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.last_decision: Optional[dict] = None
        #: measured rates from the latest lockstep race, folded into
        #: whichever decision record is written afterwards
        self._probe_rates: dict = {}
        #: timing source for the probes; injectable so tests can force
        #: either side of a timing-based decision deterministically
        self._clock = clock if clock is not None else time.perf_counter

    def lockstep_candidate(
        self, fn: Callable, items: Sequence
    ) -> Optional["LockstepBackend"]:
        """A :class:`LockstepBackend` when the batch *could* run
        lockstep — one homogeneous workload, every payload eligible,
        one shared duration; None otherwise.

        This is the static half of the decision.  Whether lockstep is
        actually *used* is measured, not assumed: the caller races the
        first payloads serial-vs-shared-wheel (keeping both sets of
        results — payloads are pure, so nothing is wasted) and commits
        the remainder to whichever paced faster via
        :meth:`decide_lockstep`.  A mixed batch returns None because it
        would run part lockstep, part serial, and the serial-vs-pool
        projection handles that case better.
        """
        if len(items) < self.LOCKSTEP_MIN_ITEMS:
            return None
        backend = LockstepBackend()
        plan = backend.plan(fn, items)
        if plan is None:
            return None
        chunks, singles = plan
        if singles:
            return None
        durations = {items[chunk[0]][1].effective_duration for chunk in chunks}
        if len(durations) != 1:
            return None
        return backend

    def decide_lockstep(
        self, serial_rate: float, lockstep_rate: float, total_items: int
    ) -> bool:
        """Commit to lockstep iff its measured per-flow pace beat serial.

        On a host where the shared heap's log factor and cache
        pressure eat the amortised per-flow setup — typical for
        CPython on one CPU — this keeps auto on the serial path,
        preserving its never-worse-than-serial contract.  Records the
        decision (with both measured rates) on :attr:`last_decision`;
        a False return leaves the final mode to the serial-vs-pool
        projection, which folds the rates into its own record.
        """
        self._probe_rates = {
            "serial_probe_s_per_flow": round(serial_rate, 6),
            "lockstep_probe_s_per_flow": round(lockstep_rate, 6),
        }
        if lockstep_rate >= serial_rate:
            return False
        self.last_decision = {
            "mode": "lockstep",
            "reason": (
                f"homogeneous batch of {total_items} eligible flows; probe "
                f"{lockstep_rate:.4f}s/flow beat serial "
                f"{serial_rate:.4f}s/flow on a shared event wheel"
            ),
            "items": total_items,
            "cpu_count": os.cpu_count() or 1,
            "workers": 1,
            **self._probe_rates,
        }
        return True

    def project_pool(
        self, per_item_s: float, remainder: int, total_items: int
    ) -> Tuple[bool, int]:
        """(use_pool, workers) for ``remainder`` items from a measured
        serial rate — the same projection :meth:`probe` applies, reused
        when the rate is already known (the lockstep race measured it)
        so no extra payloads need to run.  Records the decision.
        """
        cpus = os.cpu_count() or 1
        effective = min(self.workers, cpus, max(remainder, 1))
        rates = getattr(self, "_probe_rates", {})
        if effective < 2 or remainder < 2:
            self.last_decision = {
                "mode": "serial",
                "reason": "single CPU or batch too small to amortise a pool",
                "items": total_items,
                "cpu_count": cpus,
                "workers": effective,
                **rates,
            }
            return False, 1
        serial_estimate_s = per_item_s * remainder
        pool_overhead_s = self.SPAWN_BASELINE_S + self.SPAWN_PER_WORKER_S * effective
        pool_estimate_s = pool_overhead_s + serial_estimate_s / effective
        use_pool = pool_estimate_s < serial_estimate_s
        self.last_decision = {
            "mode": "pool" if use_pool else "serial",
            "reason": (
                f"measured {per_item_s:.4f}s/item: projected serial "
                f"{serial_estimate_s:.3f}s vs pool {pool_estimate_s:.3f}s "
                f"({effective} workers)"
            ),
            "items": total_items,
            "cpu_count": cpus,
            "workers": effective,
            "projected_serial_s": round(serial_estimate_s, 6),
            "projected_pool_s": round(pool_estimate_s, 6),
            **rates,
        }
        return use_pool, effective

    def probe(
        self,
        fn: Callable,
        items: Sequence,
        runner: Optional[Callable] = None,
    ) -> Tuple[List, bool, int]:
        """Run the serial probe and decide; ``(head, use_pool, workers)``.

        ``head`` holds the probe items' results (already executed, to
        be kept by the caller); the remainder of ``items`` is the
        caller's to run — pooled over ``workers`` when ``use_pool``.
        ``runner(item, position)`` overrides how each probe item is
        executed, so a supervising wrapper can keep its own bookkeeping
        while the timing and projection logic stay here; the decision
        lands on :attr:`last_decision` either way.
        """
        items = list(items)
        cpus = os.cpu_count() or 1
        remainder = len(items) - self.PROBE_ITEMS
        effective = min(self.workers, cpus, max(remainder, 1))
        if effective < 2 or remainder < 2:
            # Single CPU, a 1-worker cap, or a batch too small to
            # amortise anything: the pool can only lose.
            self.last_decision = {
                "mode": "serial",
                "reason": "single CPU or batch too small to amortise a pool",
                "items": len(items),
                "cpu_count": cpus,
                "workers": effective,
            }
            return [], False, 1

        start = time.perf_counter()
        head = []
        for position, item in enumerate(items[: self.PROBE_ITEMS]):
            if runner is None:
                head.append(fn(item))
            else:
                head.append(runner(item, position))
        probe_s = time.perf_counter() - start
        per_item_s = probe_s / self.PROBE_ITEMS
        serial_estimate_s = per_item_s * remainder
        pool_overhead_s = self.SPAWN_BASELINE_S + self.SPAWN_PER_WORKER_S * effective
        pool_estimate_s = pool_overhead_s + serial_estimate_s / effective
        use_pool = pool_estimate_s < serial_estimate_s
        self.last_decision = {
            "mode": "pool" if use_pool else "serial",
            "reason": (
                f"probe {per_item_s:.4f}s/item: projected serial "
                f"{serial_estimate_s:.3f}s vs pool {pool_estimate_s:.3f}s "
                f"({effective} workers)"
            ),
            "items": len(items),
            "cpu_count": cpus,
            "workers": effective,
            "probe_s": round(probe_s, 6),
            "projected_serial_s": round(serial_estimate_s, 6),
            "projected_pool_s": round(pool_estimate_s, 6),
        }
        return head, use_pool, effective

    def _map_racing_lockstep(
        self,
        backend: "LockstepBackend",
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]],
    ) -> List:
        """Race serial vs shared-wheel over the head of the batch, keep
        every result, and commit the tail to the winner (or to the
        pool, when the measured serial rate projects one to pay off).
        """
        clock = self._clock
        results: List = [None] * len(items)
        done = 0
        start = clock()
        for position in range(self.PROBE_ITEMS):
            results[position] = fn(items[position])
            done += 1
            if progress is not None:
                progress(done)
        serial_s = clock() - start
        group_positions = list(
            range(self.PROBE_ITEMS, self.PROBE_ITEMS + self.LOCKSTEP_PROBE_ITEMS)
        )
        start = clock()
        outcomes = backend.run_group(
            fn, [items[position] for position in group_positions]
        )
        lockstep_s = clock() - start
        for position, outcome in zip(group_positions, outcomes):
            results[position] = outcome
            done += 1
            if progress is not None:
                progress(done)
        head = self.PROBE_ITEMS + self.LOCKSTEP_PROBE_ITEMS
        tail_items = items[head:]
        serial_rate = serial_s / self.PROBE_ITEMS
        lockstep_rate = lockstep_s / len(group_positions)
        tail_progress = (
            None if progress is None else (lambda n: progress(head + n))
        )
        if self.decide_lockstep(serial_rate, lockstep_rate, len(items)):
            tail = backend.map(fn, tail_items, tail_progress)
        else:
            use_pool, workers = self.project_pool(
                serial_rate, len(tail_items), len(items)
            )
            if use_pool:
                tail = ProcessPoolBackend(workers).map(
                    fn, tail_items, tail_progress
                )
            else:
                tail = SerialBackend().map(fn, tail_items, tail_progress)
        results[head:] = tail
        return results

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        items = list(items)
        candidate = self.lockstep_candidate(fn, items)
        if candidate is not None:
            return self._map_racing_lockstep(candidate, fn, items, progress)

        def probe_runner(item, position):
            result = fn(item)
            if progress is not None:
                progress(position + 1)
            return result

        head, use_pool, workers = self.probe(fn, items, runner=probe_runner)
        tail_items = items[len(head) :]
        if not tail_items:
            return head
        tail_progress = (
            None
            if progress is None
            else (lambda done: progress(done + len(head)))
        )
        if use_pool:
            tail = ProcessPoolBackend(workers).map(fn, tail_items, tail_progress)
        else:
            tail = SerialBackend().map(fn, tail_items, tail_progress)
        return head + tail


@dataclass
class ExecutionResult:
    """Outcomes (in spec order) plus the campaign report they add up to."""

    outcomes: List[FlowOutcome]
    report: CampaignReport
    #: merged per-flow counters (None unless the run collected telemetry);
    #: merged in spec order from wall-clock-free counters, so the JSON
    #: artefact is byte-identical across serial and process-pool backends
    telemetry: Optional[CampaignTelemetry] = None

    @property
    def traces(self) -> List["FlowTrace"]:
        """Captured traces of successful flows, in spec order."""
        return [
            outcome.trace for outcome in self.outcomes if outcome.trace is not None
        ]

    @property
    def results(self) -> List[Optional[FlowResult]]:
        """Per-spec results, in spec order; None where quarantined."""
        return [outcome.result for outcome in self.outcomes]


#: one positional-Executor deprecation warning per process, not per call
_POSITIONAL_WARNED = False


class Executor:
    """Runs FlowSpec batches with retries, quarantine, and a report.

    Configuration is keyword-only: ``Executor(backend=...,
    retry_policy=..., telemetry=...)``.  Positional arguments are
    deprecated (they warn once per process) but still map to
    ``backend``/``retry_policy`` so existing callers keep working.

    ``telemetry`` controls campaign counter collection: ``True`` bakes
    collection into every spec, ``False`` disables it, and the default
    ``None`` defers to the ambient :func:`~repro.telemetry.telemetry_scope`
    configuration (how the CLI's ``--telemetry`` flag reaches every
    executor without parameter threading).
    """

    def __init__(
        self,
        *args: object,
        backend: Optional[object] = None,
        retry_policy: Optional[RetryPolicy] = None,
        telemetry: Optional[bool] = None,
    ) -> None:
        if args:
            global _POSITIONAL_WARNED
            if len(args) > 2 or (len(args) >= 1 and backend is not None) or (
                len(args) == 2 and retry_policy is not None
            ):
                raise TypeError(
                    "Executor takes at most (backend, retry_policy) "
                    "positionally, each given at most once"
                )
            if not _POSITIONAL_WARNED:
                _POSITIONAL_WARNED = True
                warnings.warn(
                    "positional Executor arguments are deprecated; use "
                    "Executor(backend=..., retry_policy=...)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            backend = args[0]
            if len(args) == 2:
                retry_policy = args[1]  # type: ignore[assignment]
        self.backend = backend if backend is not None else SerialBackend()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.telemetry = telemetry

    @classmethod
    def for_workers(
        cls,
        workers: Union[int, str] = 1,
        retry_policy: Optional[RetryPolicy] = None,
        telemetry: Optional[bool] = None,
    ) -> "Executor":
        """Serial for ``workers <= 1``, a spawn pool otherwise.

        The string ``"auto"`` selects :class:`AutoBackend`, which
        probes the batch and picks lockstep vs serial vs pool per
        call; ``"lockstep"`` forces :class:`LockstepBackend` (shared
        event wheel for eligible specs, serial fallback otherwise);
        ``"fabric"`` runs the batch on the distributed campaign fabric
        (:class:`~repro.fabric.FabricBackend` — a lease coordinator
        plus worker processes, configured by the ambient
        :func:`~repro.fabric.fabric_scope`).
        """
        if workers == "auto":
            return cls(
                backend=AutoBackend(), retry_policy=retry_policy, telemetry=telemetry
            )
        if workers == "lockstep":
            return cls(
                backend=LockstepBackend(),
                retry_policy=retry_policy,
                telemetry=telemetry,
            )
        if workers == "fabric":
            # Imported lazily: repro.fabric sits above the executor in
            # the layer diagram (it imports this module).
            from repro.fabric.backend import FabricBackend

            return cls(
                backend=FabricBackend(),
                retry_policy=retry_policy,
                telemetry=telemetry,
            )
        if isinstance(workers, str):
            raise ConfigurationError(
                f"workers must be an integer, 'auto', 'lockstep', or "
                f"'fabric', got {workers!r}"
            )
        if workers <= 1:
            return cls(
                backend=SerialBackend(), retry_policy=retry_policy, telemetry=telemetry
            )
        return cls(
            backend=ProcessPoolBackend(workers),
            retry_policy=retry_policy,
            telemetry=telemetry,
        )

    def run(
        self,
        specs: Iterable[FlowSpec],
        *,
        report: Optional[CampaignReport] = None,
    ) -> ExecutionResult:
        """Execute every spec; failures never abort the batch.

        ``report``, when given, is extended in place (several calls can
        accumulate into one campaign report); otherwise a fresh one is
        returned.  Accounting is replayed from the outcomes in spec
        order, so the report's bytes do not depend on the backend or on
        completion timing.

        When telemetry collection is on (``Executor(telemetry=True)``,
        a spec's own ``telemetry`` flag, or an ambient
        :func:`~repro.telemetry.telemetry_scope`), per-flow counter
        summaries are merged — in spec order, from wall-clock-free
        counters — into :attr:`ExecutionResult.telemetry`; progress
        reporting, when enabled, writes to stderr only and never
        changes result bytes.
        """
        ambient = current_telemetry_config()
        collect = self.telemetry
        if collect is None:
            collect = ambient is not None and ambient.collect
        prepared = [self._finalise(spec, collect) for spec in specs]
        payloads = [
            (index, spec, self.retry_policy)
            for index, spec in enumerate(prepared)
        ]
        backend = self._effective_backend()
        reporter: Optional[ProgressReporter] = None
        if ambient is not None and ambient.progress:
            reporter = ProgressReporter(
                total=len(payloads), stream=ambient.progress_stream
            )
        if reporter is None:
            # No kwarg when off: custom backends only need the
            # two-argument ``map(fn, items)`` signature.
            outcomes: List[FlowOutcome] = backend.map(
                _execute_payload, payloads
            )
        else:
            try:
                outcomes = backend.map(
                    _execute_payload, payloads, reporter.update
                )
            finally:
                reporter.finish()
        if report is None:
            report = CampaignReport()
        for outcome in outcomes:
            if outcome.skipped:
                # A signal drain stopped the campaign before this spec
                # ran: it is not attempted, the report is just partial.
                report.interrupted = True
                continue
            report.attempted += 1
            report.retried += outcome.attempts - 1
            for failure in outcome.failures:
                report.record_failure(failure)
            if outcome.quarantine is not None:
                report.record_quarantine(outcome.quarantine)
            else:
                report.succeeded += 1
            if outcome.cache_state == "hit":
                report.cache_hits += 1
            elif outcome.cache_state in ("miss", "corrupt", "error"):
                report.cache_misses += 1
                if outcome.cache_state == "corrupt":
                    report.cache_corrupt += 1
                elif outcome.cache_state == "error":
                    report.cache_errors += 1
        telemetry = self._gather_telemetry(outcomes, ambient)
        return ExecutionResult(outcomes=outcomes, report=report, telemetry=telemetry)

    def _effective_backend(self):
        """The configured backend, supervised and cache-wrapped.

        Every run gets the supervision layer
        (:class:`~repro.exec.supervise.SupervisedBackend` — crash
        recovery, deadlines, signal drain) around the configured
        backend, under the ambient
        :func:`~repro.exec.supervise.supervise_scope` policy when one
        is installed.  When a store is also ambient, the cache wrap
        goes *outside* supervision — the hit/miss partition stays in
        the parent and only genuine misses are supervised — and the
        wrap happens per ``run`` call so one Executor honours whatever
        :func:`~repro.store.scope.store_scope` is active at each call
        site.  An explicitly configured
        :class:`~repro.store.backend.CachedBackend` is left alone
        entirely (the caller owns its composition).
        """
        from repro.exec.supervise import (
            SupervisedBackend,
            current_supervisor_policy,
        )
        from repro.store.backend import CachedBackend
        from repro.store.scope import current_store_config

        if isinstance(self.backend, CachedBackend):
            return self.backend
        if isinstance(self.backend, SupervisedBackend):
            supervised = self.backend
        else:
            supervised = SupervisedBackend(
                self.backend, policy=current_supervisor_policy()
            )
        config = current_store_config()
        if config is None:
            return supervised
        return CachedBackend(
            config.store, supervised, refresh=config.refresh
        )

    @staticmethod
    def _gather_telemetry(
        outcomes: List[FlowOutcome], ambient
    ) -> Optional[CampaignTelemetry]:
        """Merge per-flow counters (spec order) into one campaign artefact."""
        campaign: Optional[CampaignTelemetry] = None
        for outcome in outcomes:
            result = outcome.result
            if result is None or not isinstance(result.telemetry, CountingTelemetry):
                continue
            if campaign is None:
                campaign = CampaignTelemetry()
            campaign.merge_flow(result.telemetry.summarise(outcome.spec.flow_id))
        if campaign is not None and ambient is not None and ambient.aggregate is not None:
            ambient.aggregate.merge(campaign)
        return campaign

    def _finalise(self, spec: FlowSpec, collect: bool = False) -> FlowSpec:
        """Bake ambient context into the spec before it leaves this process.

        ContextVars don't cross the spawn boundary, so the ambient
        watchdog — and the telemetry-collection flag — must travel
        inside the spec itself.
        """
        if spec.watchdog is None:
            ambient = current_watchdog()
            if ambient is not None:
                spec = spec.with_(watchdog=ambient)
        if collect and not spec.telemetry:
            spec = spec.with_(telemetry=True)
        return spec
