"""Chaos testing for the execution fabric itself.

:mod:`repro.robustness.faults` injects faults into the *simulated
network* — extra loss, handoff storms — and PR 1 proved the campaign
layer survives flows that fail.  This module is the same philosophy one
layer up: it injects faults into the *machinery that runs the flows* —
workers that die mid-spec, flows that hang past their deadline, store
shards that rot on disk — so the supervision layer
(:mod:`repro.exec.supervise`) can be tested against the exact failure
modes it exists to absorb.

Everything is seeded and wall-clock-free: a :class:`ChaosPlan` is a
pure function of ``(seed, flow_ids)``, actions key on the *execution
index* of a flow (its first run, its first retry, …) rather than on
time, and the supervisor's roll-back rule for aborted executions means
every scheduled action fires exactly once no matter how the worker
pool's timing lands.  That is what makes the chaos determinism gate
possible: two runs of the same chaotic campaign produce byte-identical
:class:`~repro.robustness.campaign.CampaignReport` JSON.

Only for tests.  A :class:`ChaosBackend` in a real campaign kills real
workers; the injected :class:`~repro.util.errors.ChaosError` is loud on
purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.exec.supervise import SupervisedBackend, SupervisorPolicy
from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed

__all__ = ["ChaosBackend", "ChaosPlan"]

#: action kinds a plan may schedule, in severity order
_ACTION_KINDS = ("crash", "hang", "raise")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded schedule of fabric faults, keyed by (flow_id, execution).

    ``crash``/``hang``/``raise`` map a flow id to the tuple of
    execution indices that misbehave: ``{"flow-3": (0,)}`` under
    ``crash`` means flow-3's *first* execution kills its worker and
    every later one runs clean — which is how a plan expresses "crash
    once, then recover".  ``corrupt_store`` names flows whose store
    entries are truncated on disk before the batch's store reads, and
    ``hang_s`` is how long a hung flow sleeps (pick it comfortably past
    the supervisor's deadline).

    Plans are frozen values: build one explicitly for surgical tests,
    or :meth:`sample` one from a seed for breadth.
    """

    crash: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    hang: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    raise_: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    corrupt_store: Tuple[str, ...] = ()
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.hang_s <= 0.0:
            raise ConfigurationError(f"hang_s must be positive, got {self.hang_s}")
        overlaps = set()
        for kind_a, kind_b in (("crash", "hang"), ("crash", "raise_"),
                               ("hang", "raise_")):
            a, b = getattr(self, kind_a), getattr(self, kind_b)
            for flow_id in set(a) & set(b):
                if set(a[flow_id]) & set(b[flow_id]):
                    overlaps.add(flow_id)
        if overlaps:
            raise ConfigurationError(
                "a (flow, execution) pair can schedule at most one action; "
                f"conflicting flows: {sorted(overlaps)}"
            )

    @classmethod
    def sample(
        cls,
        seed: int,
        flow_ids: Sequence[str],
        *,
        crashes: int = 1,
        hangs: int = 1,
        raises: int = 0,
        corruptions: int = 0,
        hang_s: float = 30.0,
    ) -> "ChaosPlan":
        """Draw a plan over ``flow_ids`` deterministically from ``seed``.

        Victims are chosen by ranking flows under a seeded hash —
        independent of list order duplicates aside — and each victim
        misbehaves on execution 0 (so one retry recovers it).  The
        pools are disjoint: a flow gets at most one scheduled action,
        and corruption victims are drawn after the action victims so a
        corrupted entry belongs to an otherwise healthy flow.
        """
        total = crashes + hangs + raises + corruptions
        if total > len(flow_ids):
            raise ConfigurationError(
                f"plan wants {total} victims from {len(flow_ids)} flows"
            )
        ranked = sorted(
            dict.fromkeys(flow_ids),
            key=lambda flow_id: (derive_seed(seed, "chaos", flow_id), flow_id),
        )
        crash_ids = ranked[:crashes]
        hang_ids = ranked[crashes : crashes + hangs]
        raise_ids = ranked[crashes + hangs : crashes + hangs + raises]
        corrupt_ids = ranked[crashes + hangs + raises : total]
        return cls(
            crash={flow_id: (0,) for flow_id in crash_ids},
            hang={flow_id: (0,) for flow_id in hang_ids},
            raise_={flow_id: (0,) for flow_id in raise_ids},
            corrupt_store=tuple(corrupt_ids),
            hang_s=hang_s,
        )

    def action_for(
        self, flow_id: str, execution: int
    ) -> Optional[Tuple]:
        """The supervisor-protocol action tuple for one execution."""
        if execution in self.crash.get(flow_id, ()):
            return ("crash",)
        if execution in self.hang.get(flow_id, ()):
            return ("hang", self.hang_s)
        if execution in self.raise_.get(flow_id, ()):
            return ("raise", f"chaos-injected failure for {flow_id}")
        return None

    @property
    def needs_pool(self) -> bool:
        """Whether any action must run behind a process boundary.

        ``crash`` would kill the parent inline, ``hang`` needs a worker
        the deadline can kill, and ``raise`` relies on the worker-side
        trampoline (inline execution never applies actions), so any
        scheduled action forces the pool.
        """
        return bool(self.crash or self.hang or self.raise_)

    def summary(self) -> str:
        return (
            f"chaos plan: {sum(map(len, self.crash.values()))} crashes, "
            f"{sum(map(len, self.hang.values()))} hangs "
            f"({self.hang_s:g}s), "
            f"{sum(map(len, self.raise_.values()))} raises, "
            f"{len(self.corrupt_store)} corrupted entries"
        )


class ChaosBackend(SupervisedBackend):
    """A :class:`SupervisedBackend` that executes a :class:`ChaosPlan`.

    The parent tracks per-flow execution counts and hands the scheduled
    action to the worker-side trampoline, so a "crash on execution 0"
    flow dies exactly once and then completes — the recovery path is
    exercised, not just the failure.  Store corruption happens in
    :meth:`prepare_batch`, which a wrapping
    :class:`~repro.store.backend.CachedBackend` invokes *before* its
    store reads: the campaign genuinely reads the rotten bytes.
    """

    def __init__(
        self,
        plan: ChaosPlan,
        inner: Optional[object] = None,
        *,
        policy: Optional[SupervisorPolicy] = None,
        store: Optional[object] = None,
    ) -> None:
        super().__init__(inner, policy=policy)
        self.plan = plan
        self._store = store
        self.corrupted: Dict[str, str] = {}  # flow_id -> corrupted key

    @property
    def name(self) -> str:
        return f"chaos[{getattr(self.inner, 'name', 'backend')}]"

    def _action_for(self, payload: Tuple, execution: int) -> Optional[Tuple]:
        return self.plan.action_for(payload[1].flow_id, execution)

    def _requires_pool(self, items: Sequence) -> bool:
        return self.plan.needs_pool

    def prepare_batch(self, items: Sequence) -> None:
        """Truncate the store entries the plan marks for corruption.

        Idempotent (truncating twice is truncating); a miss — no store
        in play, or no entry yet for that flow — is silently fine, so
        cold runs of a corrupting plan still complete.
        """
        if not self.plan.corrupt_store:
            return
        store = self._store
        if store is None:
            from repro.store.scope import current_store_config

            config = current_store_config()
            store = config.store if config is not None else None
        if store is None:
            return
        from repro.store.keys import UnhashableSpecError, flow_key

        targets = set(self.plan.corrupt_store)
        for payload in items:
            spec = payload[1]
            if spec.flow_id not in targets:
                continue
            try:
                key = flow_key(spec)
            except UnhashableSpecError:
                continue
            path = store.path_for(key)
            if not path.exists():
                continue
            raw = path.read_bytes()
            # Half a gzip frame: unreadable, hence CorruptEntryError →
            # quarantine → recompute on the very next read.
            path.write_bytes(raw[: max(len(raw) // 2, 1)])
            self.corrupted[spec.flow_id] = key
