"""FlowSpec: a frozen, picklable description of one simulated flow.

Every flow the library runs — campaign flows, experiment micro-flows,
MPTCP subflows, sweep points — is described by one :class:`FlowSpec`
and executed by :mod:`repro.exec.executor`.  The spec replaces the
positional ``run_flow(config, data_loss, ack_loss, seed, ...)`` sprawl
with a single value that can be stored, hashed into a flow id,
shipped to a worker process, and re-run bit-identically.

A spec names its channels one of two ways:

* **scenario-based** — carry a :class:`~repro.hsr.scenario.Scenario`
  plus a duration; the executor materialises fresh loss models via
  ``scenario.build(duration, seed)`` in whichever process runs the
  flow.  This is the campaign/sweep path.
* **explicit** — carry a :class:`~repro.simulator.connection.ConnectionConfig`
  and concrete :class:`~repro.simulator.channel.LossModel` instances
  (the scripted micro-experiments of Figs. 5/7/9/11).  Loss models are
  stateful, so the executor deep-copies them per run — executing a spec
  never mutates it, and serial/parallel runs see identical channel
  state.

``seed`` seeds the connection (jitter streams); ``channel_seed``
optionally decouples the scenario build from it (some experiments
build channels and run the connection under different seeds).
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Optional

from repro.robustness.faults import FaultPlan
from repro.robustness.watchdog import Watchdog
from repro.simulator.channel import LossModel, NoLoss
from repro.simulator.connection import ConnectionConfig
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Both sit above repro.exec in the layering (their packages import
    # exec); a runtime import here would be circular.
    from repro.hsr.scenario import Scenario
    from repro.traces.events import FlowMetadata

__all__ = ["FlowSpec", "ResolvedFlow"]


@dataclass
class ResolvedFlow:
    """Simulator-ready artefacts materialised from one :class:`FlowSpec`.

    Fresh per execution: loss models here are never shared with the
    spec or with other runs.
    """

    config: ConnectionConfig
    data_loss: LossModel
    ack_loss: LossModel
    redundant_data_loss: Optional[LossModel] = None


@dataclass(frozen=True)
class FlowSpec:
    """Everything needed to (re)run one flow, as an immutable value."""

    #: scenario to build channels from (scenario-based specs)
    scenario: Optional["Scenario"] = None
    #: explicit connection config (required when ``scenario`` is None;
    #: optional override of the built config's duration otherwise)
    config: Optional[ConnectionConfig] = None
    #: explicit channels (ignored when ``scenario`` is given)
    data_loss: Optional[LossModel] = None
    ack_loss: Optional[LossModel] = None
    #: MPTCP backup-mode alternate subflow channel (Section V-B)
    redundant_data_loss: Optional[LossModel] = None
    #: congestion-control registry name (:mod:`repro.cc`)
    cc: str = "reno"
    #: optional per-variant tuning record — one of the frozen dataclasses
    #: in :mod:`repro.cc` (e.g. :class:`~repro.cc.CubicParams`); threaded
    #: to the sender factory and hashed into the flow's content key, so
    #: tuned and default runs never collide in the result store
    cc_params: Optional[object] = None
    #: seed of the connection's RNG streams (jitter etc.)
    seed: int = 0
    #: seed for ``scenario.build``; defaults to ``seed``
    channel_seed: Optional[int] = None
    #: flow duration (required for scenario-based specs; overrides
    #: ``config.duration`` when both are given)
    duration: Optional[float] = None
    #: delayed-ACK factor / window clamp forwarded to ``scenario.build``
    b: Optional[int] = None
    wmax: Optional[float] = None
    #: stable identifier used in campaign reports and quarantine records
    flow_id: str = "flow"
    #: optional bottleneck on the data direction
    bottleneck_rate: Optional[float] = None
    bottleneck_buffer: int = 64
    #: chaos injected into the built channels (applied after build,
    #: exactly where ``Scenario.channel_hook`` would run)
    fault_plan: Optional[FaultPlan] = None
    #: per-flow budgets; executors fill this from the ambient watchdog
    watchdog: Optional[Watchdog] = None
    #: when set, the executor captures a FlowTrace with this metadata
    metadata: Optional["FlowMetadata"] = None
    #: validate the captured trace (requires ``metadata``)
    validate: bool = False
    #: collect per-flow telemetry counters (a plain bool — not a sink —
    #: so the flag survives the pickle across a spawn boundary; the
    #: worker builds its own CountingTelemetry)
    telemetry: bool = False
    #: content key of the flow this spec is a retry attempt of; set by
    #: :meth:`for_attempt` so the result store resolves reseeded retry
    #: specs to the *original* flow's cache entry
    parent_key: Optional[str] = None
    #: scenario *reference* — a registered scenario name or a path to a
    #: scenario document (:mod:`repro.scenarios`); resolved into
    #: ``scenario`` at construction, so the rest of the pipeline never
    #: sees the indirection
    scenario_ref: Optional[str] = None

    #: fields the result store excludes from the content hash —
    #: ``telemetry`` never changes simulated bytes, ``parent_key``
    #: is the back-pointer the hash itself resolves through, and
    #: ``scenario_ref`` is already captured by the resolved ``scenario``
    #: (a by-name spec must hash identically to the same spec built
    #: from the compiled scenario directly)
    _CACHE_KEY_EXCLUDE = frozenset({"parent_key", "telemetry", "scenario_ref"})

    def __post_init__(self) -> None:
        if self.scenario_ref is not None:
            if self.scenario is not None:
                raise ConfigurationError(
                    "give scenario or scenario_ref, not both"
                )
            # Lazy import: repro.scenarios sits above repro.exec in the
            # layering (its compiler builds on repro.hsr).
            from repro.scenarios import compile_scenario

            object.__setattr__(
                self, "scenario", compile_scenario(self.scenario_ref)
            )
        if self.scenario is None and self.config is None:
            raise ConfigurationError(
                "FlowSpec needs a scenario or an explicit ConnectionConfig"
            )
        if self.scenario is not None and self.duration is None:
            raise ConfigurationError(
                "scenario-based FlowSpec needs an explicit duration"
            )
        if self.duration is not None and self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.validate and self.metadata is None:
            raise ConfigurationError(
                "validate=True needs metadata (validation runs on the "
                "captured trace)"
            )
        if not self.cc:
            raise ConfigurationError("cc must name a registered variant")
        if self.cc_params is not None and not dataclasses.is_dataclass(
            self.cc_params
        ):
            raise ConfigurationError(
                "cc_params must be a repro.cc tuning dataclass "
                f"(CubicParams, BbrParams, ...), got {type(self.cc_params).__name__}"
            )

    # -- derived values ------------------------------------------------

    @property
    def effective_duration(self) -> float:
        """The duration this spec will actually simulate."""
        if self.duration is not None:
            return self.duration
        assert self.config is not None  # enforced by __post_init__
        return self.config.duration

    @property
    def effective_channel_seed(self) -> int:
        return self.channel_seed if self.channel_seed is not None else self.seed

    def with_(self, **changes) -> "FlowSpec":
        """A copy with the given fields replaced; unknown names raise."""
        known = {field.name for field in fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown FlowSpec field(s) {unknown}; known fields: {sorted(known)}"
            )
        return replace(self, **changes)

    def for_attempt(self, attempt_seed: int) -> "FlowSpec":
        """The spec re-seeded for a retry attempt.

        The metadata seed follows so a retried flow's trace records the
        seed that actually produced it (the report's reproducibility
        contract).  The attempt also records its parent's content key:
        a retry is a different *spec* (different seed) but the same
        *flow*, so the result store must file whatever the retry
        produces under the identity the campaign asked for.
        """
        changes: dict = {"seed": attempt_seed}
        if self.channel_seed is not None:
            changes["channel_seed"] = attempt_seed
        if self.metadata is not None:
            changes["metadata"] = replace(self.metadata, seed=attempt_seed)
        if self.parent_key is None:
            # Lazy import: repro.store sits above repro.exec in the
            # layering (its backend imports the executor).
            from repro.store.keys import UnhashableSpecError, flow_key

            try:
                changes["parent_key"] = flow_key(self)
            except UnhashableSpecError:
                pass  # uncacheable specs stay uncacheable on retry
        return self.with_(**changes)

    # -- materialisation ----------------------------------------------

    def resolve(self) -> ResolvedFlow:
        """Materialise simulator-ready channels for one execution.

        Scenario-based specs build fresh loss models; explicit specs
        deep-copy theirs (loss models are stateful).  The fault plan is
        applied last, exactly where a ``Scenario.channel_hook`` runs.
        """
        if self.scenario is not None:
            build_kwargs: dict = {}
            if self.b is not None:
                build_kwargs["b"] = self.b
            if self.wmax is not None:
                build_kwargs["wmax"] = self.wmax
            built = self.scenario.build(
                duration=self.effective_duration,
                seed=self.effective_channel_seed,
                **build_kwargs,
            )
            config = built.config
            data_loss: LossModel = built.data_loss
            ack_loss: LossModel = built.ack_loss
            redundant = copy.deepcopy(self.redundant_data_loss)
            if self.config is not None:
                config = self.config
            if self.fault_plan is not None and not self.fault_plan.is_noop():
                built = replace(built, config=config)
                built = self.fault_plan.apply(built, self.effective_channel_seed)
                config, data_loss, ack_loss = (
                    built.config,
                    built.data_loss,
                    built.ack_loss,
                )
        else:
            assert self.config is not None
            config = self.config
            data_loss = copy.deepcopy(self.data_loss) or NoLoss()
            ack_loss = copy.deepcopy(self.ack_loss) or NoLoss()
            redundant = copy.deepcopy(self.redundant_data_loss)
            if self.fault_plan is not None and not self.fault_plan.is_noop():
                # Wrap explicit channels the same way a scenario build
                # would be wrapped; imported here because repro.hsr sits
                # above repro.exec in the layering.
                from repro.hsr.scenario import BuiltChannels

                built = self.fault_plan.apply(
                    BuiltChannels(
                        data_loss=data_loss,
                        ack_loss=ack_loss,
                        config=config,
                        outages=(),
                    ),
                    self.effective_channel_seed,
                )
                config, data_loss, ack_loss = (
                    built.config,
                    built.data_loss,
                    built.ack_loss,
                )
        if self.duration is not None and config.duration != self.duration:
            config = config.with_(duration=self.duration)
        return ResolvedFlow(
            config=config,
            data_loss=data_loss,
            ack_loss=ack_loss,
            redundant_data_loss=redundant,
        )
