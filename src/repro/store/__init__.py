"""repro.store: content-addressed persistence for flow results.

Never pay twice for a flow already simulated.  Every
:class:`~repro.exec.FlowSpec` is deterministic, so its sha256 content
key (:func:`flow_key` — canonical spec encoding salted with the cc
registry and engine schema versions) addresses its entire result:

* :class:`ResultStore` — sharded ``<root>/ab/abcdef….json.gz`` entries
  with integrity digests, atomic writes, and corruption quarantine;
* :class:`CachedBackend` — wraps any executor backend, serves hits
  from the store, runs only the misses, merges in spec order —
  cached campaigns stay byte-identical to uncached ones;
* :func:`store_scope` — the ambient plumbing behind the experiments
  CLI's ``--store DIR`` / ``--no-cache`` flags.

Resumability falls out: a campaign killed midway has already persisted
every completed flow, so rerunning the same command executes only the
remainder.  ``python -m repro.store`` offers ``stats`` / ``verify`` /
``gc`` maintenance over a store directory, and ``serve`` exposes one
over HTTP (:class:`StoreServer`) so remote campaign workers can share
it through a :class:`RemoteStore` client — same entry bytes, same
integrity digests, same read/write surface (:func:`open_store` turns
either spelling, directory or ``http://`` URL, into a store).
"""

from repro.store.backend import CachedBackend
from repro.store.breaker import StoreCircuitBreaker
from repro.store.disk import (
    CorruptEntryError,
    ResultStore,
    StoreStats,
    decode_entry,
    encode_entry,
)
from repro.store.format import SCHEMA_VERSION, decode_outcome, encode_outcome
from repro.store.remote import RemoteStore, StoreServer, open_store
from repro.store.keys import (
    ENGINE_SCHEMA_VERSION,
    UnhashableSpecError,
    canonical_json,
    flow_key,
)
from repro.store.scope import (
    StoreConfig,
    current_store,
    current_store_config,
    store_scope,
)

__all__ = [
    "CachedBackend",
    "CorruptEntryError",
    "ENGINE_SCHEMA_VERSION",
    "RemoteStore",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoreCircuitBreaker",
    "StoreConfig",
    "StoreServer",
    "StoreStats",
    "UnhashableSpecError",
    "canonical_json",
    "current_store",
    "current_store_config",
    "decode_entry",
    "decode_outcome",
    "encode_entry",
    "encode_outcome",
    "flow_key",
    "open_store",
    "store_scope",
]
