"""HTTP transport for the content-addressed result store.

Two halves, one wire format:

* :class:`StoreServer` — ``python -m repro.store serve DIR`` — a
  threaded HTTP front over an ordinary :class:`ResultStore`.  Entries
  travel as their verbatim on-disk bytes (the gzip'd
  header-line+payload frame from :func:`repro.store.disk.encode_entry`),
  so the server never re-serialises payloads and the sha256 integrity
  digest inside each entry protects the bytes end to end: the server
  re-validates every uploaded entry before landing it, and clients
  re-verify every download before trusting it.  A transport that ships
  the *stored* bytes inherits the store's integrity story for free.

* :class:`RemoteStore` — a client satisfying the ``ResultStore``
  read/write surface (``get`` / ``put`` / ``load`` / ``quarantine`` /
  ``stats``), so :class:`~repro.store.backend.CachedBackend`,
  :func:`~repro.store.scope.store_scope`, and the fabric workers can
  point at ``http://host:port`` wherever they accept a store.  One
  ``HTTPConnection`` is kept per client and reused across requests;
  transient transport failures get bounded retries with the same
  seeded-jitter exponential backoff campaigns use
  (:class:`~repro.robustness.campaign.RetryPolicy`), and a request
  that exhausts its retries raises :class:`OSError` — exactly the
  exception :class:`~repro.store.breaker.StoreCircuitBreaker` absorbs,
  so a dead server downgrades a campaign to uncached execution instead
  of aborting it.

The endpoints::

    GET  /healthz           -> {"status": "ok"}
    GET  /stats             -> StoreStats.to_dict() JSON
    GET  /entry/<key>       -> verbatim entry bytes | 404
    PUT  /entry/<key>       -> validate digest+key binding, land atomically
    POST /quarantine/<key>  -> move the entry aside | 404

Keys are 64 lowercase hex characters (sha256); anything else is a 400
before the store is touched.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.robustness.campaign import RetryPolicy
from repro.store.disk import (
    CorruptEntryError,
    ResultStore,
    StoreStats,
    decode_entry,
    encode_entry,
)

__all__ = ["RemoteStore", "StoreServer", "open_store"]

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that doesn't traceback on vanished clients.

    A SIGKILLed fabric worker leaves its half-open socket behind; the
    stdlib default prints a full traceback per reset connection, which
    would swamp the stderr of every chaos drill.  Connection-level
    errors are a normal fact of fleet life and are dropped silently;
    anything else still surfaces (one line, not forty).
    """

    daemon_threads = True

    def handle_error(self, request, client_address):  # noqa: D102
        import sys as _sys

        error = _sys.exc_info()[1]
        if isinstance(error, (BrokenPipeError, ConnectionResetError, TimeoutError)):
            return
        print(
            f"store server: error handling {client_address}: "
            f"{type(error).__name__}: {error}",
            file=_sys.stderr,
            flush=True,
        )

#: Transport retry schedule: two retries on top of the first attempt,
#: 50 ms seeded-jitter exponential backoff.  Deliberately short — the
#: circuit breaker above this layer handles a server that is *down*;
#: these retries only smooth over a connection reset or a restart blip.
_TRANSPORT_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.05)


# -- server ------------------------------------------------------------


class _StoreHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-store"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would swamp campaign stderr

    # Every handler answers with Content-Length so the client's kept
    # connection knows where the body ends.
    def _respond(
        self, status: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: Dict[str, object]) -> None:
        self._respond(status, json.dumps(payload, sort_keys=True).encode())

    def _entry_key(self, prefix: str) -> Optional[str]:
        if not self.path.startswith(prefix):
            return None
        key = self.path[len(prefix):]
        if not _KEY_RE.match(key):
            self._respond_json(400, {"error": f"bad key {key[:80]!r}"})
            return None
        return key

    @property
    def _store(self) -> ResultStore:
        return self.server.store  # type: ignore[attr-defined]

    def _count(self, op: str) -> None:
        self.server.owner.count(op)  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/healthz":
            self._respond_json(200, {"status": "ok"})
            return
        if self.path == "/stats":
            self._count("stats")
            self._respond_json(200, self._store.stats().to_dict())
            return
        key = self._entry_key("/entry/")
        if key is None:
            if not self.path.startswith("/entry/"):
                self._respond_json(404, {"error": "unknown path"})
            return
        self._count("get")
        raw = self._store.read_bytes(key)
        if raw is None:
            self._respond_json(404, {"error": "absent"})
            return
        self._respond(200, raw, content_type="application/gzip")

    def do_PUT(self) -> None:  # noqa: N802 - stdlib handler name
        key = self._entry_key("/entry/")
        if key is None:
            if not self.path.startswith("/entry/"):
                self._respond_json(404, {"error": "unknown path"})
            return
        self._count("put")
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        # Validate before landing: a transport error or a lying client
        # must never plant an entry that reads back corrupt.
        try:
            payload = decode_entry(raw, key)
        except CorruptEntryError as error:
            self._respond_json(400, {"error": str(error)})
            return
        if payload is None:
            self._respond_json(400, {"error": "stale schema"})
            return
        self._store.put_bytes(key, raw)
        self._respond_json(200, {"status": "stored"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        key = self._entry_key("/quarantine/")
        if key is None:
            if not self.path.startswith("/quarantine/"):
                self._respond_json(404, {"error": "unknown path"})
            return
        self._count("quarantine")
        moved = self._store.quarantine(key)
        if moved is None:
            self._respond_json(404, {"error": "absent"})
            return
        self._respond_json(200, {"status": "quarantined"})


class StoreServer:
    """A threaded HTTP front over one :class:`ResultStore` directory."""

    def __init__(
        self,
        store: Union[ResultStore, str, os.PathLike],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self._http = _QuietThreadingHTTPServer((host, port), _StoreHandler)
        self._http.store = store  # type: ignore[attr-defined]
        self._http.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: op name -> request count; ``request_count`` sums it — the
        #: benchmark's store-round-trip ledger.
        self.counters: Dict[str, int] = {}

    def count(self, op: str) -> None:
        with self._lock:
            self.counters[op] = self.counters.get(op, 0) + 1

    @property
    def request_count(self) -> int:
        with self._lock:
            return sum(self.counters.values())

    @property
    def url(self) -> str:
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve on a daemon thread (embedded use); returns self."""
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-store-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's ``serve``)."""
        self._http.serve_forever()

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# -- client ------------------------------------------------------------


class RemoteStore:
    """A ``ResultStore``-shaped client for a :class:`StoreServer`.

    Transport failures surface as :class:`OSError` after bounded
    retries, which is the contract
    :class:`~repro.store.breaker.StoreCircuitBreaker` expects — so a
    campaign pointed at a dead server degrades to uncached execution
    exactly like one pointed at a dead disk.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout_s: float = 10.0,
        retry_policy: RetryPolicy = _TRANSPORT_RETRY,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"remote store URL must be http://host:port, got {url!r}")
        self.url = url.rstrip("/")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy
        #: HTTP requests actually sent (retries included) — the
        #: benchmark's client-side round-trip ledger.
        self.round_trips = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteStore({self.url!r})"

    # A client crossing a spawn boundary (fabric payloads carry store
    # refs) must not drag a socket along.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_conn"] = None
        return state

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None, *, seed: int = 0
    ) -> Tuple[int, bytes]:
        """``(status, body)`` with connection reuse and bounded retries.

        Retries cover transport-level failures and 5xx responses; the
        backoff schedule is :meth:`RetryPolicy.backoff_for_attempt`
        seeded per key, so a thousand workers hammering a restarting
        server do not retry in lockstep.  4xx responses are returned to
        the caller — the request is wrong, not the wire.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retry_policy.max_attempts):
            if attempt:
                time.sleep(self.retry_policy.backoff_for_attempt(seed, attempt))
            try:
                conn = self._connection()
                self.round_trips += 1
                conn.request(method, path, body=body)
                response = conn.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                last_error = error
                continue
            if response.status >= 500:
                last_error = OSError(
                    f"store server error {response.status} for {method} {path}"
                )
                continue
            return response.status, payload
        raise OSError(
            f"remote store {self.url} unreachable after "
            f"{self.retry_policy.max_attempts} attempts: {last_error}"
        )

    @staticmethod
    def _seed_for(key: str) -> int:
        return int(key[:8], 16) if _KEY_RE.match(key) else 0

    # -- ResultStore surface -------------------------------------------

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload, or None when absent / stale; raises
        :class:`CorruptEntryError` on integrity failure (strict read,
        mirroring :meth:`ResultStore.load`)."""
        status, raw = self._request("GET", f"/entry/{key}", seed=self._seed_for(key))
        if status == 404:
            return None
        if status != 200:
            raise OSError(f"remote store GET {key[:12]}… failed with {status}")
        return decode_entry(raw, key)

    def get(self, key: str) -> Tuple[Optional[Dict[str, object]], bool]:
        """Lenient read: ``(payload_or_None, was_corrupt)``; corrupt
        downloads are quarantined server-side, best-effort."""
        try:
            return self.load(key), False
        except CorruptEntryError:
            try:
                self.quarantine(key)
            except OSError:  # quarantine is advisory; the miss stands
                pass
            return None, True

    def put(self, key: str, payload: Dict[str, object]) -> str:
        raw = encode_entry(key, payload)
        status, body = self._request(
            "PUT", f"/entry/{key}", body=raw, seed=self._seed_for(key)
        )
        if status != 200:
            raise OSError(
                f"remote store PUT {key[:12]}… rejected with {status}: "
                f"{body[:200]!r}"
            )
        return f"{self.url}/entry/{key}"

    def quarantine(self, key: str) -> Optional[str]:
        status, _ = self._request(
            "POST", f"/quarantine/{key}", seed=self._seed_for(key)
        )
        if status == 404:
            return None
        if status != 200:
            raise OSError(f"remote store quarantine {key[:12]}… failed with {status}")
        return f"{self.url}/quarantine/{key}"

    def stats(self) -> StoreStats:
        status, raw = self._request("GET", "/stats")
        if status != 200:
            raise OSError(f"remote store stats failed with {status}")
        data = json.loads(raw)
        return StoreStats(
            root=str(data.get("root", self.url)),
            entries=int(data.get("entries", 0)),
            total_bytes=int(data.get("total_bytes", 0)),
            quarantined=int(data.get("quarantined", 0)),
            schemas={int(k): v for k, v in data.get("schemas", {}).items()},
        )

    def healthy(self) -> bool:
        """One non-retried probe; False instead of raising."""
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            try:
                conn.request("GET", "/healthz")
                return conn.getresponse().status == 200
            finally:
                conn.close()
        except (OSError, http.client.HTTPException):
            return False

    def close(self) -> None:
        self._drop_connection()


# -- opening stores by reference ---------------------------------------


def open_store(
    ref: Union[str, os.PathLike, ResultStore, RemoteStore],
) -> Union[ResultStore, RemoteStore]:
    """A store from any reference a CLI flag or config field carries.

    ``http://host:port`` opens a :class:`RemoteStore`; anything else is
    a directory path for a local :class:`ResultStore`; an already-open
    store passes through.  This is the single point where "a store" is
    spelled, so every ``--store`` flag and fabric config field accepts
    both spellings.
    """
    if isinstance(ref, (ResultStore, RemoteStore)):
        return ref
    if isinstance(ref, str) and ref.startswith(("http://", "https://")):
        if ref.startswith("https://"):
            raise ValueError("remote store transport is plain http:// only")
        return RemoteStore(ref)
    if isinstance(ref, (str, os.PathLike)):
        return ResultStore(Path(ref))
    raise TypeError(f"cannot open a store from {type(ref).__name__}")
