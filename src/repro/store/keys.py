"""Canonical content hashing for FlowSpecs.

A :class:`~repro.exec.spec.FlowSpec` is a frozen, fully deterministic
description of one flow: the same spec always produces the same
simulated bytes.  That makes a *content hash* of the spec a valid cache
key for the flow's entire result — provided the hash is computed from a
canonical encoding (stable across processes, platforms, and dict
orderings) and salted with the versions of everything else that shapes
the output: the congestion-control registry
(:data:`repro.cc.CC_REGISTRY_VERSION`) and the engine schema
(:data:`ENGINE_SCHEMA_VERSION` — bump it whenever a simulator change
legitimately alters result bytes, and every stored entry keyed under
the old behaviour stops matching).

The encoder walks arbitrary value graphs generically: dataclasses by
field, slotted objects by slot, plain objects by ``__dict__``,
``random.Random`` by a digest of its Mersenne state, and bound methods
(the way :meth:`FaultPlan.apply <repro.robustness.faults.FaultPlan.apply>`
rides on ``Scenario.channel_hook``) by their name plus their bound
instance.  Opaque callables — lambdas, closures, free functions — have
no canonical content, so a spec carrying one raises
:class:`UnhashableSpecError` and the cache layer simply runs it fresh.

A class can exclude fields from its canonical form via a
``_CACHE_KEY_EXCLUDE`` frozenset of attribute names; ``FlowSpec`` uses
this for presentation-only fields (telemetry collection) and for the
``parent_key`` back-pointer itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import types
from typing import Optional

from repro.util.errors import ReproError

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "UnhashableSpecError",
    "canonical_encode",
    "canonical_json",
    "flow_key",
]

#: Version of the simulator's observable behaviour.  Any change that
#: legitimately alters the bytes a spec produces (loss-model draw
#: order, RTO semantics, record schemas) must bump this, invalidating
#: every cached result computed under the old behaviour.
ENGINE_SCHEMA_VERSION = 1

#: class attribute naming fields excluded from the canonical encoding
_EXCLUDE_ATTR = "_CACHE_KEY_EXCLUDE"


class UnhashableSpecError(ReproError, TypeError):
    """A spec (or something it references) has no canonical content.

    Raised for opaque callables — lambdas, closures, free functions —
    whose behaviour cannot be captured by value.  The cache layer treats
    such specs as permanently uncacheable: they run fresh every time and
    are never stored.
    """


def _encode_object_state(obj: object, path: str) -> dict:
    """Attribute map of a non-dataclass instance (slots and/or dict)."""
    state: dict = {}
    if hasattr(obj, "__dict__"):
        state.update(vars(obj))
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot != "__dict__" and hasattr(obj, slot):
                state.setdefault(slot, getattr(obj, slot))
    exclude = getattr(type(obj), _EXCLUDE_ATTR, ())
    return {
        name: canonical_encode(value, f"{path}.{name}")
        for name, value in sorted(state.items())
        if name not in exclude
    }


def canonical_encode(obj: object, path: str = "spec") -> object:
    """Reduce ``obj`` to a JSON-able structure with stable semantics.

    ``path`` is threaded through purely for error messages — an
    :class:`UnhashableSpecError` names exactly which attribute deep in
    the spec graph defeated the encoding.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-tripping form; embedding it as a
        # string keeps the hash independent of any JSON float formatting.
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [
            canonical_encode(item, f"{path}[{i}]") for i, item in enumerate(obj)
        ]
    if isinstance(obj, dict):
        return {
            str(key): canonical_encode(value, f"{path}[{key!r}]")
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, random.Random):
        # The full Mersenne state is 625 ints; its repr digest captures
        # it exactly without bloating the canonical form.
        state = hashlib.sha256(repr(obj.getstate()).encode()).hexdigest()
        return {"__random__": state}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        exclude = getattr(type(obj), _EXCLUDE_ATTR, ())
        encoded = {
            field.name: canonical_encode(
                getattr(obj, field.name), f"{path}.{field.name}"
            )
            for field in dataclasses.fields(obj)
            if field.name not in exclude
        }
        encoded["__dataclass__"] = _type_name(type(obj))
        return encoded
    if isinstance(obj, types.MethodType):
        # Bound methods (e.g. FaultPlan.apply as a channel hook) are
        # content-addressable through their bound instance.
        return {
            "__method__": obj.__func__.__qualname__,
            "__self__": canonical_encode(obj.__self__, f"{path}.__self__"),
        }
    if callable(obj):
        raise UnhashableSpecError(
            f"{path} is an opaque callable ({obj!r}); it has no canonical "
            "content, so this spec cannot be cached"
        )
    if hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__"):
        return {
            "__object__": _type_name(type(obj)),
            "state": _encode_object_state(obj, path),
        }
    raise UnhashableSpecError(
        f"{path} has unsupported type {type(obj).__name__!r} for canonical "
        "encoding"
    )


def _type_name(klass: type) -> str:
    return f"{klass.__module__}.{klass.__qualname__}"


def canonical_json(obj: object) -> str:
    """Canonical (sorted-key, compact) JSON of the canonical encoding."""
    return json.dumps(
        canonical_encode(obj), sort_keys=True, separators=(",", ":")
    )


def flow_key(spec) -> str:
    """The sha256 content key of one FlowSpec.

    Retry attempts resolve to the *original* flow's key: a spec created
    by :meth:`FlowSpec.for_attempt <repro.exec.spec.FlowSpec.for_attempt>`
    carries its parent's key in ``parent_key``, which takes precedence
    over rehashing — so a flow that succeeded on attempt 2 is stored
    (and found again) under the identity of the flow the campaign asked
    for, not under the reseeded retry spec.
    """
    parent: Optional[str] = getattr(spec, "parent_key", None)
    if parent:
        return parent
    from repro.cc import CC_REGISTRY_VERSION

    material = {
        "cc_registry_version": CC_REGISTRY_VERSION,
        "engine_schema_version": ENGINE_SCHEMA_VERSION,
        "spec": canonical_encode(spec),
    }
    return hashlib.sha256(
        json.dumps(material, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
