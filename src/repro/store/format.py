"""Result serialisation: FlowOutcome ↔ JSON payload, exactly.

The store persists everything needed to reconstruct a successful
:class:`~repro.exec.executor.FlowOutcome` *byte-identically*: the built
:class:`~repro.simulator.connection.ConnectionConfig`, the complete
:class:`~repro.simulator.metrics.FlowLog` (per-record, as compact
arrays), the flow duration, the per-flow telemetry counters when the
flow ran instrumented, plus the retry bookkeeping (failures, attempt
count) so a cached flow replays into a
:class:`~repro.robustness.campaign.CampaignReport` exactly as its live
run did.

Fidelity notes:

* floats round-trip exactly — Python's JSON writer emits the shortest
  repr and the reader parses it back to the identical IEEE-754 value;
* booleans are stored as JSON booleans (not 0/1), so re-pickled records
  compare byte-for-byte with fresh ones;
* the flow *trace* is not stored — it is re-captured from the restored
  log and the requesting spec's own metadata, which is also what makes
  one stored simulation reusable under any capture metadata.

Only successful outcomes are stored.  A quarantined flow is worth
retrying on the next campaign run, not worth caching.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from repro.exec.executor import FlowOutcome
from repro.exec.spec import FlowSpec
from repro.robustness.campaign import FlowFailure
from repro.simulator.connection import ConnectionConfig, FlowResult
from repro.simulator.metrics import (
    AckRecord,
    CwndSample,
    DataPacketRecord,
    FlowLog,
    RecoveryPhaseRecord,
    TimeoutRecord,
)
from repro.telemetry.counters import COUNTER_NAMES, CountingTelemetry

__all__ = ["SCHEMA_VERSION", "decode_outcome", "encode_outcome"]

#: On-disk payload schema.  Bump on any change to the encoding below;
#: ``ResultStore.gc`` drops entries written under older schemas.
#: 2: FlowFailure records gained ``failure_class`` (the retry taxonomy).
SCHEMA_VERSION = 2

#: counters that describe how a result was *obtained*, not what the
#: simulation did — never persisted, always reassigned on restore.
#: ``worker_crashes``/``deadline_preemptions``/``store_errors`` are
#: supervision-layer provenance: replaying them from a cache hit would
#: claim this run's infrastructure failed when it did not.
_CACHE_COUNTERS = (
    "cache_hit",
    "cache_miss",
    "worker_crashes",
    "deadline_preemptions",
    "store_errors",
)


def _encode_log(log: FlowLog) -> Dict[str, object]:
    return {
        "data_packets": [
            [
                r.transmission_id,
                r.seq,
                r.send_time,
                r.arrival_time,
                r.dropped,
                r.is_retransmission,
                r.in_timeout_recovery,
                r.subflow_id,
            ]
            for r in log.data_packets
        ],
        "acks": [
            [
                r.transmission_id,
                r.ack_seq,
                r.send_time,
                r.arrival_time,
                r.dropped,
                r.is_duplicate,
                r.subflow_id,
            ]
            for r in log.acks
        ],
        "timeouts": [
            [r.time, r.seq, r.backoff_exponent, r.rto_value, r.sequence_index]
            for r in log.timeouts
        ],
        "recovery_phases": [
            [
                r.start_time,
                r.end_time,
                r.timeouts,
                r.retransmissions,
                r.retransmissions_lost,
            ]
            for r in log.recovery_phases
        ],
        "cwnd_samples": [[s.time, s.cwnd, s.phase] for s in log.cwnd_samples],
        "delivered_payloads": log.delivered_payloads,
        "duplicate_payloads": log.duplicate_payloads,
    }


def _decode_log(data: Dict[str, object]) -> FlowLog:
    log = FlowLog(
        delivered_payloads=int(data["delivered_payloads"]),
        duplicate_payloads=int(data["duplicate_payloads"]),
    )
    for row in data["data_packets"]:
        log.record_data_send(
            DataPacketRecord(
                transmission_id=row[0],
                seq=row[1],
                send_time=row[2],
                arrival_time=row[3],
                dropped=row[4],
                is_retransmission=row[5],
                in_timeout_recovery=row[6],
                subflow_id=row[7],
            )
        )
    for row in data["acks"]:
        log.record_ack_send(
            AckRecord(
                transmission_id=row[0],
                ack_seq=row[1],
                send_time=row[2],
                arrival_time=row[3],
                dropped=row[4],
                is_duplicate=row[5],
                subflow_id=row[6],
            )
        )
    log.timeouts = [
        TimeoutRecord(
            time=row[0],
            seq=row[1],
            backoff_exponent=row[2],
            rto_value=row[3],
            sequence_index=row[4],
        )
        for row in data["timeouts"]
    ]
    log.recovery_phases = [
        RecoveryPhaseRecord(
            start_time=row[0],
            end_time=row[1],
            timeouts=row[2],
            retransmissions=row[3],
            retransmissions_lost=row[4],
        )
        for row in data["recovery_phases"]
    ]
    # Dedupe phase strings: a live run shares one str object per phase
    # (the sender passes module constants), while json.loads builds a
    # fresh str per sample.  Restoring the sharing keeps whole-log
    # pickles byte-identical to fresh ones (pickle memoises by object
    # identity, not value).
    phases: Dict[str, str] = {}
    log.cwnd_samples = [
        CwndSample(
            time=row[0], cwnd=row[1], phase=phases.setdefault(row[2], row[2])
        )
        for row in data["cwnd_samples"]
    ]
    return log


def encode_outcome(outcome: FlowOutcome) -> Dict[str, object]:
    """The JSON payload of one *successful* outcome.

    Raises :class:`ValueError` for quarantined outcomes — failure is a
    thing to retry next run, not a thing to cache.
    """
    result = outcome.result
    if result is None or not outcome.ok:
        raise ValueError(
            f"only successful outcomes are storable; {outcome.spec.flow_id!r} "
            "was quarantined"
        )
    counters: Optional[Dict[str, int]] = None
    if isinstance(result.telemetry, CountingTelemetry):
        counters = {
            name: value
            for name, value in result.telemetry.as_dict().items()
            if name not in _CACHE_COUNTERS
        }
    return {
        "flow_id": outcome.spec.flow_id,
        "attempts": outcome.attempts,
        "failures": [asdict(failure) for failure in outcome.failures],
        "result": {
            "config": asdict(result.config),
            "duration": result.duration,
            "counters": counters,
            "log": _encode_log(result.log),
        },
    }


def decode_outcome(
    payload: Dict[str, object], *, index: int, spec: FlowSpec
) -> FlowOutcome:
    """Reconstruct the FlowOutcome a stored payload encodes.

    ``spec`` is the *requesting* spec: its metadata drives trace
    re-capture and its ``telemetry`` flag decides whether the restored
    result carries a counter sink.  Restored sinks report
    ``cache_hit=1`` and zero ``cache_miss`` — the counters tell the
    truth about how this result was obtained this run.
    """
    result_data = payload["result"]
    telemetry: Optional[CountingTelemetry] = None
    if spec.telemetry:
        telemetry = CountingTelemetry()
        stored = result_data.get("counters") or {}
        for name in COUNTER_NAMES:
            if name in stored:
                setattr(telemetry, name, int(stored[name]))
        telemetry.cache_hit = 1
        telemetry.cache_miss = 0
    result = FlowResult(
        config=ConnectionConfig(**result_data["config"]),
        log=_decode_log(result_data["log"]),
        duration=result_data["duration"],
        telemetry=telemetry,
    )
    trace = None
    if spec.metadata is not None:
        # Validation (when the spec asks for it) already gated the
        # original store write; integrity of the stored bytes is the
        # store's digest check, so re-validating here would only re-run
        # a check that deterministically passes.
        from repro.traces.capture import capture_flow

        trace = capture_flow(result, spec.metadata, validate=False)
    failures: List[FlowFailure] = [
        FlowFailure(**failure) for failure in payload["failures"]
    ]
    return FlowOutcome(
        index=index,
        spec=spec,
        result=result,
        trace=trace,
        failures=failures,
        attempts=int(payload["attempts"]),
    )
