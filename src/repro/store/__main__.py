"""``python -m repro.store`` — store maintenance CLI entry point."""

from repro.store.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
