"""Maintenance CLI for result stores.

Usage::

    python -m repro.store stats  DIR [--json]
    python -m repro.store verify DIR [--quarantine | --repair]
    python -m repro.store gc     DIR [--dry-run]

``stats`` summarises entry/byte/schema counts; ``verify`` re-hashes
every entry against its integrity digest (exit 1 when anything is
corrupt; ``--quarantine`` also moves offenders aside, and ``--repair``
does the same in one store pass *and exits 0* — corruption handled is
not an error — so operators can pre-clean a store before a large
campaign); ``gc`` drops entries written under a stale payload schema
(and unreadable ones), reclaiming space that can never hit again.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.store.disk import ResultStore
from repro.store.format import SCHEMA_VERSION

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect and maintain a content-addressed flow-result store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="summarise a store directory")
    stats.add_argument("store_dir")
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    verify = sub.add_parser("verify", help="re-hash every entry")
    verify.add_argument("store_dir")
    verify.add_argument("--quarantine", action="store_true",
                        help="move corrupt entries into <store>/quarantine/")
    verify.add_argument(
        "--repair", action="store_true",
        help="quarantine all corrupt entries in one pass and exit 0 "
             "(pre-clean a store before a campaign)",
    )

    gc = sub.add_parser("gc", help="drop stale-schema and unreadable entries")
    gc.add_argument("store_dir")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without removing it")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    store = ResultStore(args.store_dir)

    if args.command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"store: {stats.summary()}")
        return 0

    if args.command == "verify":
        if args.repair:
            checked, repaired = store.repair()
            print(
                f"store: verified {checked} entries, "
                f"quarantined {len(repaired)} corrupt"
            )
            for key in repaired:
                print(f"  quarantined {key}", file=sys.stderr)
            return 0
        checked, corrupt = store.verify()
        print(f"store: verified {checked} entries, {len(corrupt)} corrupt")
        for key in corrupt:
            print(f"  corrupt {key}", file=sys.stderr)
            if args.quarantine:
                store.quarantine(key)
        if corrupt and args.quarantine:
            print(f"store: quarantined {len(corrupt)} entries")
        return 1 if corrupt else 0

    # gc
    if args.dry_run:
        stats = store.stats()
        print(
            f"store: gc --dry-run — would remove {stats.stale_entries} of "
            f"{stats.entries} entries (current schema {SCHEMA_VERSION})"
        )
        return 0
    kept, removed = store.gc()
    print(
        f"store: gc removed {removed} stale entries, kept {kept} "
        f"(schema {SCHEMA_VERSION})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
