"""Maintenance CLI for result stores.

Usage::

    python -m repro.store stats  DIR [--json]
    python -m repro.store verify DIR [--quarantine | --repair] [--json]
    python -m repro.store gc     DIR [--dry-run] [--json]
    python -m repro.store serve  DIR [--host H] [--port P]

``stats`` summarises entry/byte/schema counts; ``verify`` re-hashes
every entry against its integrity digest (exit 1 when anything is
corrupt; ``--quarantine`` also moves offenders aside, and ``--repair``
does the same in one store pass *and exits 0* — corruption handled is
not an error — so operators can pre-clean a store before a large
campaign); ``gc`` drops entries written under a stale payload schema
(and unreadable ones), reclaiming space that can never hit again.
Every maintenance subcommand takes ``--json`` for machine-readable
output, so fabric tooling and CI can parse store state without
scraping text.

``serve`` exposes the directory over HTTP
(:class:`~repro.store.remote.StoreServer`) so remote campaign workers
can share it via ``--store http://host:port``; it prints the bound URL
on stdout and serves until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.store.disk import ResultStore
from repro.store.format import SCHEMA_VERSION

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect, maintain, and serve a content-addressed flow-result store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="summarise a store directory")
    stats.add_argument("store_dir")
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    verify = sub.add_parser("verify", help="re-hash every entry")
    verify.add_argument("store_dir")
    verify.add_argument("--quarantine", action="store_true",
                        help="move corrupt entries into <store>/quarantine/")
    verify.add_argument(
        "--repair", action="store_true",
        help="quarantine all corrupt entries in one pass and exit 0 "
             "(pre-clean a store before a campaign)",
    )
    verify.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")

    gc = sub.add_parser("gc", help="drop stale-schema and unreadable entries")
    gc.add_argument("store_dir")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without removing it")
    gc.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON")

    serve = sub.add_parser(
        "serve", help="expose the store over HTTP for remote campaign workers"
    )
    serve.add_argument("store_dir")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0 = ephemeral; the bound "
                            "URL is printed on stdout)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "serve":
        from repro.store.remote import StoreServer

        server = StoreServer(args.store_dir, host=args.host, port=args.port)
        print(server.url, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0

    store = ResultStore(args.store_dir)

    if args.command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"store: {stats.summary()}")
        return 0

    if args.command == "verify":
        if args.repair:
            checked, repaired = store.repair()
            if args.json:
                print(json.dumps(
                    {"checked": checked, "corrupt": len(repaired),
                     "quarantined": sorted(repaired), "repaired": True},
                    indent=2, sort_keys=True,
                ))
            else:
                print(
                    f"store: verified {checked} entries, "
                    f"quarantined {len(repaired)} corrupt"
                )
                for key in repaired:
                    print(f"  quarantined {key}", file=sys.stderr)
            return 0
        checked, corrupt = store.verify()
        if args.quarantine:
            for key in corrupt:
                store.quarantine(key)
        if args.json:
            print(json.dumps(
                {"checked": checked, "corrupt": len(corrupt),
                 "corrupt_keys": sorted(corrupt),
                 "quarantined": sorted(corrupt) if args.quarantine else []},
                indent=2, sort_keys=True,
            ))
        else:
            print(f"store: verified {checked} entries, {len(corrupt)} corrupt")
            for key in corrupt:
                print(f"  corrupt {key}", file=sys.stderr)
            if corrupt and args.quarantine:
                print(f"store: quarantined {len(corrupt)} entries")
        return 1 if corrupt else 0

    # gc
    if args.dry_run:
        stats = store.stats()
        if args.json:
            print(json.dumps(
                {"dry_run": True, "entries": stats.entries,
                 "would_remove": stats.stale_entries,
                 "schema_version": SCHEMA_VERSION},
                indent=2, sort_keys=True,
            ))
        else:
            print(
                f"store: gc --dry-run — would remove {stats.stale_entries} of "
                f"{stats.entries} entries (current schema {SCHEMA_VERSION})"
            )
        return 0
    kept, removed = store.gc()
    if args.json:
        print(json.dumps(
            {"dry_run": False, "kept": kept, "removed": removed,
             "schema_version": SCHEMA_VERSION},
            indent=2, sort_keys=True,
        ))
    else:
        print(
            f"store: gc removed {removed} stale entries, kept {kept} "
            f"(schema {SCHEMA_VERSION})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
