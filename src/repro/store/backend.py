"""CachedBackend: hit/miss partitioning around any executor backend.

Wraps a :class:`~repro.exec.executor.SerialBackend`,
:class:`~repro.exec.executor.ProcessPoolBackend`, or
:class:`~repro.exec.executor.AutoBackend` (anything with the backend
``map`` protocol) and consults a :class:`~repro.store.disk.ResultStore`
before running anything:

1. every payload's spec is content-hashed (:func:`~repro.store.keys.flow_key`);
2. hits are decoded straight from the store — the simulator never runs;
3. only the misses go to the inner backend, exactly as a smaller batch;
4. fresh successful results are persisted, and the merged outcome list
   is returned **in the original payload order**, so a cached campaign
   is byte-identical to an uncached one.

Because all-hit batches hand the inner backend an empty list, a warm
rerun of a pool campaign never even spawns workers — resuming a killed
255-flow campaign costs only the flows that were still missing.

Specs that cannot be content-hashed (opaque callables in their graph)
run fresh every time and are never stored; corrupt entries are
quarantined by the store and recomputed here.  The partition of the
last ``map`` call is kept on :attr:`last_stats` for benchmarks and
reports.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.executor import FlowOutcome, SerialBackend
from repro.store.breaker import StoreCircuitBreaker
from repro.store.format import decode_outcome, encode_outcome
from repro.store.remote import open_store
from repro.store.keys import UnhashableSpecError, flow_key
from repro.telemetry.counters import CountingTelemetry

__all__ = ["CachedBackend"]


class CachedBackend:
    """A result-store read-through/write-through cache over a backend.

    ``refresh=True`` (the CLI's ``--no-cache``) skips all reads but
    still writes: every flow recomputes and overwrites its entry —
    cache repair, not cache bypass.

    Store I/O goes through a fresh
    :class:`~repro.store.breaker.StoreCircuitBreaker` per ``map`` call:
    a failing disk degrades the batch to uncached execution
    (``cache_state="error"`` on the affected outcomes) instead of
    aborting it.
    """

    def __init__(self, store, inner=None, *, refresh: bool = False) -> None:
        if isinstance(store, (str, os.PathLike)):
            # Accepts a directory path or an http:// store-server URL.
            store = open_store(store)
        self.store = store
        self.inner = inner if inner is not None else SerialBackend()
        self.refresh = refresh
        #: partition of the last map call: hits/misses/corrupt/uncacheable
        self.last_stats: Optional[Dict[str, int]] = None

    @property
    def name(self) -> str:
        return f"cached[{getattr(self.inner, 'name', 'backend')}]"

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List[FlowOutcome]:
        items = list(items)
        # Give the inner backend its pre-batch hook *before* the store
        # reads below — a chaos wrapper corrupting entries must corrupt
        # them where this partition will actually read them.  The hook
        # is documented idempotent (inner.map fires it again for the
        # miss batch).
        prepare = getattr(self.inner, "prepare_batch", None)
        if prepare is not None:
            prepare(items)
        breaker = StoreCircuitBreaker(self.store)
        outcomes: List[Optional[FlowOutcome]] = [None] * len(items)
        misses = []  # (position, payload, key, was_corrupt, degraded)
        hits = corrupt = uncacheable = errors = 0
        for position, payload in enumerate(items):
            index, spec, _policy = payload
            try:
                key = flow_key(spec)
            except UnhashableSpecError:
                key = None
                uncacheable += 1
            stored = None
            was_corrupt = degraded = False
            if key is not None and not self.refresh:
                stored, was_corrupt, degraded = breaker.get(key)
                if was_corrupt:
                    corrupt += 1
            if stored is not None:
                outcome = decode_outcome(stored, index=index, spec=spec)
                outcome.cache_state = "hit"
                outcomes[position] = outcome
                hits += 1
                if progress is not None:
                    progress(hits)
            else:
                misses.append((position, payload, key, was_corrupt, degraded))

        if misses:
            inner_progress = (
                None if progress is None else (lambda done: progress(hits + done))
            )
            fresh = self.inner.map(
                fn, [payload for _, payload, _, _, _ in misses], inner_progress
            )
            for (position, _payload, key, was_corrupt, degraded), outcome in zip(
                misses, fresh
            ):
                if outcome.skipped:
                    # A signal drain never ran this spec: nothing to
                    # persist, nothing to label.
                    outcomes[position] = outcome
                    continue
                stored_ok = True
                if key is not None and outcome.ok:
                    stored_ok = breaker.put(key, encode_outcome(outcome))
                if degraded or not stored_ok:
                    outcome.cache_state = "error"
                    errors += 1
                else:
                    outcome.cache_state = "corrupt" if was_corrupt else "miss"
                if outcome.result is not None and isinstance(
                    outcome.result.telemetry, CountingTelemetry
                ):
                    # Stamped after the store write: persisted counters
                    # describe the simulation, live ones also say how
                    # this run obtained the result.
                    outcome.result.telemetry.cache_miss = 1
                    if outcome.cache_state == "error":
                        outcome.result.telemetry.store_errors = 1
                outcomes[position] = outcome

        self.last_stats = {
            "items": len(items),
            "hits": hits,
            "misses": len(misses),
            "corrupt": corrupt,
            "uncacheable": uncacheable,
            "errors": errors,
        }
        return outcomes
