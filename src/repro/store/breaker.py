"""A circuit breaker between the cache layer and the result store.

A result store is an optimisation, never a dependency: when the disk
fills, a shard directory loses its permissions, or entries corrupt
faster than quarantine can absorb, a campaign must degrade to uncached
execution — not abort.  :class:`StoreCircuitBreaker` wraps the three
store operations the cache layer performs (``get``, ``put``,
``quarantine``) and absorbs their :class:`OSError`\\ s: each failure is
counted, and after ``threshold`` *consecutive* failures the circuit
opens — every subsequent operation short-circuits to "miss"/"don't
persist" without touching the disk at all, with one loud stderr note so
the operator learns the campaign is running uncached.

A success while the circuit is still closed resets the consecutive
count (a blip is a blip); an open circuit stays open for the breaker's
lifetime — one ``CachedBackend.map`` batch — because a disk that just
filled does not un-fill mid-campaign, and re-probing it per flow would
pay the failure latency hundreds of times.  The next campaign run gets
a fresh breaker and re-probes naturally.

The flows executed while the breaker is open (or whose individual store
operation failed) surface as ``cache_state="error"`` on their outcomes,
which the executor rolls up into ``CampaignReport.cache_errors`` and
the telemetry layer counts as ``store_errors`` — visible, but never
serialised into report bytes, so a degraded run still byte-matches a
healthy one.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, Tuple

__all__ = ["StoreCircuitBreaker"]


class StoreCircuitBreaker:
    """Fail-open wrapper around a :class:`~repro.store.disk.ResultStore`."""

    def __init__(self, store, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.store = store
        self.threshold = threshold
        #: total failed operations (monotone; telemetry's store_errors)
        self.errors = 0
        self._consecutive = 0
        self._open = False
        self._noted = False

    @property
    def open(self) -> bool:
        """True once the breaker has given up on the store."""
        return self._open

    def get(self, key: str) -> Tuple[Optional[Dict[str, object]], bool, bool]:
        """``(payload, was_corrupt, degraded)`` — store semantics plus a
        degraded flag.

        ``degraded=True`` means the store was not consulted (open
        circuit) or the read itself failed: the caller must treat the
        flow as an uncached miss and *not* blame the entry.
        """
        if self._open:
            return None, False, True
        try:
            payload, was_corrupt = self.store.get(key)
        except OSError as error:
            self._record_failure("read", error)
            return None, False, True
        self._consecutive = 0
        return payload, was_corrupt, False

    def put(self, key: str, payload: Dict[str, object]) -> bool:
        """Persist if the circuit allows; True when the write landed."""
        if self._open:
            return False
        try:
            self.store.put(key, payload)
        except OSError as error:
            self._record_failure("write", error)
            return False
        self._consecutive = 0
        return True

    def quarantine(self, key: str) -> bool:
        """Quarantine if the circuit allows; True when the move landed."""
        if self._open:
            return False
        try:
            self.store.quarantine(key)
        except OSError as error:
            self._record_failure("quarantine", error)
            return False
        self._consecutive = 0
        return True

    def _record_failure(self, op: str, error: OSError) -> None:
        self.errors += 1
        self._consecutive += 1
        if self._consecutive >= self.threshold and not self._open:
            self._open = True
            if not self._noted:
                self._noted = True
                print(
                    f"store: circuit breaker OPEN after "
                    f"{self._consecutive} consecutive failures "
                    f"(last: {op}: {type(error).__name__}: {error}); "
                    "continuing UNCACHED — results from here on are "
                    "computed fresh and not persisted",
                    file=sys.stderr,
                    flush=True,
                )
