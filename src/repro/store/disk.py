"""The on-disk content-addressed result store.

Layout — two-hex-character shards under one root, one gzipped entry
per flow::

    <root>/
      ab/abcdef01….json.gz     # entry keyed by its spec's content hash
      cd/cdef2345….json.gz
      quarantine/              # corrupt entries, moved aside verbatim

Each entry decompresses to two lines: a small JSON header
``{schema, key, flow_id, digest}`` and the payload's canonical JSON,
where ``digest`` is the sha256 of the payload line's bytes.  Keeping
the digested bytes verbatim in the file means reads hash what they
just read — the multi-megabyte payload is never *re*-serialised to
check integrity, which is what makes a warm cache hit cheap.  Reads
verify the digest (and the key ↔ filename binding); anything that
fails — truncated gzip, mangled JSON, digest mismatch — is
*quarantined* (moved aside for post-mortem, never silently deleted)
and reported as a miss, so a corrupted store degrades into
recomputation instead of poisoning campaigns.

Writes are atomic: the entry is written to a same-directory temp
file and ``os.replace``d into place, so a killed campaign can never
leave a half-written entry where a future read would find it.  The
temp name embeds pid, thread id, and a per-process counter, so any
number of concurrent writers — processes *or* threads (the HTTP
store server handles requests on a thread pool) — each own a private
temp file and can never interleave bytes.  Racing writers of the
same key then collide only at the final ``os.replace``, where the
loser simply overwrites the winner with identical bytes (same key ⇒
same payload ⇒ same file bytes): a silent no-op.  Gzip frames are
stamped with ``mtime=0`` so the same payload always produces the
same file bytes; compression runs at level 1 — a cache trades disk
for time, and heavier levels spend more per write than a campaign
ever gets back.

:func:`encode_entry` / :func:`decode_entry` are the entry format
itself, factored out of the store so the HTTP transport
(:mod:`repro.store.remote`) can ship verbatim entry bytes and both
ends validate the same digests.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import itertools
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.format import SCHEMA_VERSION
from repro.util.errors import ReproError

__all__ = [
    "CorruptEntryError",
    "ResultStore",
    "StoreStats",
    "decode_entry",
    "encode_entry",
    "parse_entry",
]

_SUFFIX = ".json.gz"
_QUARANTINE_DIR = "quarantine"

#: Disambiguates temp files between threads of one process; combined
#: with pid + thread id in the temp name, every writer is unique.
_TMP_COUNTER = itertools.count()


class CorruptEntryError(ReproError, ValueError):
    """A stored entry failed its integrity check on read."""

    def __init__(self, key: str, reason: str) -> None:
        self.key = key
        self.reason = reason
        super().__init__(f"corrupt store entry {key[:12]}…: {reason}")


@dataclass
class StoreStats:
    """What ``python -m repro.store stats`` reports."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    quarantined: int = 0
    #: schema version -> entry count; anything not on the current
    #: schema is stale and reclaimable by ``gc``
    schemas: Dict[int, int] = field(default_factory=dict)

    @property
    def stale_entries(self) -> int:
        return sum(
            count
            for schema, count in self.schemas.items()
            if schema != SCHEMA_VERSION
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "quarantined": self.quarantined,
            "schema_version": SCHEMA_VERSION,
            "schemas": {str(k): v for k, v in sorted(self.schemas.items())},
            "stale_entries": self.stale_entries,
        }

    def summary(self) -> str:
        return (
            f"{self.entries} entries ({self.total_bytes} bytes) under "
            f"{self.root}; {self.stale_entries} stale, "
            f"{self.quarantined} quarantined"
        )


# -- entry format (shared by the on-disk store and the HTTP transport)


def encode_entry(key: str, payload: Dict[str, object]) -> bytes:
    """The exact file bytes for one entry.

    Plain JSON, not keys.canonical_json: payloads are already
    JSON-native (format.encode_outcome built them), and floats must
    land in the file as bare shortest-repr literals so the stored
    bytes parse straight back into the payload.  Deterministic:
    gzip mtime is pinned to 0, so the same payload always encodes to
    the same bytes — which is what lets the remote transport compare
    and re-verify entries byte-for-byte.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    header = {
        "schema": SCHEMA_VERSION,
        "key": key,
        "flow_id": payload.get("flow_id", ""),
        "digest": hashlib.sha256(body).hexdigest(),
    }
    buffer = io.BytesIO()
    with gzip.GzipFile(
        fileobj=buffer, mode="wb", mtime=0, compresslevel=1
    ) as zipped:
        zipped.write(
            json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        )
        zipped.write(b"\n")
        zipped.write(body)
    return buffer.getvalue()


def parse_entry(raw: bytes, key: str) -> Tuple[Dict[str, object], bytes]:
    """``(header, payload_bytes)`` from one entry's file bytes, with
    the header checked for shape and key ↔ filename binding but the
    payload digest *not* yet verified (that is :func:`decode_entry`)."""
    try:
        blob = gzip.decompress(raw)
    except (OSError, EOFError) as error:
        raise CorruptEntryError(key, f"unreadable entry: {error}") from None
    head, sep, body = blob.partition(b"\n")
    if not sep:
        raise CorruptEntryError(key, "entry has no header line")
    try:
        header = json.loads(head)
    except ValueError as error:
        raise CorruptEntryError(
            key, f"unparseable header: {error}"
        ) from None
    if not isinstance(header, dict):
        raise CorruptEntryError(key, "header is not an object")
    if header.get("key") != key:
        raise CorruptEntryError(
            key, f"header key {header.get('key')!r} != filename key"
        )
    return header, body


def decode_entry(raw: bytes, key: str) -> Optional[Dict[str, object]]:
    """The verified payload inside one entry's file bytes.

    None when the entry was written under a stale schema (gc's
    business, not corruption); :class:`CorruptEntryError` when any
    integrity check fails.
    """
    header, body = parse_entry(raw, key)
    if header.get("schema") != SCHEMA_VERSION:
        return None  # stale, not corrupt: gc's business
    if hashlib.sha256(body).hexdigest() != header.get("digest"):
        raise CorruptEntryError(key, "payload digest mismatch")
    try:
        payload = json.loads(body)
    except ValueError as error:  # digest collision-with-garbage only
        raise CorruptEntryError(
            key, f"unparseable payload: {error}"
        ) from None
    if not isinstance(payload, dict):
        raise CorruptEntryError(key, "payload is not an object")
    return payload


class ResultStore:
    """Content-addressed persistence for flow results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"

    # -- paths ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    def _entry_paths(self) -> Iterator[Path]:
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2 and shard.name != _QUARANTINE_DIR:
                yield from sorted(shard.glob(f"*{_SUFFIX}"))

    # -- write ---------------------------------------------------------

    def put(self, key: str, payload: Dict[str, object]) -> Path:
        """Persist one payload atomically under its content key."""
        return self.put_bytes(key, encode_entry(key, payload))

    def put_bytes(self, key: str, raw: bytes) -> Path:
        """Persist pre-encoded entry bytes atomically under ``key``.

        The raw side of :meth:`put`, used by the HTTP store server to
        land transported entries without a decode → re-encode round
        trip.  Callers own validation (:func:`decode_entry`); this
        method owns only atomicity.  The temp name is unique per
        writer (pid + thread id + counter), so concurrent same-key
        writers never share a temp file; the losing ``os.replace``
        lands identical bytes over identical bytes — a silent no-op.
        """
        target = self.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.parent / (
            f".{key}.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_COUNTER)}.tmp"
        )
        try:
            with open(tmp, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)  # only present on write failure
        return target

    # -- read ----------------------------------------------------------

    def read_bytes(self, key: str) -> Optional[bytes]:
        """Verbatim entry file bytes, or None when absent.

        The raw side of :meth:`load`, used by the HTTP store server to
        ship entries without a decode → re-encode round trip.
        """
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload, or None when absent / written under a
        stale schema.  Raises :class:`CorruptEntryError` when the entry
        exists but fails integrity."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CorruptEntryError(key, f"unreadable entry: {error}") from None
        return decode_entry(raw, key)

    def get(self, key: str) -> Tuple[Optional[Dict[str, object]], bool]:
        """Lenient read: ``(payload_or_None, was_corrupt)``.

        Corrupt entries are quarantined as a side effect so the next
        read of the same key is a clean miss.
        """
        try:
            return self.load(key), False
        except CorruptEntryError:
            self.quarantine(key)
            return None, True

    def _read_entry(
        self, path: Path, key: str
    ) -> Tuple[Dict[str, object], bytes]:
        """``(header, payload_bytes)`` of one entry file, unverified."""
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise CorruptEntryError(key, f"unreadable entry: {error}") from None
        return parse_entry(raw, key)

    def quarantine(self, key: str) -> Optional[Path]:
        """Move a (presumably corrupt) entry aside; None when absent."""
        path = self.path_for(key)
        if not path.exists():
            return None
        target_dir = self.root / _QUARANTINE_DIR
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        os.replace(path, target)
        return target

    # -- maintenance ---------------------------------------------------

    def stats(self) -> StoreStats:
        stats = StoreStats(root=str(self.root))
        for path in self._entry_paths():
            stats.entries += 1
            stats.total_bytes += path.stat().st_size
            try:
                header, _ = self._read_entry(path, path.name[: -len(_SUFFIX)])
                schema = int(header.get("schema", -1))
            except (CorruptEntryError, TypeError, ValueError):
                schema = -1
            stats.schemas[schema] = stats.schemas.get(schema, 0) + 1
        quarantine = self.root / _QUARANTINE_DIR
        if quarantine.is_dir():
            stats.quarantined = sum(1 for _ in quarantine.glob(f"*{_SUFFIX}"))
        return stats

    def verify(self) -> Tuple[int, List[str]]:
        """Re-hash every entry; ``(checked, corrupt_keys)``.

        Read-only: corrupt entries are reported, not moved — pass the
        keys to :meth:`quarantine` (the CLI's ``verify --quarantine``)
        to act on the findings.
        """
        checked = 0
        corrupt: List[str] = []
        for path in self._entry_paths():
            key = path.name[: -len(_SUFFIX)]
            checked += 1
            try:
                self.load(key)
            except CorruptEntryError:
                corrupt.append(key)
        return checked, corrupt

    def repair(self) -> Tuple[int, List[str]]:
        """Quarantine every corrupt entry in one pass; ``(checked, repaired)``.

        The write side of :meth:`verify` (the CLI's ``verify --repair``):
        operators pre-clean a store before a large campaign so no flow
        pays the corrupt-read-then-quarantine detour mid-run.  Stale
        schemas are left for :meth:`gc` — stale is not broken.
        """
        checked, corrupt = self.verify()
        repaired: List[str] = []
        for key in corrupt:
            if self.quarantine(key) is not None:
                repaired.append(key)
        return checked, repaired

    def gc(self) -> Tuple[int, int]:
        """Drop stale-schema and unreadable entries; ``(kept, removed)``."""
        kept = 0
        removed = 0
        for path in self._entry_paths():
            key = path.name[: -len(_SUFFIX)]
            stale = False
            try:
                header, _ = self._read_entry(path, key)
                stale = header.get("schema") != SCHEMA_VERSION
            except CorruptEntryError:
                stale = True
            if stale:
                path.unlink()
                removed += 1
            else:
                kept += 1
        return kept, removed
