"""Ambient store configuration (the CLI's ``--store`` plumbing).

Mirrors :func:`repro.robustness.faults.fault_scope` and
:func:`repro.telemetry.telemetry_scope`: a ContextVar scope installs a
:class:`StoreConfig`, and :meth:`Executor.run
<repro.exec.executor.Executor.run>` wraps its backend in a
:class:`~repro.store.backend.CachedBackend` whenever one is ambient —
which is how ``--store DIR`` reaches every executor-driven campaign and
sweep without threading a parameter through 18 experiment drivers.

Like the other ambient scopes this does **not** cross a spawn boundary;
that is fine, because cache partitioning happens in the parent process
(the pool only ever sees the misses).
"""

from __future__ import annotations

import contextlib
import os
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.store.disk import ResultStore
from repro.store.remote import RemoteStore, open_store

__all__ = ["StoreConfig", "current_store", "current_store_config", "store_scope"]


@dataclass(frozen=True)
class StoreConfig:
    """The ambient caching policy: where, and whether to read back."""

    store: Union[ResultStore, RemoteStore]
    #: True = ignore existing entries but still write fresh ones
    #: (the CLI's ``--no-cache``)
    refresh: bool = False


_ambient_store: ContextVar[Optional[StoreConfig]] = ContextVar(
    "repro_ambient_store", default=None
)


def current_store_config() -> Optional[StoreConfig]:
    """The ambient config installed by :func:`store_scope`, if any."""
    return _ambient_store.get()


def current_store() -> Optional[ResultStore]:
    """The ambient store itself, if any."""
    config = _ambient_store.get()
    return config.store if config is not None else None


@contextlib.contextmanager
def store_scope(
    store: Optional[Union[str, os.PathLike, ResultStore, RemoteStore]],
    *,
    refresh: bool = False,
) -> Iterator[Optional[Union[ResultStore, RemoteStore]]]:
    """Install ``store`` ambiently for the duration of the block.

    ``store=None`` is a no-op scope (so callers can pass an optional
    CLI argument straight through); a directory string or path is
    opened as a :class:`ResultStore` rooted there, and an ``http://``
    URL as a :class:`~repro.store.remote.RemoteStore` client.
    """
    if store is None:
        yield None
        return
    if isinstance(store, (str, os.PathLike)):
        store = open_store(store)
    token = _ambient_store.set(StoreConfig(store=store, refresh=refresh))
    try:
        yield store
    finally:
        _ambient_store.reset(token)
