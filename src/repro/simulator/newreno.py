"""TCP NewReno sender: partial-ACK-aware fast recovery (RFC 6582).

The paper's related work ([23], Parvez et al.) models NewReno, and the
paper positions Reno as "the basis of the other TCP versions".  This
extension lets the simulator answer the obvious follow-up: how much of
the HSR degradation is Reno-specific?

Difference from :class:`~repro.simulator.reno.RenoSender`: during fast
recovery a *partial* ACK (one that advances ``snd_una`` but not past
the recovery point) immediately retransmits the next missing segment
and keeps the sender in fast recovery, instead of deflating the window
— so a burst of losses within one window costs one fast-recovery
episode rather than a likely retransmission timeout.
"""

from __future__ import annotations

from repro.simulator.packet import AckSegment
from repro.simulator.reno import _FAST_RECOVERY, RenoSender

__all__ = ["NewRenoSender"]


class NewRenoSender(RenoSender):
    """Reno plus RFC 6582 partial-ACK handling in fast recovery."""

    __slots__ = ()

    def _on_new_ack(self, ack: AckSegment, arrival_time: float) -> None:
        if self._phase == _FAST_RECOVERY and ack.ack_seq < self._recover_point:
            self._on_partial_ack(ack, arrival_time)
            return
        super()._on_new_ack(ack, arrival_time)

    def _on_partial_ack(self, ack: AckSegment, arrival_time: float) -> None:
        """RFC 6582: retransmit the next hole, stay in fast recovery."""
        newly_acked = ack.ack_seq - self.snd_una
        tel_records = self._tel_records
        for seq in range(self.snd_una, ack.ack_seq):
            self._send_info.pop(seq, None)
            if tel_records is not None:
                tel_records.pop(seq, None)
        self.snd_una = ack.ack_seq
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        # Deflate by the amount acknowledged, then retransmit the next
        # missing segment straight away.
        self.cwnd = max(self.cwnd - newly_acked + 1.0, 1.0)
        self._log.record_cwnd(self._simulator.now, self.cwnd, self._phase)
        self._transmit(self.snd_una, is_retransmission=True)
        self._restart_rto_timer()
