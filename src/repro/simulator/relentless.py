"""Relentless congestion control: decrease by exactly what was lost.

Mathis's Relentless TCP (IETF draft, 2009; modelled analytically in
"Analytical Model of TCP Relentless Congestion Control",
arXiv:1102.3270) replaces the multiplicative decrease of fast recovery
with a *proportional* one: every segment retransmitted during a
recovery episode shrinks the window by one segment (``decrement``
tunable), so a window of ``W`` losing ``L`` segments resumes at
``W − L`` instead of ``W/2``.  Under low-probability random loss —
exactly the non-congestive HSR regime the paper measures — this keeps
the window near the clamp where Reno saws between ``W/2`` and ``W``.

Built on :class:`~repro.simulator.newreno.NewRenoSender`: the partial
ACKs of RFC 6582 recovery are how additional losses in the same window
are detected, and each one charges a further ``decrement``.  Timeout
behaviour is untouched — an RTO still collapses to slow start, so the
paper's lossy-timeout-recovery channel applies to Relentless in full.
"""

from __future__ import annotations

from repro.cc.info import RelentlessParams
from repro.simulator.newreno import NewRenoSender
from repro.simulator.packet import AckSegment
from repro.simulator.sender_base import _DUPACK_THRESHOLD, _MIN_SSTHRESH

__all__ = ["RelentlessSender"]


class RelentlessSender(NewRenoSender):
    """NewReno recovery with per-loss (not multiplicative) decrease."""

    __slots__ = ("decrement",)

    def __init__(self, *args, decrement: float = 1.0, **kwargs) -> None:
        params = RelentlessParams(decrement=decrement)
        super().__init__(*args, **kwargs)
        self.decrement = params.decrement

    def _on_loss_event(self) -> None:
        # One loss detected so far: the post-recovery window (ssthresh)
        # gives back exactly one decrement.  The +3 inflation mirrors
        # Reno — the three duplicate ACKs have left the network.
        self.ssthresh = max(self.cwnd - self.decrement, _MIN_SSTHRESH)
        self.cwnd = self.ssthresh + _DUPACK_THRESHOLD

    def _on_partial_ack(self, ack: AckSegment, arrival_time: float) -> None:
        # Each partial ACK exposes one more hole in the window: another
        # lost segment, another decrement off the recovery exit point.
        self.ssthresh = max(self.ssthresh - self.decrement, _MIN_SSTHRESH)
        super()._on_partial_ack(ack, arrival_time)
