"""Retransmission-timeout estimation (RFC 6298) with exponential backoff.

The estimator keeps the classic smoothed RTT / RTT-variance pair and
derives ``RTO = SRTT + max(G, K·RTTVAR)``.  Consecutive timeouts double
the timer up to ``64×`` the current base value — the cap the paper
describes ("this doubling will continue until the timer reaches 64T",
Section III-B) and mirrors in its ``f(p)`` polynomial (Eq. 14).
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError

__all__ = ["RtoEstimator", "MAX_BACKOFF_FACTOR"]

#: Exponential backoff cap: the timer never exceeds 64x its base value.
MAX_BACKOFF_FACTOR = 64

_ALPHA = 1.0 / 8.0  # RFC 6298 smoothing gain for SRTT
_BETA = 1.0 / 4.0  # RFC 6298 smoothing gain for RTTVAR
_K = 4.0  # RTTVAR multiplier


class RtoEstimator:
    """RFC 6298 RTO computation plus the 64x exponential backoff."""

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        clock_granularity: float = 0.01,
    ) -> None:
        if initial_rto <= 0.0:
            raise ConfigurationError(f"initial_rto must be positive, got {initial_rto}")
        if min_rto <= 0.0 or max_rto < min_rto:
            raise ConfigurationError(
                f"need 0 < min_rto <= max_rto, got {min_rto}, {max_rto}"
            )
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = clock_granularity
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._has_sample = False
        self._backoff_exponent = 0

    @property
    def backoff_exponent(self) -> int:
        """Number of consecutive backoffs applied (0 = none)."""
        return self._backoff_exponent

    @property
    def base_rto(self) -> float:
        """The un-backed-off timer value."""
        if not self._has_sample:
            return self._clamp(self.initial_rto)
        return self._clamp(self.srtt + max(self.granularity, _K * self.rttvar))

    @property
    def current_rto(self) -> float:
        """The timer value including exponential backoff (capped at 64x)."""
        factor = min(2**self._backoff_exponent, MAX_BACKOFF_FACTOR)
        return min(self.base_rto * factor, self.max_rto * MAX_BACKOFF_FACTOR)

    def on_measurement(self, rtt_sample: float) -> None:
        """Fold in an RTT sample (Karn's rule: callers must only pass
        samples from segments that were never retransmitted)."""
        if rtt_sample <= 0.0:
            raise ConfigurationError(f"rtt sample must be positive, got {rtt_sample}")
        if not self._has_sample:
            self.srtt = rtt_sample
            self.rttvar = rtt_sample / 2.0
            self._has_sample = True
        else:
            self.rttvar = (1.0 - _BETA) * self.rttvar + _BETA * abs(
                self.srtt - rtt_sample
            )
            self.srtt = (1.0 - _ALPHA) * self.srtt + _ALPHA * rtt_sample

    def on_timeout(self) -> None:
        """Apply one exponential backoff step (timer doubles, cap 64x)."""
        if 2**self._backoff_exponent < MAX_BACKOFF_FACTOR:
            self._backoff_exponent += 1

    def on_recovery(self) -> None:
        """A new ACK arrived: collapse the backoff."""
        self._backoff_exponent = 0

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min_rto), self.max_rto)
