"""Packet records exchanged between the TCP sender and receiver.

Segments carry a *transmission id* unique per wire transmission (the
original send and each retransmission of the same sequence number get
distinct ids) so the trace layer can reconstruct exactly which copy of
a packet arrived — the mechanism behind the paper's spurious-timeout
classification ("the receiver will receive two packets with the same
payload").

**Pooling.**  Packets are by far the most-allocated objects of a run
(one :class:`Segment` per wire transmission, one :class:`AckSegment`
per ACK), and every one of them is dead the moment its delivery or
drop callback returns — nothing downstream retains a packet, only the
plain-integer ``transmission_id`` recorded in the flow log.  A
:class:`PacketPool` therefore recycles them through per-type free
lists: the sender/receiver acquire from the pool, and the terminal
end of each packet's life (the link's drop branch, or the consumer
callback after processing a delivery) releases it back.  Segments are
mutable for exactly this reason; code outside the pool must treat a
packet as immutable for its in-flight lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["AckSegment", "PacketPool", "Segment"]


@dataclass(slots=True)
class Segment:
    """A data segment of one MSS.

    ``seq`` numbers segments in packets (not bytes) — the model layer
    reasons in MSS units throughout, following the paper.
    """

    seq: int
    transmission_id: int
    send_time: float
    is_retransmission: bool = False
    in_timeout_recovery: bool = False
    subflow_id: int = 0


@dataclass(slots=True)
class AckSegment:
    """A cumulative acknowledgement.

    ``ack_seq`` is the next sequence number the receiver expects; an
    ACK therefore acknowledges every segment below it (TCP's cumulative
    acknowledgement, which is why a single surviving ACK can cancel a
    whole round's worth of losses — paper Fig. 11).
    """

    ack_seq: int
    transmission_id: int
    send_time: float
    is_duplicate: bool = False
    subflow_id: int = 0


class PacketPool:
    """Free-list reuse of :class:`Segment`/:class:`AckSegment` objects.

    One pool serves one flow (sender, receiver, and links share it), so
    a recycled object can never leak between concurrently running
    flows.  Releasing an object the pool did not create is allowed —
    the free list only cares about the type — which keeps third-party
    senders that construct their own segments compatible with a pooled
    receiver.

    The pool never shrinks; its high-water mark is the flow's maximum
    in-flight packet count (a few dozen), so memory is bounded and
    steady-state rounds allocate nothing.
    """

    __slots__ = ("_segments", "_acks")

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._acks: List[AckSegment] = []

    # -- acquisition ---------------------------------------------------

    def segment(
        self,
        seq: int,
        transmission_id: int,
        send_time: float,
        is_retransmission: bool = False,
        in_timeout_recovery: bool = False,
        subflow_id: int = 0,
    ) -> Segment:
        """A :class:`Segment` with the given fields, recycled if possible."""
        free = self._segments
        if free:
            packet = free.pop()
            packet.seq = seq
            packet.transmission_id = transmission_id
            packet.send_time = send_time
            packet.is_retransmission = is_retransmission
            packet.in_timeout_recovery = in_timeout_recovery
            packet.subflow_id = subflow_id
            return packet
        return Segment(
            seq, transmission_id, send_time,
            is_retransmission, in_timeout_recovery, subflow_id,
        )

    def ack(
        self,
        ack_seq: int,
        transmission_id: int,
        send_time: float,
        is_duplicate: bool = False,
        subflow_id: int = 0,
    ) -> AckSegment:
        """An :class:`AckSegment` with the given fields, recycled if possible."""
        free = self._acks
        if free:
            packet = free.pop()
            packet.ack_seq = ack_seq
            packet.transmission_id = transmission_id
            packet.send_time = send_time
            packet.is_duplicate = is_duplicate
            packet.subflow_id = subflow_id
            return packet
        return AckSegment(
            ack_seq, transmission_id, send_time, is_duplicate, subflow_id
        )

    # -- release -------------------------------------------------------

    def release_segment(self, packet: Segment) -> None:
        """Return a data segment to the free list.

        The caller must hold the only live reference: a released packet
        is mutated by the next :meth:`segment` call.
        """
        self._segments.append(packet)

    def release_ack(self, packet: AckSegment) -> None:
        """Return an ACK segment to the free list (same contract)."""
        self._acks.append(packet)

    def release(self, packet) -> None:
        """Type-dispatching release for callers holding either kind."""
        if type(packet) is Segment:
            self._segments.append(packet)
        elif type(packet) is AckSegment:
            self._acks.append(packet)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a poolable packet: {packet!r}")

    # -- introspection (tests / diagnostics) ---------------------------

    @property
    def free_segments(self) -> int:
        return len(self._segments)

    @property
    def free_acks(self) -> int:
        return len(self._acks)
