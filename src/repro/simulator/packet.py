"""Packet records exchanged between the TCP sender and receiver.

Segments carry a *transmission id* unique per wire transmission (the
original send and each retransmission of the same sequence number get
distinct ids) so the trace layer can reconstruct exactly which copy of
a packet arrived — the mechanism behind the paper's spurious-timeout
classification ("the receiver will receive two packets with the same
payload").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Segment", "AckSegment"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A data segment of one MSS.

    ``seq`` numbers segments in packets (not bytes) — the model layer
    reasons in MSS units throughout, following the paper.
    """

    seq: int
    transmission_id: int
    send_time: float
    is_retransmission: bool = False
    in_timeout_recovery: bool = False
    subflow_id: int = 0


@dataclass(frozen=True, slots=True)
class AckSegment:
    """A cumulative acknowledgement.

    ``ack_seq`` is the next sequence number the receiver expects; an
    ACK therefore acknowledges every segment below it (TCP's cumulative
    acknowledgement, which is why a single surviving ACK can cancel a
    whole round's worth of losses — paper Fig. 11).
    """

    ack_seq: int
    transmission_id: int
    send_time: float
    is_duplicate: bool = False
    subflow_id: int = 0
