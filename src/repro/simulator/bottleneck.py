"""A bandwidth-limited bottleneck link with a drop-tail queue.

The paper's server side is a 100 Mbps ECS instance — fast enough that
its flows are never bandwidth-limited, which is why the base
:class:`~repro.simulator.channel.Link` models only delay + loss.  This
extension makes congestion *endogenous* for studies beyond the paper's
scope: packets are serialised at ``rate_pps``, queue in a finite FIFO
buffer, and overflow drops produce the congestive losses that TCP's
AIMD actually probes for.

Usage: pass ``bottleneck`` to :func:`repro.simulator.connection.run_flow`
or wire a :class:`BottleneckLink` manually in place of the data link.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulator.channel import LossModel, NoLoss, _observed_delivery
from repro.simulator.engine import Simulator
from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import ConfigurationError

__all__ = ["BottleneckLink"]


class BottleneckLink:
    """FIFO queue + serialisation + propagation + optional random loss.

    Packet lifecycle: on ``send`` the packet first passes the (optional)
    random loss model, then enters the queue if there is room (else a
    drop-tail loss), is serialised at ``rate_pps`` packets/second, and
    finally propagates for ``delay`` seconds.
    """

    __slots__ = (
        "_simulator",
        "delay",
        "rate_pps",
        "buffer_packets",
        "loss_model",
        "deliver",
        "on_drop",
        "sent",
        "dropped",
        "overflows",
        "_queued",
        "_service_free_at",
        "_telemetry",
        "direction",
        "packet_pool",
        "release",
    )

    def __init__(
        self,
        simulator: Simulator,
        delay: float,
        rate_pps: float,
        buffer_packets: int = 64,
        loss_model: Optional[LossModel] = None,
        deliver: Optional[Callable] = None,
        on_drop: Optional[Callable] = None,
        telemetry: Optional[Telemetry] = None,
        direction: str = "data",
        packet_pool=None,
        release: Optional[Callable] = None,
    ) -> None:
        if delay <= 0.0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        if rate_pps <= 0.0:
            raise ConfigurationError(f"rate_pps must be positive, got {rate_pps}")
        if buffer_packets < 1:
            raise ConfigurationError(
                f"buffer_packets must be >= 1, got {buffer_packets}"
            )
        if deliver is None:
            raise ConfigurationError(
                "BottleneckLink needs a deliver callback at construction"
            )
        self._simulator = simulator
        self.delay = delay
        self.rate_pps = rate_pps
        self.buffer_packets = buffer_packets
        self.loss_model = loss_model or NoLoss()
        self.direction = direction
        self._telemetry = _active_telemetry(telemetry)
        self.deliver = (
            deliver
            if self._telemetry is None
            else _observed_delivery(deliver, self._telemetry, direction)
        )
        self.on_drop = on_drop
        # Same pool discovery/release contract as Link (see there).
        self.packet_pool = packet_pool
        self.release = release

        self.sent = 0
        self.dropped = 0  # random-loss drops
        self.overflows = 0  # queue (congestive) drops
        self._queued = 0
        self._service_free_at = 0.0

    @property
    def service_time(self) -> float:
        """Seconds to serialise one packet."""
        return 1.0 / self.rate_pps

    @property
    def queue_depth(self) -> int:
        """Packets currently queued or in service."""
        return self._queued

    @property
    def loss_fraction(self) -> float:
        """All drops (random + overflow) over everything sent."""
        return (self.dropped + self.overflows) / self.sent if self.sent else 0.0

    def send(self, packet) -> None:
        """Enqueue one packet for transmission."""
        self.sent += 1
        now = self._simulator.now
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.on_packet_sent(self.direction, now)
        if self.loss_model.is_lost(now):
            self.dropped += 1
            if telemetry is not None:
                telemetry.on_packet_dropped(self.direction, now)
            self._drop(packet, now)
            return
        if self._queued >= self.buffer_packets:
            self.overflows += 1
            if telemetry is not None:
                telemetry.on_packet_dropped(self.direction, now)
            self._drop(packet, now)
            return
        self._queued += 1
        start = max(now, self._service_free_at)
        departure = start + self.service_time
        self._service_free_at = departure
        # Queue occupancy ends at service completion; the packet then
        # propagates for `delay` before delivery.  Both events ride the
        # engine's payload fast path — no closure per packet.
        self._simulator.schedule_call(departure - now, self._depart, None)
        self._simulator.schedule_call(departure + self.delay - now, self.deliver, packet)

    def send_burst(self, packets) -> None:
        """Enqueue a whole round, batching the loss draws and telemetry.

        Event-for-event identical to per-packet :meth:`send`: the
        (departure, delivery) event *pair* of each packet must keep its
        interleaved push order — on a rate grid, packet ``i+k``'s
        departure can tie packet ``i``'s delivery time exactly, and the
        engine breaks ties by sequence number, which decides the
        ``_queued`` count an overflow check observes.  Only the loss
        draws and hook calls are batched.
        """
        count = len(packets)
        if count == 0:
            return
        if count == 1:
            self.send(packets[0])
            return
        telemetry = self._telemetry
        if telemetry is not None and not telemetry.batched_packet_hooks:
            for packet in packets:
                self.send(packet)
            return
        now = self._simulator.now
        self.sent += count
        if telemetry is not None:
            telemetry.on_packets_sent(self.direction, now, count)
        lost_flags = self.loss_model.is_lost_block([now] * count)
        schedule_call = self._simulator.schedule_call
        service_time = self.service_time
        drops = 0
        for packet, lost in zip(packets, lost_flags):
            if lost:
                self.dropped += 1
                drops += 1
                self._drop(packet, now)
                continue
            if self._queued >= self.buffer_packets:
                self.overflows += 1
                drops += 1
                self._drop(packet, now)
                continue
            self._queued += 1
            start = max(now, self._service_free_at)
            departure = start + service_time
            self._service_free_at = departure
            schedule_call(departure - now, self._depart, None)
            schedule_call(departure + self.delay - now, self.deliver, packet)
        if drops and telemetry is not None:
            telemetry.on_packets_dropped(self.direction, now, drops)

    def _depart(self, _payload, _time) -> None:
        self._queued -= 1

    def _drop(self, packet, now: float) -> None:
        if self.on_drop is not None:
            self.on_drop(packet, now)
        if self.release is not None:
            self.release(packet)
