"""Lockstep multi-flow execution: N independent flows, one event wheel.

A campaign of short flows pays a fixed per-flow toll — building a
:class:`~repro.simulator.engine.Simulator`, priming its heap, entering
and leaving ``run()`` — that dwarfs nothing for a 120 s flow but is
real overhead for Table-I-shaped batches of many short homogeneous
flows.  Lockstep mode amortises that toll: every flow of a group is
wired (via :class:`~repro.simulator.connection.FlowHarness`) onto one
*shared* simulator and the whole group advances through a single
time-major ``run()`` loop.

**Why the results are byte-identical to serial.**  Flows share no
state: each harness owns its RNG streams, loss models, packet pool,
links, and log.  On the shared wheel, a flow's events keep exactly the
relative order they would have solo — the engine's global sequence
counter is strictly increasing, so two same-time events of one flow
fire in the order that flow scheduled them, which is the solo order.
Events of *other* flows interleave between them, but since no callback
reads or writes another flow's state, the interleaving is invisible to
every :class:`~repro.simulator.metrics.FlowLog`.  The one requirement
is equal horizons: all flows of a group must share the same duration,
otherwise the shared ``run(until=...)`` would advance a shorter flow
past the point its solo run stops (firing timers a solo run leaves
queued).  Callers group by duration before calling in here.

Watchdog budgets and telemetry sinks are per-``run()``/per-simulator
concepts and cannot be attributed to one flow of a shared wheel, so
lockstep callers must only submit flows that use neither (the executor
backend enforces this).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.simulator.connection import FlowResult
from repro.simulator.engine import Simulator
from repro.util.errors import ConfigurationError

__all__ = ["run_lockstep"]


def run_lockstep(
    setups: Sequence[Callable[[Simulator], object]],
    duration: float,
    simulator: Optional[Simulator] = None,
) -> List[FlowResult]:
    """Run a group of same-duration flows on one shared event wheel.

    Each element of ``setups`` is called with the shared simulator and
    must wire one flow onto it, returning an object with a ``result()``
    method (a :class:`~repro.simulator.connection.FlowHarness`).  All
    flows are advanced together to ``duration`` and the results are
    harvested in setup order.

    Raises whatever a flow's callbacks raise; the caller owns fallback
    (the executor backend reruns a failed group flow-by-flow, so one
    bad flow cannot poison its groupmates' results).
    """
    if not setups:
        return []
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    sim = simulator if simulator is not None else Simulator()
    harnesses = [setup(sim) for setup in setups]
    sim.run(until=duration)
    return [harness.result() for harness in harnesses]
