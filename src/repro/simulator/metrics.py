"""Per-flow instrumentation shared by the sender and receiver.

The :class:`FlowLog` records every wire transmission in both
directions, every timeout, every timeout-recovery phase and the
congestion-window trajectory — the complete transport-layer observable
set the paper extracts from its wireshark captures.  The trace layer
(:mod:`repro.traces`) consumes these records verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DataPacketRecord",
    "AckRecord",
    "TimeoutRecord",
    "RecoveryPhaseRecord",
    "CwndSample",
    "FlowLog",
]


@dataclass(slots=True)
class DataPacketRecord:
    """One wire transmission of a data segment."""

    transmission_id: int
    seq: int
    send_time: float
    arrival_time: Optional[float] = None
    dropped: bool = False
    is_retransmission: bool = False
    in_timeout_recovery: bool = False
    subflow_id: int = 0

    @property
    def lost(self) -> bool:
        """True only for packets the channel dropped — a packet still in
        flight when the simulation horizon is reached is not lost."""
        return self.dropped

    @property
    def latency(self) -> Optional[float]:
        """One-way delivery time, or None when lost (paper Fig. 1 marks
        these at -1)."""
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.send_time


@dataclass(slots=True)
class AckRecord:
    """One wire transmission of an acknowledgement."""

    transmission_id: int
    ack_seq: int
    send_time: float
    arrival_time: Optional[float] = None
    dropped: bool = False
    is_duplicate: bool = False
    subflow_id: int = 0

    @property
    def lost(self) -> bool:
        """True only for ACKs the channel dropped (not in-flight ones)."""
        return self.dropped

    @property
    def latency(self) -> Optional[float]:
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.send_time


@dataclass(slots=True)
class TimeoutRecord:
    """One retransmission-timer expiry at the sender."""

    time: float
    seq: int
    backoff_exponent: int
    rto_value: float
    sequence_index: int  # which timeout sequence (recovery phase) this belongs to


@dataclass(slots=True)
class RecoveryPhaseRecord:
    """One timeout-recovery phase: first RTO until the resuming ACK.

    The paper's Section III-B quantities map directly:
    ``duration`` (≈5.05 s HSR vs 0.65 s stationary),
    ``retransmissions``/``retransmissions_lost`` (in-recovery loss rate
    ≈27.26%), ``timeouts`` (length of the timeout sequence, E[R]).
    """

    start_time: float
    end_time: Optional[float] = None
    timeouts: int = 0
    retransmissions: int = 0
    retransmissions_lost: int = 0

    @property
    def complete(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def loss_rate(self) -> Optional[float]:
        if self.retransmissions == 0:
            return None
        return self.retransmissions_lost / self.retransmissions


@dataclass(frozen=True, slots=True)
class CwndSample:
    """A (time, cwnd) point with the congestion phase at that instant."""

    time: float
    cwnd: float
    phase: str  # "slow_start" | "congestion_avoidance" | "fast_recovery" | "timeout_recovery"


@dataclass(slots=True)
class FlowLog:
    """Everything observable about one simulated flow."""

    data_packets: List[DataPacketRecord] = field(default_factory=list)
    acks: List[AckRecord] = field(default_factory=list)
    timeouts: List[TimeoutRecord] = field(default_factory=list)
    recovery_phases: List[RecoveryPhaseRecord] = field(default_factory=list)
    cwnd_samples: List[CwndSample] = field(default_factory=list)
    delivered_payloads: int = 0  # unique data sequence numbers that reached the receiver
    duplicate_payloads: int = 0  # extra copies received (spurious-timeout evidence)
    _by_transmission: Dict[int, DataPacketRecord] = field(default_factory=dict)
    _ack_by_transmission: Dict[int, AckRecord] = field(default_factory=dict)

    # -- recording ----------------------------------------------------

    def record_data_send(self, record: DataPacketRecord) -> None:
        self.data_packets.append(record)
        self._by_transmission[record.transmission_id] = record

    def record_data_arrival(self, transmission_id: int, time: float) -> None:
        self._by_transmission[transmission_id].arrival_time = time

    def record_data_drop(self, transmission_id: int) -> None:
        self._by_transmission[transmission_id].dropped = True

    def record_ack_send(self, record: AckRecord) -> None:
        self.acks.append(record)
        self._ack_by_transmission[record.transmission_id] = record

    def record_ack_arrival(self, transmission_id: int, time: float) -> None:
        self._ack_by_transmission[transmission_id].arrival_time = time

    def record_ack_drop(self, transmission_id: int) -> None:
        self._ack_by_transmission[transmission_id].dropped = True

    def record_cwnd(self, time: float, cwnd: float, phase: str) -> None:
        self.cwnd_samples.append(CwndSample(time=time, cwnd=cwnd, phase=phase))

    # -- summary statistics -------------------------------------------

    @property
    def data_sent(self) -> int:
        return len(self.data_packets)

    @property
    def data_lost(self) -> int:
        return sum(1 for record in self.data_packets if record.lost)

    @property
    def acks_sent(self) -> int:
        return len(self.acks)

    @property
    def acks_lost(self) -> int:
        return sum(1 for record in self.acks if record.lost)

    @property
    def data_loss_rate(self) -> float:
        """Lifetime data loss rate p_d (0.0 for an idle flow)."""
        return self.data_lost / self.data_sent if self.data_sent else 0.0

    @property
    def ack_loss_rate(self) -> float:
        """Lifetime ACK loss rate p_a."""
        return self.acks_lost / self.acks_sent if self.acks_sent else 0.0

    def completed_recovery_phases(self) -> List[RecoveryPhaseRecord]:
        return [phase for phase in self.recovery_phases if phase.complete]
