"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are plain tuples
``(time, insertion-order, action, payload, handle)`` on a binary heap,
so simultaneous events fire in the order they were scheduled — which
makes every simulation run bit-reproducible for a given seed — and the
heap compares tuples in C (the insertion order is unique, so comparison
never reaches the callback).

Two scheduling paths share the heap:

* :meth:`Simulator.schedule` — returns an :class:`EventHandle` that can
  cancel the callback before it fires (used heavily by the
  retransmission and delayed-ACK timers).  Cancellation is lazy: the
  handle flips a flag and the event is discarded when popped.
* :meth:`Simulator.schedule_call` — the hot path for packet delivery.
  No handle is allocated; the callback fires as ``action(payload,
  fire_time)``, so a link can schedule its ``deliver`` callback with
  the packet as payload instead of allocating a closure per packet.

**Telemetry.**  ``Simulator(telemetry=...)`` with an active sink
returns an instrumented subclass whose scheduling methods report to
the sink (events scheduled / fired / cancelled); with ``None`` or a
:class:`~repro.telemetry.NullTelemetry` it returns the plain class, so
the uninstrumented hot loops above run exactly the same instructions
as before the telemetry layer existed — zero overhead when off.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import BudgetExceededError, SimulationError

#: How often (in processed events) the wall-clock deadline is polled;
#: ``time.monotonic()`` per event would be measurable on million-event
#: runs, and a 256-event granularity is far finer than any sane budget.
_WALL_CHECK_INTERVAL = 256

#: Sentinel marking a no-payload event (fired as ``action()``).  Not
#: ``None``: ``None`` is a legitimate payload value.
_NO_PAYLOAD = object()

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    The handle is a tombstone flag, not the heap entry itself: the
    entry stays queued after :meth:`cancel` and is dropped when popped.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; idempotent."""
        self.cancelled = True


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` sink) turns on
    engine instrumentation; construction transparently returns an
    instrumented subclass so the uninstrumented hot path pays nothing.
    """

    __slots__ = ("now", "_queue", "_sequence", "_events_processed")

    def __new__(cls, telemetry: Optional[Telemetry] = None) -> "Simulator":
        if cls is Simulator and _active_telemetry(telemetry) is not None:
            return object.__new__(_InstrumentedSimulator)
        return object.__new__(cls)

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple] = []
        self._sequence = 0
        self._events_processed = 0

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The active telemetry sink (None on the uninstrumented class)."""
        return None

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped.

        This is the raw queue length (O(1)); cancelled-but-unpopped
        events — e.g. restarted RTO timers — still count.  Use
        :attr:`live_events` for the number of events that can actually
        fire.
        """
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire (not cancelled).

        O(queue length); meant for diagnostics (watchdog reports, test
        assertions), not hot paths.
        """
        return sum(
            1 for entry in self._queue if entry[4] is None or not entry[4].cancelled
        )

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action()`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle()
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, action, _NO_PAYLOAD, handle)
        )
        self._sequence += 1
        return handle

    def schedule_call(self, delay: float, action: Callable, payload) -> None:
        """Schedule ``action(payload, fire_time)`` — the non-cancellable fast path.

        Allocates no handle and no closure: the payload rides in the
        heap entry and the engine passes the event's fire time as the
        second argument.  This is what links use to deliver packets.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, action, payload, None)
        )
        self._sequence += 1

    def schedule_calls_at(
        self, times: Sequence[float], action: Callable, payloads: Sequence
    ) -> None:
        """Schedule a batch of ``action(payload, fire_time)`` events.

        ``times`` are *absolute* simulation times, one per payload; all
        events share ``action``.  Equivalent to a loop of
        :meth:`schedule_call` — same heap entries, same consecutive
        sequence numbers in list order — but the sequence counter and
        heap push are bound once per batch, which is what makes burst
        delivery (``Link.send_burst``) cheaper than per-packet calls.
        """
        if len(times) != len(payloads):
            raise SimulationError(
                f"batch mismatch: {len(times)} times for {len(payloads)} payloads"
            )
        now = self.now
        queue = self._queue
        heappush = heapq.heappush
        sequence = self._sequence
        for time, payload in zip(times, payloads):
            if time < now:
                self._sequence = sequence
                raise SimulationError(
                    f"cannot schedule into the past (time={time}, now={now})"
                )
            heappush(queue, (time, sequence, action, payload, None))
            sequence += 1
        self._sequence = sequence

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
        event_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        wall_deadline: Optional[float] = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue drains, when the clock would pass
        ``until``, after ``max_events`` callbacks, or as soon as
        ``stop_condition()`` returns True (checked between events).
        The clock is advanced to ``until`` when the horizon is the
        reason for stopping, so throughput denominators are exact.

        Watchdog budgets, unlike the graceful stops above, *raise*
        :class:`~repro.util.errors.BudgetExceededError`:

        * ``event_budget`` — a live event beyond this many processed
          callbacks (this call) means a runaway loop;
        * ``time_budget`` — an event past this simulated time means the
          clock escaped its intended horizon;
        * ``wall_deadline`` — a ``time.monotonic()`` deadline, polled
          every few hundred events.

        The pending queue is left intact when a budget trips, so the
        caller can inspect or resume the simulation.
        """
        if (
            max_events is None
            and stop_condition is None
            and event_budget is None
            and time_budget is None
            and wall_deadline is None
        ):
            self._run_fast(until)
            return
        self._run_guarded(
            until, max_events, stop_condition, event_budget, time_budget, wall_deadline
        )

    def _run_fast(self, until: Optional[float]) -> None:
        """The unguarded loop: only the ``until`` horizon is checked.

        This is the shape every campaign flow runs in (``run_flow``
        without a watchdog), so it is kept free of per-event budget
        checks; locals are bound once outside the loop.
        """
        queue = self._queue
        heappop = heapq.heappop
        no_payload = _NO_PAYLOAD
        processed = self._events_processed
        try:
            while queue:
                entry = heappop(queue)
                handle = entry[4]
                if handle is not None and handle.cancelled:
                    continue
                time = entry[0]
                if until is not None and time > until:
                    # Put it back for a later run() call and stop the
                    # clock exactly at the horizon.
                    heapq.heappush(queue, entry)
                    self.now = until
                    return
                if time < self.now - 1e-12:
                    raise SimulationError(
                        f"event queue corrupted: event at {time} < now {self.now}"
                    )
                self.now = time
                payload = entry[3]
                if payload is no_payload:
                    entry[2]()
                else:
                    entry[2](payload, time)
                processed += 1
        finally:
            self._events_processed = processed
        if until is not None and until > self.now:
            self.now = until

    def _run_guarded(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_condition: Optional[Callable[[], bool]],
        event_budget: Optional[int],
        time_budget: Optional[float],
        wall_deadline: Optional[float],
    ) -> None:
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        no_payload = _NO_PAYLOAD
        processed_this_run = 0
        while queue:
            if max_events is not None and processed_this_run >= max_events:
                return
            if stop_condition is not None and stop_condition():
                return
            entry = heappop(queue)
            handle = entry[4]
            if handle is not None and handle.cancelled:
                continue
            time = entry[0]
            if until is not None and time > until:
                heappush(queue, entry)
                self.now = until
                return
            if time < self.now - 1e-12:
                raise SimulationError(
                    f"event queue corrupted: event at {time} < now {self.now}"
                )
            if event_budget is not None and processed_this_run >= event_budget:
                heappush(queue, entry)
                raise BudgetExceededError(
                    "events",
                    event_budget,
                    f"next live event at t={time:.6g}, now={self.now:.6g}, "
                    f"{self.live_events} live events pending",
                )
            if time_budget is not None and time > time_budget:
                heappush(queue, entry)
                raise BudgetExceededError(
                    "sim-time",
                    time_budget,
                    f"next live event at t={time:.6g}, "
                    f"{self.live_events} live events pending",
                )
            if (
                wall_deadline is not None
                and processed_this_run % _WALL_CHECK_INTERVAL == 0
                and _time.monotonic() > wall_deadline
            ):
                heappush(queue, entry)
                raise BudgetExceededError(
                    "wall-clock",
                    wall_deadline,
                    f"{processed_this_run} events processed, sim time {self.now:.6g}, "
                    f"{self.live_events} live events pending",
                )
            self.now = time
            payload = entry[3]
            if payload is no_payload:
                entry[2]()
            else:
                entry[2](payload, time)
            self._events_processed += 1
            processed_this_run += 1
        if until is not None and until > self.now:
            self.now = until


class _InstrumentedEventHandle(EventHandle):
    """An EventHandle that reports its (first) cancellation."""

    __slots__ = ("_telemetry",)

    def __init__(self, telemetry: Telemetry) -> None:
        # Inlined base __init__: RTO re-arming creates one handle per
        # ACK, so the extra super() frame is measurable overhead.
        self.cancelled = False
        self._telemetry = telemetry

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._telemetry.on_event_cancelled()


class _InstrumentedSimulator(Simulator):
    """A Simulator that reports scheduling activity to a telemetry sink.

    Semantics are identical to the base class — same heap entries, same
    firing order, same clock — so a flow run under instrumentation is
    bit-reproducible against an uninstrumented run of the same seed
    (the golden-trace test pins this).  Only the bookkeeping differs:

    * ``on_event_scheduled`` fires per push (both scheduling paths);
    * ``on_event_cancelled`` fires when a handle is first cancelled
      (not when the tombstone is later discarded by the loop);
    * ``on_events_fired`` fires once per ``run`` call with the number
      of callbacks actually executed, even when the run raises a
      :class:`~repro.util.errors.BudgetExceededError`.
    """

    __slots__ = ("_telemetry",)

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        super().__init__()
        sink = _active_telemetry(telemetry)
        if sink is None:
            raise SimulationError(
                "_InstrumentedSimulator needs an active telemetry sink; "
                "construct Simulator() for the uninstrumented engine"
            )
        self._telemetry = sink

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = _InstrumentedEventHandle(self._telemetry)
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, action, _NO_PAYLOAD, handle)
        )
        self._sequence += 1
        self._telemetry.on_event_scheduled()
        return handle

    def schedule_call(self, delay: float, action: Callable, payload) -> None:
        # Inlined (not super()) — this is the per-packet scheduling
        # path, and the extra frame per event is measurable.
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, action, payload, None)
        )
        self._sequence += 1
        self._telemetry.on_event_scheduled()

    def schedule_calls_at(
        self, times: Sequence[float], action: Callable, payloads: Sequence
    ) -> None:
        super().schedule_calls_at(times, action, payloads)
        self._telemetry.on_events_scheduled(len(times))

    def run(self, *args, **kwargs) -> None:
        before = self._events_processed
        try:
            super().run(*args, **kwargs)
        finally:
            fired = self._events_processed - before
            if fired:
                self._telemetry.on_events_fired(fired)
