"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are (time, insertion-order)
pairs on a binary heap, so simultaneous events fire in the order they
were scheduled — which makes every simulation run bit-reproducible for
a given seed.  Components schedule callbacks with
:meth:`Simulator.schedule` and may cancel them via the returned
:class:`EventHandle` (used heavily by the retransmission timer).
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, List, Optional

from repro.util.errors import BudgetExceededError, SimulationError

#: How often (in processed events) the wall-clock deadline is polled;
#: ``time.monotonic()`` per event would be measurable on million-event
#: runs, and a 256-event granularity is far finer than any sane budget.
_WALL_CHECK_INTERVAL = 256

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time", "sequence", "action", "cancelled")

    def __init__(self, time: float, sequence: int, action: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[EventHandle] = []
        self._sequence = 0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped.

        This is the raw queue length (O(1)); cancelled-but-unpopped
        events — e.g. restarted RTO timers — still count.  Use
        :attr:`live_events` for the number of events that can actually
        fire.
        """
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire (not cancelled).

        O(queue length); meant for diagnostics (watchdog reports, test
        assertions), not hot paths.
        """
        return sum(1 for handle in self._queue if not handle.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self.now + delay, self._sequence, action)
        self._sequence += 1
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
        event_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        wall_deadline: Optional[float] = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue drains, when the clock would pass
        ``until``, after ``max_events`` callbacks, or as soon as
        ``stop_condition()`` returns True (checked between events).
        The clock is advanced to ``until`` when the horizon is the
        reason for stopping, so throughput denominators are exact.

        Watchdog budgets, unlike the graceful stops above, *raise*
        :class:`~repro.util.errors.BudgetExceededError`:

        * ``event_budget`` — a live event beyond this many processed
          callbacks (this call) means a runaway loop;
        * ``time_budget`` — an event past this simulated time means the
          clock escaped its intended horizon;
        * ``wall_deadline`` — a ``time.monotonic()`` deadline, polled
          every few hundred events.

        The pending queue is left intact when a budget trips, so the
        caller can inspect or resume the simulation.
        """
        processed_this_run = 0
        while self._queue:
            if max_events is not None and processed_this_run >= max_events:
                return
            if stop_condition is not None and stop_condition():
                return
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            if until is not None and handle.time > until:
                # Put it back for a later run() call and stop the clock
                # exactly at the horizon.
                heapq.heappush(self._queue, handle)
                self.now = until
                return
            if handle.time < self.now - 1e-12:
                raise SimulationError(
                    f"event queue corrupted: event at {handle.time} < now {self.now}"
                )
            if event_budget is not None and processed_this_run >= event_budget:
                heapq.heappush(self._queue, handle)
                raise BudgetExceededError(
                    "events",
                    event_budget,
                    f"next live event at t={handle.time:.6g}, now={self.now:.6g}, "
                    f"{self.live_events} live events pending",
                )
            if time_budget is not None and handle.time > time_budget:
                heapq.heappush(self._queue, handle)
                raise BudgetExceededError(
                    "sim-time",
                    time_budget,
                    f"next live event at t={handle.time:.6g}, "
                    f"{self.live_events} live events pending",
                )
            if (
                wall_deadline is not None
                and processed_this_run % _WALL_CHECK_INTERVAL == 0
                and _time.monotonic() > wall_deadline
            ):
                heapq.heappush(self._queue, handle)
                raise BudgetExceededError(
                    "wall-clock",
                    wall_deadline,
                    f"{processed_this_run} events processed, sim time {self.now:.6g}, "
                    f"{self.live_events} live events pending",
                )
            self.now = handle.time
            handle.action()
            self._events_processed += 1
            processed_this_run += 1
        if until is not None and until > self.now:
            self.now = until
