"""The TCP receiver: cumulative ACKs, delayed ACK, reordering buffer.

Behavioural notes tied to the paper:

* **Cumulative acknowledgement** — every ACK carries the next expected
  sequence number, so one surviving ACK per round is enough to move the
  sender's window (paper Fig. 11: the ACK marked *a* "helps to avoid
  the spurious packet retransmission").
* **Delayed ACK** — one ACK per ``b`` in-order packets (plus a timer so
  the last packets of a burst are not acknowledged late), which is what
  makes ACKs scarce and ACK burst loss plausible (Section V-A).
* **Duplicate-payload detection** — a segment whose sequence number was
  already delivered increments ``duplicate_payloads``; the trace layer
  uses original-copy arrivals to classify timeouts as spurious exactly
  the way the paper does.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.simulator.channel import Link
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.metrics import AckRecord, FlowLog
from repro.simulator.packet import AckSegment, Segment
from repro.util.errors import ConfigurationError

__all__ = ["Receiver"]

#: Delayed-ACK timer.  RFC 1122 allows up to 500 ms, but real stacks keep
#: it well below the minimum RTO (Linux uses ~40 ms) so a straggling
#: segment's delayed ACK cannot race the retransmission timer; we default
#: to 50 ms for the same reason.
DEFAULT_DELACK_TIMEOUT = 0.05


class Receiver:
    """Receives data segments and emits (possibly delayed) cumulative ACKs."""

    __slots__ = (
        "_simulator",
        "_ack_link",
        "_log",
        "b",
        "delack_timeout",
        "subflow_id",
        "expected_seq",
        "_out_of_order",
        "_delivered",
        "_pending_unacked",
        "_delack_timer",
        "_ack_transmission_counter",
        "_pool",
    )

    def __init__(
        self,
        simulator: Simulator,
        ack_link: Link,
        log: FlowLog,
        b: int = 2,
        delack_timeout: float = DEFAULT_DELACK_TIMEOUT,
        subflow_id: int = 0,
        pool=None,
    ) -> None:
        if b < 1:
            raise ConfigurationError(f"b must be >= 1, got {b}")
        if delack_timeout <= 0.0:
            raise ConfigurationError(
                f"delack_timeout must be positive, got {delack_timeout}"
            )
        self._simulator = simulator
        self._ack_link = ack_link
        self._log = log
        self.b = b
        self.delack_timeout = delack_timeout
        self.subflow_id = subflow_id

        self.expected_seq = 0
        self._out_of_order: Set[int] = set()
        self._delivered: Set[int] = set()
        self._pending_unacked = 0
        self._delack_timer: Optional[EventHandle] = None
        self._ack_transmission_counter = 0
        #: optional :class:`~repro.simulator.packet.PacketPool` shared
        #: with the flow's sender/links; ACKs are acquired from it and
        #: delivered data segments recycled into it
        self._pool = pool

    # -- data path ------------------------------------------------------

    def on_data(self, segment: Segment, arrival_time: float) -> None:
        """Handle an arriving data segment (the Link's deliver callback)."""
        self._log.record_data_arrival(segment.transmission_id, arrival_time)
        seq = segment.seq
        if self._pool is not None:
            # The receiver is the terminal owner of a delivered data
            # segment; only its plain-int fields are needed past this
            # point, so recycle it before the ACK logic runs.
            self._pool.release_segment(segment)
        if seq in self._delivered:
            # Second copy of an already-received payload: the smoking
            # gun of a spurious retransmission (paper Section III-B.2).
            self._log.duplicate_payloads += 1
            self._send_ack(is_duplicate=False)  # re-ACK to resynchronise
            return
        self._delivered.add(seq)
        if seq == self.expected_seq:
            self._advance_in_order()
            self._pending_unacked += 1
            if self._pending_unacked >= self.b:
                self._send_ack(is_duplicate=False)
            else:
                self._arm_delack_timer()
        elif seq > self.expected_seq:
            self._out_of_order.add(seq)
            self._log.delivered_payloads += 1
            # Out-of-order data: immediate duplicate ACK (fast-retransmit
            # signal for the sender).
            self._send_ack(is_duplicate=True)
        else:
            # seq < expected but not in delivered: cannot happen since
            # delivery is tracked per seq; defensive re-ACK.
            self._send_ack(is_duplicate=False)

    def _advance_in_order(self) -> None:
        self._log.delivered_payloads += 1
        self.expected_seq += 1
        while self.expected_seq in self._out_of_order:
            self._out_of_order.discard(self.expected_seq)
            self.expected_seq += 1

    # -- ACK path --------------------------------------------------------

    def _arm_delack_timer(self) -> None:
        if self._delack_timer is None:
            self._delack_timer = self._simulator.schedule(
                self.delack_timeout, self._on_delack_timer
            )

    def _on_delack_timer(self) -> None:
        self._delack_timer = None
        if self._pending_unacked > 0:
            self._send_ack(is_duplicate=False)

    def _send_ack(self, is_duplicate: bool) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._pending_unacked = 0
        now = self._simulator.now
        pool = self._pool
        if pool is not None:
            ack = pool.ack(
                self.expected_seq,
                self._ack_transmission_counter,
                now,
                is_duplicate,
                self.subflow_id,
            )
        else:
            ack = AckSegment(
                ack_seq=self.expected_seq,
                transmission_id=self._ack_transmission_counter,
                send_time=now,
                is_duplicate=is_duplicate,
                subflow_id=self.subflow_id,
            )
        self._ack_transmission_counter += 1
        self._log.record_ack_send(
            AckRecord(
                transmission_id=ack.transmission_id,
                ack_seq=ack.ack_seq,
                send_time=now,
                is_duplicate=is_duplicate,
                subflow_id=self.subflow_id,
            )
        )
        self._ack_link.send(ack)
