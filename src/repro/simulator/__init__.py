"""Discrete-event TCP Reno / MPTCP simulator.

The substrate standing in for the paper's real BTR testbed: it produces
the same transport-layer observables (per-packet send/arrival times in
both directions, timeout events, recovery phases, window trajectory)
that the paper extracted from wireshark captures.

Typical use::

    from repro.simulator import (
        ConnectionConfig, BernoulliLoss, GilbertElliottLoss, run_flow,
    )
    from repro.util.rng import RngStream

    rng = RngStream(42)
    config = ConnectionConfig(duration=60.0)
    result = run_flow(
        config,
        data_loss=BernoulliLoss(0.0075, rng.spawn("data")),
        ack_loss=GilbertElliottLoss(rng.spawn("ack"),
                                    mean_good_duration=30.0,
                                    mean_bad_duration=0.2),
    )
    print(result.throughput, result.log.ack_loss_rate)
"""

# Registry functions live in repro.cc; importing them from there (not
# the repro.simulator.cc shim) keeps package import deprecation-silent.
from repro.cc import (
    cc_names,
    get_cc,
    make_sender,
    register_cc,
    unregister_cc,
)
from repro.simulator.bbr import BbrSender
from repro.simulator.bottleneck import BottleneckLink
from repro.simulator.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    HandoffLoss,
    Link,
    LossModel,
    NoLoss,
    RoundCorrelatedLoss,
    TraceDrivenLoss,
)
from repro.simulator.compound import CompoundSender
from repro.simulator.connection import (
    ConnectionConfig,
    FlowHarness,
    FlowResult,
    run_flow,
)
from repro.simulator.cubic import CubicSender
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.lockstep import run_lockstep
from repro.simulator.metrics import (
    AckRecord,
    CwndSample,
    DataPacketRecord,
    FlowLog,
    RecoveryPhaseRecord,
    TimeoutRecord,
)
from repro.simulator.mptcp import MptcpResult, run_backup, run_duplex
from repro.simulator.newreno import NewRenoSender
from repro.simulator.packet import AckSegment, PacketPool, Segment
from repro.simulator.receiver import Receiver
from repro.simulator.relentless import RelentlessSender
from repro.simulator.reno import RenoSender
from repro.simulator.rto import MAX_BACKOFF_FACTOR, RtoEstimator
from repro.simulator.sender_base import BaseSender

__all__ = [
    "AckRecord",
    "AckSegment",
    "BaseSender",
    "BbrSender",
    "BernoulliLoss",
    "BottleneckLink",
    "CompositeLoss",
    "CompoundSender",
    "ConnectionConfig",
    "CubicSender",
    "CwndSample",
    "DataPacketRecord",
    "EventHandle",
    "FlowHarness",
    "FlowLog",
    "FlowResult",
    "GilbertElliottLoss",
    "HandoffLoss",
    "Link",
    "LossModel",
    "MAX_BACKOFF_FACTOR",
    "MptcpResult",
    "NewRenoSender",
    "NoLoss",
    "PacketPool",
    "Receiver",
    "RecoveryPhaseRecord",
    "RelentlessSender",
    "RenoSender",
    "RoundCorrelatedLoss",
    "RtoEstimator",
    "Segment",
    "Simulator",
    "TimeoutRecord",
    "TraceDrivenLoss",
    "cc_names",
    "get_cc",
    "make_sender",
    "register_cc",
    "run_backup",
    "run_duplex",
    "run_flow",
    "run_lockstep",
    "unregister_cc",
]
