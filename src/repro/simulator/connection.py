"""Wiring a complete TCP connection and running it to a result.

:func:`run_flow` builds the sender → data link → receiver → ACK link →
sender loop, runs it for a configured duration, and returns a
:class:`FlowResult` carrying the full :class:`~repro.simulator.metrics.FlowLog`
plus headline statistics.  This is the workhorse every experiment and
the synthetic-trace generator call.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Optional

from repro.cc import make_sender
from repro.simulator.bottleneck import BottleneckLink
from repro.simulator.channel import Link, LossModel, NoLoss
from repro.simulator.engine import Simulator
from repro.simulator.metrics import FlowLog
from repro.simulator.packet import PacketPool
from repro.simulator.receiver import Receiver
from repro.simulator.rto import RtoEstimator
from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import BudgetExceededError, ConfigurationError
from repro.util.rng import RngStream
from repro.util.units import pps_to_mbps

__all__ = ["ConnectionConfig", "FlowHarness", "FlowResult", "run_flow"]


@dataclass(frozen=True)
class ConnectionConfig:
    """Static parameters of one simulated connection.

    ``forward_delay``/``reverse_delay`` are one-way propagation delays;
    their sum is the floor of the RTT (the paper's Fig. 1 shows ≈30 ms
    per direction on BTR).  ``jitter_sigma`` adds log-normal delay
    noise per packet, mimicking cellular scheduling variance.
    """

    forward_delay: float = 0.03
    reverse_delay: float = 0.03
    jitter_sigma: float = 0.0
    b: int = 2
    wmax: float = 64.0
    duration: float = 120.0
    initial_rto: float = 1.0
    min_rto: float = 0.2
    delack_timeout: float = 0.05
    initial_cwnd: float = 2.0

    def __post_init__(self) -> None:
        if self.forward_delay <= 0.0 or self.reverse_delay <= 0.0:
            raise ConfigurationError("link delays must be positive")
        if self.duration <= 0.0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.jitter_sigma < 0.0:
            raise ConfigurationError("jitter_sigma must be >= 0")

    @property
    def base_rtt(self) -> float:
        return self.forward_delay + self.reverse_delay

    def with_(self, **changes) -> "ConnectionConfig":
        """A copy with the given fields replaced.

        Unknown field names raise :class:`ConfigurationError` instead of
        the bare ``TypeError`` from :func:`dataclasses.replace` — a
        typo'd sweep parameter should name itself, not produce a stack
        trace deep inside a campaign.
        """
        known = {field.name for field in fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ConnectionConfig field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        return replace(self, **changes)


@dataclass
class FlowResult:
    """Outcome of one simulated flow."""

    config: ConnectionConfig
    log: FlowLog
    duration: float
    #: the telemetry sink the flow ran under (None when uninstrumented);
    #: counter sinks are slotted plain objects, so they pickle across
    #: process-pool boundaries along with the rest of the result
    telemetry: Optional[Telemetry] = None

    @property
    def throughput(self) -> float:
        """Packets received per second — the paper's throughput notion
        (unique payloads reaching the receiver per unit time)."""
        return self.log.delivered_payloads / self.duration

    @property
    def throughput_mbps(self) -> float:
        return pps_to_mbps(self.throughput)

    @property
    def data_loss_rate(self) -> float:
        return self.log.data_loss_rate

    @property
    def ack_loss_rate(self) -> float:
        return self.log.ack_loss_rate


class _BufferedJitter:
    """Per-packet jitter drawn from a block-buffered log-normal stream.

    Call-for-call identical to ``rng.lognormal(-3.5, 1.0) * sigma``:
    :meth:`RngStream.lognormal_block` replicates CPython's rejection
    loop bit for bit and the scaling multiply is the same float op, so
    pre-drawing a block only moves *when* the dedicated jitter stream
    is consumed, never what any call returns.
    """

    __slots__ = ("_rng", "_sigma", "_values", "_cursor")

    _BLOCK = 64

    def __init__(self, rng: RngStream, sigma: float) -> None:
        self._rng = rng
        self._sigma = sigma
        self._values: list = []
        self._cursor = 0

    def __call__(self) -> float:
        cursor = self._cursor
        values = self._values
        if cursor >= len(values):
            sigma = self._sigma
            block = self._rng.lognormal_block(-3.5, 1.0, self._BLOCK)
            values = self._values = [value * sigma for value in block]
            cursor = 0
        self._cursor = cursor + 1
        return values[cursor]


def _jitter_fn(rng: Optional[RngStream], sigma: float) -> Optional[Callable[[], float]]:
    if rng is None or sigma <= 0.0:
        return None
    return _BufferedJitter(rng, sigma)


class FlowHarness:
    """One fully wired TCP flow on a (possibly shared) simulator.

    Extracts the wiring half of :func:`run_flow` so other drivers —
    the lockstep campaign engine (:mod:`repro.simulator.lockstep`)
    builds many harnesses on one shared event wheel — can construct
    flows without re-running them one ``Simulator.run`` at a time.
    Construction wires everything and calls ``sender.start()``; the
    caller owns advancing the simulator and harvesting :meth:`result`.

    Each harness owns a private :class:`PacketPool` shared by its
    sender, receiver, and links, so steady-state rounds allocate no
    packet objects and pooled packets never cross flows.
    """

    __slots__ = (
        "config",
        "simulator",
        "log",
        "pool",
        "sender",
        "receiver",
        "data_link",
        "ack_link",
        "redundant_link",
        "telemetry",
    )

    def __init__(
        self,
        config: ConnectionConfig,
        *,
        simulator: Simulator,
        data_loss: Optional[LossModel] = None,
        ack_loss: Optional[LossModel] = None,
        seed: int = 0,
        redundant_data_loss: Optional[LossModel] = None,
        variant: str = "reno",
        cc_params=None,
        bottleneck_rate: Optional[float] = None,
        bottleneck_buffer: int = 64,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        tel = _active_telemetry(telemetry)
        sim = simulator
        log = FlowLog()
        rng = RngStream(seed, "connection")
        pool = PacketPool()
        self.config = config
        self.simulator = sim
        self.log = log
        self.pool = pool
        self.telemetry = tel

        # The wiring is cyclic (ACK link → sender → data link →
        # receiver → ACK link), so the ACK link's deliver closes over
        # the sender constructed below (late binding); it is also the
        # terminal owner of a delivered ACK and recycles it.
        def deliver_ack(ack, time: float) -> None:
            sender.on_ack(ack, time)
            pool.release_ack(ack)

        ack_link = Link(
            sim,
            delay=config.reverse_delay,
            loss_model=ack_loss or NoLoss(),
            jitter=_jitter_fn(rng.spawn("ack-jitter"), config.jitter_sigma),
            deliver=deliver_ack,
            on_drop=lambda ack, time: log.record_ack_drop(ack.transmission_id),
            telemetry=tel,
            direction="ack",
            packet_pool=pool,
            release=pool.release_ack,
        )
        receiver = Receiver(
            sim,
            ack_link,
            log,
            b=config.b,
            delack_timeout=config.delack_timeout,
            pool=pool,
        )
        if bottleneck_rate is not None:
            data_link = BottleneckLink(
                sim,
                delay=config.forward_delay,
                rate_pps=bottleneck_rate,
                buffer_packets=bottleneck_buffer,
                loss_model=data_loss or NoLoss(),
                deliver=receiver.on_data,
                on_drop=lambda segment, time: log.record_data_drop(
                    segment.transmission_id
                ),
                telemetry=tel,
                direction="data",
                packet_pool=pool,
                release=pool.release_segment,
            )
        else:
            data_link = Link(
                sim,
                delay=config.forward_delay,
                loss_model=data_loss or NoLoss(),
                jitter=_jitter_fn(rng.spawn("data-jitter"), config.jitter_sigma),
                deliver=receiver.on_data,
                on_drop=lambda segment, time: log.record_data_drop(
                    segment.transmission_id
                ),
                telemetry=tel,
                direction="data",
                packet_pool=pool,
                release=pool.release_segment,
            )
        redundant_link: Optional[Link] = None
        if redundant_data_loss is not None:
            redundant_link = Link(
                sim,
                delay=config.forward_delay,
                loss_model=redundant_data_loss,
                jitter=_jitter_fn(rng.spawn("alt-jitter"), config.jitter_sigma),
                deliver=receiver.on_data,
                on_drop=lambda segment, time: log.record_data_drop(
                    segment.transmission_id
                ),
                telemetry=tel,
                direction="data",
                packet_pool=pool,
                release=pool.release_segment,
            )

        # Registered third-party senders may not accept a telemetry
        # kwarg, so it is only forwarded when a sink is actually active.
        sender_kwargs = {} if tel is None else {"telemetry": tel}
        sender = make_sender(
            variant,
            sim,
            data_link,
            log,
            cc_params=cc_params,
            wmax=config.wmax,
            initial_cwnd=config.initial_cwnd,
            rto=RtoEstimator(initial_rto=config.initial_rto, min_rto=config.min_rto),
            redundant_retransmit_link=redundant_link,
            **sender_kwargs,
        )
        self.sender = sender
        self.receiver = receiver
        self.data_link = data_link
        self.ack_link = ack_link
        self.redundant_link = redundant_link
        sender.start()

    def result(self) -> FlowResult:
        """The flow's result as of the simulator's current progress."""
        return FlowResult(
            config=self.config,
            log=self.log,
            duration=self.config.duration,
            telemetry=self.telemetry,
        )


def run_flow(
    config: ConnectionConfig,
    data_loss: Optional[LossModel] = None,
    ack_loss: Optional[LossModel] = None,
    seed: int = 0,
    redundant_data_loss: Optional[LossModel] = None,
    simulator: Optional[Simulator] = None,
    variant: str = "reno",
    cc_params=None,
    bottleneck_rate: Optional[float] = None,
    bottleneck_buffer: int = 64,
    watchdog=None,
    telemetry: Optional[Telemetry] = None,
) -> FlowResult:
    """Simulate one TCP flow and return its result.

    ``redundant_data_loss``, when given, attaches an MPTCP-style
    alternate subflow used only to double timeout retransmissions
    (paper Section V-B backup mode).  ``variant`` names a sender in
    the congestion-control registry (:mod:`repro.cc`): ``"reno"`` (the
    paper's kernel), ``"cubic"``, ``"bbr"``, ``"compound"``, or anything
    registered via :func:`repro.cc.register_cc`; ``cc_params`` carries
    the variant's tuning dataclass (see :func:`repro.cc.make_sender`).

    Most callers should not invoke this directly: describe the run as a
    :class:`repro.exec.FlowSpec` and hand it to the execution pipeline,
    which adds retries, quarantine, campaign reporting, and parallel
    backends on top of this primitive.

    ``watchdog`` (a :class:`repro.robustness.watchdog.Watchdog`) bounds
    the run: its event/sim-time/wall-clock budgets are plumbed into the
    engine and raise :class:`~repro.util.errors.BudgetExceededError`
    instead of letting a degenerate channel state hang the campaign.
    When omitted, the ambient watchdog installed by
    :func:`repro.robustness.watchdog.watchdog_scope` (e.g. via the
    experiment CLI's ``--timeout-s``/``--max-events`` flags) applies.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry` sink, e.g.
    :class:`~repro.telemetry.CountingTelemetry`) instruments the
    engine, both links, and the sender for this flow; the sink rides
    back on :attr:`FlowResult.telemetry`.  ``None`` or
    :class:`~repro.telemetry.NullTelemetry` costs nothing.
    """
    tel = _active_telemetry(telemetry)
    sim = simulator or Simulator(telemetry=tel)
    harness = FlowHarness(
        config,
        simulator=sim,
        data_loss=data_loss,
        ack_loss=ack_loss,
        seed=seed,
        redundant_data_loss=redundant_data_loss,
        variant=variant,
        cc_params=cc_params,
        bottleneck_rate=bottleneck_rate,
        bottleneck_buffer=bottleneck_buffer,
        telemetry=tel,
    )

    if watchdog is None:
        # Imported lazily: robustness sits above the simulator in the
        # layering (its fault hooks wrap scenario channels), so a
        # module-level import here would be circular.
        from repro.robustness.watchdog import current_watchdog

        watchdog = current_watchdog()

    run_kwargs = watchdog.run_kwargs() if watchdog is not None else {}
    try:
        sim.run(until=config.duration, **run_kwargs)
    except BudgetExceededError as error:
        if tel is not None:
            tel.on_budget_exceeded(error.kind)
        raise
    return harness.result()
