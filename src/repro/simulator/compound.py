"""TCP Compound: a loss window plus a delay window (Tan et al.).

Compound TCP keeps Reno's loss-based ``cwnd`` untouched and adds a
*delay window* ``dwnd`` on top; the send window is ``cwnd + dwnd``.
Once per round in congestion avoidance the sender estimates the
queueing backlog ``diff = win·(1 − baseRTT/RTT)`` (segments sitting in
the bottleneck queue):

* ``diff < γ`` — the path is underused: ``dwnd += (α·win^k − 1)⁺``,
  the binomial growth law of the PAPERS.md asymptotic approximation
  ("Asymptotic Approximations for TCP Compound", arXiv:1511.01344);
* ``diff ≥ γ`` — queue building: ``dwnd`` drains by ``diff``;
* on loss — the compound window takes a ``(1 − β)`` multiplicative
  decrease, absorbed by ``dwnd`` (which collapses), while ``cwnd``
  halves per Reno.

On an RTO the delay component is discarded entirely — timeout recovery
is pure Reno.  In the HSR channel the interesting regime is the
jittery RTT: delay variance reads as phantom queueing, keeping
``dwnd`` small and Compound close to Reno — which is the paper's
point that variant-level fixes don't touch the spurious-timeout
channel.
"""

from __future__ import annotations

from repro.cc.info import CompoundParams
from repro.simulator.sender_base import (
    _CONGESTION_AVOIDANCE,
    _DUPACK_THRESHOLD,
    _MIN_SSTHRESH,
    BaseSender,
)

__all__ = ["CompoundSender"]


class CompoundSender(BaseSender):
    """Compound TCP: Reno's cwnd plus a delay-governed dwnd."""

    __slots__ = (
        "alpha",
        "k",
        "beta",
        "gamma",
        "dwnd",
        "_base_rtt",
        "_last_rtt",
        "_round_end",
    )

    def __init__(
        self,
        *args,
        alpha: float = 0.125,
        k: float = 0.75,
        beta: float = 0.5,
        gamma: float = 30.0,
        **kwargs,
    ) -> None:
        params = CompoundParams(alpha=alpha, k=k, beta=beta, gamma=gamma)
        super().__init__(*args, **kwargs)
        self.alpha = params.alpha
        self.k = params.k
        self.beta = params.beta
        self.gamma = params.gamma
        self.dwnd = 0.0
        self._base_rtt = 0.0  # smallest RTT seen: the propagation floor
        self._last_rtt = 0.0
        self._round_end = 0  # snd_una threshold closing the current round

    # -- policy hooks ------------------------------------------------------

    def _send_window(self) -> float:
        return min(self.cwnd + self.dwnd, self.wmax)

    def _on_rtt_sample(self, rtt: float, now: float) -> None:
        if self._base_rtt <= 0.0 or rtt < self._base_rtt:
            self._base_rtt = rtt
        self._last_rtt = rtt

    def _after_new_ack(self, newly_acked: int, now: float) -> None:
        if self.snd_una < self._round_end:
            return
        self._round_end = self.snd_max
        if (
            self._phase != _CONGESTION_AVOIDANCE
            or self._base_rtt <= 0.0
            or self._last_rtt <= 0.0
        ):
            return
        win = min(self.cwnd + self.dwnd, self.wmax)
        # Estimated backlog in the bottleneck queue (segments).
        diff = win * (1.0 - self._base_rtt / self._last_rtt)
        if diff < self.gamma:
            self.dwnd += max(self.alpha * win**self.k - 1.0, 0.0)
        else:
            self.dwnd = max(self.dwnd - diff, 0.0)
        # Keep the compound window inside the clamp.
        self.dwnd = min(self.dwnd, max(self.wmax - self.cwnd, 0.0))
        self._log.record_cwnd(now, self.cwnd + self.dwnd, self._phase)

    def _on_loss_event(self) -> None:
        win = min(self.cwnd + self.dwnd, self.wmax)
        self.ssthresh = max(self.cwnd / 2.0, _MIN_SSTHRESH)
        self.cwnd = self.ssthresh + _DUPACK_THRESHOLD
        # The compound window takes the (1 - beta) decrease; whatever
        # the halved cwnd does not cover is dwnd's share.
        self.dwnd = max(win * (1.0 - self.beta) - self.ssthresh, 0.0)

    def _on_timeout_collapse(self) -> None:
        super()._on_timeout_collapse()
        self.dwnd = 0.0
