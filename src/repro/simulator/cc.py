"""Congestion-control registry: senders selected by name.

The paper evaluates Reno ("the basis of the other TCP versions") and
the follow-up HSR/LTE studies compare many variants under identical
channels.  To make that a data sweep instead of a code change, sender
implementations register here under a short name (``"reno"``,
``"newreno"``) and every execution path — :func:`repro.simulator.connection.run_flow`,
:class:`repro.exec.FlowSpec`, the variant experiments — selects one by
name via :func:`make_sender`.  Third-party senders plug in with
:func:`register_cc` without touching any call site::

    from repro.simulator.cc import register_cc

    register_cc("mytcp", MyTcpSender)
    run_flow(config, ..., variant="mytcp")

A factory must accept the :class:`~repro.simulator.reno.RenoSender`
constructor signature: ``(simulator, data_link, log, *, wmax,
initial_cwnd, rto, redundant_retransmit_link, ...)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.simulator.newreno import NewRenoSender
from repro.simulator.reno import RenoSender
from repro.util.errors import ConfigurationError

__all__ = [
    "CC_REGISTRY_VERSION",
    "cc_names",
    "get_cc",
    "make_sender",
    "register_cc",
    "unregister_cc",
]

#: Behavioural version of the built-in senders.  The result store
#: (:mod:`repro.store`) salts every content key with this, so bumping
#: it — required whenever a sender change alters simulated bytes —
#: invalidates all cached results computed under the old behaviour.
CC_REGISTRY_VERSION = 1

#: name -> sender factory (usually the sender class itself)
_REGISTRY: Dict[str, Callable] = {}


def register_cc(name: str, factory: Callable, *, replace: bool = False) -> None:
    """Register a congestion-control sender factory under ``name``.

    ``replace=True`` allows overriding an existing registration (used by
    tests and by downstream experiments that patch a variant).
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"cc name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"congestion control {name!r} is already registered; "
            "pass replace=True to override"
        )
    if not callable(factory):
        raise ConfigurationError(f"cc factory for {name!r} is not callable")
    _REGISTRY[name] = factory


def unregister_cc(name: str) -> None:
    """Remove a registration (no-op if absent); for test isolation."""
    _REGISTRY.pop(name, None)


def cc_names() -> Tuple[str, ...]:
    """Registered congestion-control names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_cc(name: str) -> Callable:
    """The factory registered under ``name``.

    Raises :class:`~repro.util.errors.ConfigurationError` naming the
    known variants — the error the CLI surfaces for a typo'd ``--cc``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def make_sender(name: str, simulator, data_link, log, **kwargs):
    """Instantiate the sender registered under ``name``."""
    return get_cc(name)(simulator, data_link, log, **kwargs)


register_cc("reno", RenoSender)
register_cc("newreno", NewRenoSender)
