"""Deprecated alias of :mod:`repro.cc` — the congestion-control registry.

The registry grew metadata (:class:`~repro.cc.CCInfo`), tuning-params
threading, and a CLI, and moved to the public :mod:`repro.cc` package;
import it from there::

    from repro.cc import register_cc, make_sender, describe_cc

This module forwards the old names so existing imports keep working,
emitting one :class:`DeprecationWarning` per process on first use.
The sender constructor protocol a registered factory must follow is
documented on :class:`repro.simulator.sender_base.BaseSender`.
"""

from __future__ import annotations

import warnings

__all__ = [
    "CC_REGISTRY_VERSION",
    "cc_names",
    "get_cc",
    "make_sender",
    "register_cc",
    "unregister_cc",
]

_warned = False


def _warn_once() -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "repro.simulator.cc is deprecated; import the congestion-control "
        "registry from repro.cc instead",
        DeprecationWarning,
        stacklevel=3,
    )


def __getattr__(name: str):
    if name in __all__:
        _warn_once()
        import repro.cc as _cc

        return getattr(_cc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
