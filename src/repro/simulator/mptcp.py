"""Multi-path TCP simulation (paper Section V-B).

Two modes, mirroring the paper:

* **Duplex** — both subflows carry data simultaneously.  Following the
  paper's own estimator ("no bottleneck links are shared by these two
  flows, so they can be regarded as two independent subflows of
  MPTCP"), the aggregate is two independent connections run over their
  own channels, summed.
* **Backup** — one subflow carries data; the second is used *only* to
  double the retransmission of timed-out packets, which is the
  mechanism the paper credits for shrinking the recovery-phase loss
  rate ``q`` ("MPTCP retransmits the lost packet on both the original
  subflow and another subflow").

Each subflow is described by a :class:`repro.exec.FlowSpec`, so MPTCP
runs use the same execution pipeline (and the same congestion-control
registry, watchdogs, and seeds) as single-path flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.simulator.connection import FlowResult
from repro.util.errors import ConfigurationError
from repro.util.units import pps_to_mbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.spec import FlowSpec

__all__ = ["MptcpResult", "run_duplex", "run_backup"]


@dataclass
class MptcpResult:
    """Aggregate result of an MPTCP run."""

    mode: str
    primary: FlowResult
    secondary: Optional[FlowResult] = None

    @property
    def throughput(self) -> float:
        total = self.primary.throughput
        if self.secondary is not None:
            total += self.secondary.throughput
        return total

    @property
    def throughput_mbps(self) -> float:
        return pps_to_mbps(self.throughput)


def run_duplex(primary: "FlowSpec", secondary: "FlowSpec") -> MptcpResult:
    """Duplex mode: two independent subflows, aggregate throughput summed.

    Each spec fully describes its subflow — channels, congestion
    control, seed — so asymmetric paths (say, LTE + 3G with different
    carriers) are just two different specs.
    """
    # Imported lazily: repro.exec builds on the simulator layer, so a
    # module-level import here would be circular.
    from repro.exec.executor import simulate_spec

    first, _ = simulate_spec(primary)
    second, _ = simulate_spec(secondary)
    return MptcpResult(mode="duplex", primary=first, secondary=second)


def run_backup(spec: "FlowSpec") -> MptcpResult:
    """Backup mode: one data subflow; retransmissions doubled on the backup.

    The spec's ``redundant_data_loss`` is the backup path's data
    channel.  It only ever carries timeout retransmissions, so its ACK
    direction is irrelevant here — surviving copies are acknowledged
    through the primary ACK path.
    """
    from repro.exec.executor import simulate_spec

    if spec.redundant_data_loss is None:
        raise ConfigurationError(
            "backup mode needs a FlowSpec with redundant_data_loss "
            "(the backup subflow's data channel)"
        )
    primary, _ = simulate_spec(spec)
    return MptcpResult(mode="backup", primary=primary)
