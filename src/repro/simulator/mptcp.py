"""Multi-path TCP simulation (paper Section V-B).

Two modes, mirroring the paper:

* **Duplex** — both subflows carry data simultaneously.  Following the
  paper's own estimator ("no bottleneck links are shared by these two
  flows, so they can be regarded as two independent subflows of
  MPTCP"), the aggregate is two independent connections run over their
  own channels, summed.
* **Backup** — one subflow carries data; the second is used *only* to
  double the retransmission of timed-out packets, which is the
  mechanism the paper credits for shrinking the recovery-phase loss
  rate ``q`` ("MPTCP retransmits the lost packet on both the original
  subflow and another subflow").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simulator.channel import LossModel
from repro.simulator.connection import ConnectionConfig, FlowResult, run_flow
from repro.util.units import pps_to_mbps

__all__ = ["MptcpResult", "run_duplex", "run_backup"]


@dataclass
class MptcpResult:
    """Aggregate result of an MPTCP run."""

    mode: str
    primary: FlowResult
    secondary: Optional[FlowResult] = None

    @property
    def throughput(self) -> float:
        total = self.primary.throughput
        if self.secondary is not None:
            total += self.secondary.throughput
        return total

    @property
    def throughput_mbps(self) -> float:
        return pps_to_mbps(self.throughput)


def run_duplex(
    primary_config: ConnectionConfig,
    primary_data_loss: LossModel,
    primary_ack_loss: LossModel,
    secondary_config: ConnectionConfig,
    secondary_data_loss: LossModel,
    secondary_ack_loss: LossModel,
    seed: int = 0,
) -> MptcpResult:
    """Duplex mode: two independent subflows, aggregate throughput summed."""
    first = run_flow(
        primary_config, primary_data_loss, primary_ack_loss, seed=seed
    )
    second = run_flow(
        secondary_config, secondary_data_loss, secondary_ack_loss, seed=seed + 1
    )
    return MptcpResult(mode="duplex", primary=first, secondary=second)


def run_backup(
    config: ConnectionConfig,
    data_loss: LossModel,
    ack_loss: LossModel,
    backup_data_loss: LossModel,
    seed: int = 0,
) -> MptcpResult:
    """Backup mode: one data subflow; retransmissions doubled on the backup.

    The backup channel only ever carries timeout retransmissions, so
    its ACK direction is irrelevant here — surviving copies are
    acknowledged through the primary ACK path.
    """
    primary = run_flow(
        config,
        data_loss,
        ack_loss,
        seed=seed,
        redundant_data_loss=backup_data_loss,
    )
    return MptcpResult(mode="backup", primary=primary)
