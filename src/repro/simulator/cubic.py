"""TCP CUBIC: time-based cubic window growth (RFC 8312).

Where Reno grows the window per ACK, CUBIC grows it as a function of
the *time since the last loss*: ``W(t) = C·(t − K)³ + W_max``, with
``K = ∛(W_max·(1 − β)/C)`` chosen so the curve re-reaches the previous
plateau ``W_max`` exactly at ``t = K``.  Growth is concave while
approaching the plateau, flat around it, then convex while probing
beyond — which decouples the growth rate from the RTT and is why CUBIC
replaced Reno as the Linux default.

The HSR question this sender answers: CUBIC's faster post-loss
recovery refills the window sooner between loss events, but the
paper's dominant effects — ACK-burst spurious timeouts and lossy
timeout recovery — strike below the congestion-avoidance law, so the
enhanced model's corrections should still apply.

The sender also tracks the standard TCP-friendly estimate ``W_est``
(the window Reno-style AIMD would have reached) and never lets the
cubic window fall below it, so CUBIC is never less aggressive than
Reno in the small-BDP region.
"""

from __future__ import annotations

from repro.cc.info import CubicParams
from repro.simulator.sender_base import (
    _DUPACK_THRESHOLD,
    _MIN_SSTHRESH,
    BaseSender,
)

__all__ = ["CubicSender"]


class CubicSender(BaseSender):
    """CUBIC congestion control on the shared sender machinery."""

    __slots__ = (
        "c",
        "beta",
        "fast_convergence",
        "_w_last_max",
        "_k",
        "_epoch_start",
        "_w_est",
        "_aimd_alpha",
        "_last_rtt",
    )

    def __init__(
        self,
        *args,
        c: float = 0.4,
        beta: float = 0.7,
        fast_convergence: bool = True,
        **kwargs,
    ) -> None:
        # Validation lives on the tuning dataclass — constructing it
        # rejects bad knobs identically for both the direct-kwargs path
        # and the FlowSpec.cc_params path.
        params = CubicParams(c=c, beta=beta, fast_convergence=fast_convergence)
        super().__init__(*args, **kwargs)
        self.c = params.c
        self.beta = params.beta
        self.fast_convergence = params.fast_convergence
        self._w_last_max = 0.0  # plateau of the previous epoch
        self._k = 0.0  # time to re-reach the plateau
        self._epoch_start = -1.0  # -1: no avoidance epoch open
        self._w_est = 0.0  # TCP-friendly (AIMD) window estimate
        # Reno-equivalent AIMD gain for the beta in use (RFC 8312 §4.2).
        self._aimd_alpha = 3.0 * (1.0 - params.beta) / (1.0 + params.beta)
        self._last_rtt = 0.0

    # -- the cubic law ----------------------------------------------------

    def _cubic_target(self, elapsed: float) -> float:
        """``W(t)`` of RFC 8312 Eq. 1 for ``t`` seconds into the epoch."""
        offset = elapsed - self._k
        return self.c * offset * offset * offset + self._w_last_max

    def _open_epoch(self, now: float) -> None:
        self._epoch_start = now
        if self.cwnd < self._w_last_max:
            self._k = ((self._w_last_max - self.cwnd) / self.c) ** (1.0 / 3.0)
        else:
            # Starting above the old plateau: probe immediately
            # (convex region from t = 0).
            self._k = 0.0
            self._w_last_max = self.cwnd
        self._w_est = self.cwnd

    def _close_epoch(self) -> None:
        self._epoch_start = -1.0

    # -- policy hooks ------------------------------------------------------

    def _on_rtt_sample(self, rtt: float, now: float) -> None:
        self._last_rtt = rtt

    def _ca_window(self, newly_acked: int) -> float:
        now = self._simulator.now
        if self._epoch_start < 0.0:
            self._open_epoch(now)
        # Chase the cubic target one RTT ahead, 1/cwnd of the gap per
        # ACK (the RFC's per-ACK formulation of the continuous curve).
        target = self._cubic_target(now - self._epoch_start + self._last_rtt)
        if target > self.cwnd:
            grown = self.cwnd + (target - self.cwnd) / self.cwnd
        else:
            # In the plateau: probe minimally so the curve can take over.
            grown = self.cwnd + 0.01 / self.cwnd
        # TCP-friendly region: never fall behind what Reno-style AIMD
        # with this beta would have reached.
        self._w_est += self._aimd_alpha / self.cwnd
        return max(grown, self._w_est)

    def _reduce(self) -> None:
        """Multiplicative decrease shared by dup-ACK loss and RTO."""
        win = self.cwnd
        if self.fast_convergence and win < self._w_last_max:
            # Lost again below the old plateau — the bottleneck shrank;
            # release the ceiling early so competitors converge.
            self._w_last_max = win * (2.0 - self.beta) / 2.0
        else:
            self._w_last_max = win
        self.ssthresh = max(win * self.beta, _MIN_SSTHRESH)
        self._close_epoch()

    def _on_loss_event(self) -> None:
        self._reduce()
        self.cwnd = self.ssthresh + _DUPACK_THRESHOLD

    def _on_timeout_collapse(self) -> None:
        self._reduce()
        self.cwnd = 1.0
