"""One-way links and pluggable packet-loss processes.

The paper's two directions behave very differently in high-speed
mobility (data loss ≈ 0.75%, ACK loss ≈ 0.66% but *bursty*), so every
connection owns two independent :class:`Link` instances, each with its
own loss model and delay process.

Loss models implement a single method, ``is_lost(now) -> bool``, drawn
once per wire transmission.  Provided models:

* :class:`BernoulliLoss` — i.i.d. loss (the Padhye world).
* :class:`GilbertElliottLoss` — two-state burst loss; the bad state
  captures handoff/outage episodes that wipe whole rounds of ACKs, the
  mechanism behind the paper's spurious timeouts.
* :class:`HandoffLoss` — deterministic outage windows from an explicit
  handoff schedule (produced by :mod:`repro.hsr`), with elevated loss
  inside the window and a base rate outside.
* :class:`TraceDrivenLoss` — scripted per-transmission outcomes for
  the micro-simulations behind paper Figs. 5, 7 and 11.
* :class:`CompositeLoss` — union of several processes (lost if any
  component loses the packet).

**Batched-RNG invariant.**  The stochastic models consume their stream
through pre-drawn blocks of raw uniforms (:meth:`RngStream.random_block`)
instead of one scalar call per transmission.  The *sequence of raw
uniforms consumed* — and therefore every loss decision — is identical
to the scalar implementation, because (a) ``random.Random.random()``
yields the same values whether drawn eagerly or lazily, (b) a draw is
consumed exactly when the scalar code would consume one (probabilities
``<= 0`` and ``>= 1`` short-circuit without a draw, matching
:meth:`RngStream.bernoulli`), and (c) exponential sojourns are computed
from a raw uniform with the same expression CPython's ``expovariate``
uses, bit for bit.  The only observable difference is that the
*underlying* stream may be over-advanced by up to one block at the end
of a run — which is why a stream feeding a loss model must not be
shared with any other consumer (scenario builders spawn a dedicated
child stream per model).
"""

from __future__ import annotations

from math import log as _log
from typing import Callable, List, Optional, Sequence, Tuple

from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

try:  # optional acceleration for whole-block comparisons
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "RoundCorrelatedLoss",
    "GilbertElliottLoss",
    "HandoffLoss",
    "TraceDrivenLoss",
    "CompositeLoss",
    "Link",
]

#: Raw uniforms pre-drawn per refill.  Big enough to amortise the
#: Python-level call into :class:`RngStream`, small enough that the
#: tail over-draw at end of flow is negligible.
_UNIFORM_BLOCK = 256


class LossModel:
    """Base class: decides, per wire transmission, whether it is lost.

    :meth:`is_lost_block` evaluates a whole burst (typically one cwnd
    of packets submitted in a single round) in one call.  The default
    implementation loops the scalar :meth:`is_lost`, so third-party
    models that implement only the scalar method keep working —
    including under the links' batched transmit path — while the
    bundled models override it with draw-sequence-identical batched
    versions.
    """

    __slots__ = ()

    def is_lost(self, now: float) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        """Per-transmission outcomes for a burst at the given times.

        Element-for-element identical to calling :meth:`is_lost` once
        per element, in order — the batched-RNG invariant extended to
        whole rounds.
        """
        is_lost = self.is_lost
        return [is_lost(now) for now in times]


class NoLoss(LossModel):
    """A perfect channel."""

    __slots__ = ()

    def is_lost(self, now: float) -> bool:
        return False

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        return [False] * len(times)


class _BufferedLoss(LossModel):
    """Shared machinery: a block-buffered uniform supply for one stream.

    Subclasses own their :class:`RngStream` exclusively (see the
    batched-RNG invariant in the module docstring) and call
    :meth:`_bernoulli` / :meth:`_next_uniform` instead of the scalar
    stream methods.

    Models whose per-packet probability is a *fixed* value in (0, 1)
    (Bernoulli loss, the round-correlated trigger) set ``_fixed_rate``;
    every refill then precomputes the whole block's Bernoulli outcomes
    in one pass (vectorised through numpy when available), so the
    per-packet cost collapses to a list index.  The raw-uniform cursor
    and the outcome cursor are the same cursor — mixed consumption
    (e.g. Gilbert–Elliott sojourn draws between packet draws) walks a
    single underlying uniform sequence, exactly as the scalar code
    would.
    """

    __slots__ = ("_rng", "_block", "_cursor", "_fixed_rate", "_outcomes")

    def __init__(self, rng: RngStream, fixed_rate: Optional[float] = None) -> None:
        self._rng = rng
        self._block: Sequence[float] = ()
        self._cursor = 0
        self._fixed_rate = (
            fixed_rate if fixed_rate is not None and 0.0 < fixed_rate < 1.0 else None
        )
        self._outcomes: List[bool] = []

    def _refill(self) -> None:
        """Draw the next uniform block; precompute fixed-rate outcomes."""
        block = self._block = self._rng.random_block(_UNIFORM_BLOCK)
        rate = self._fixed_rate
        if rate is not None:
            if _np is not None:
                self._outcomes = (_np.frombuffer(block) < rate).tolist()
            else:
                self._outcomes = [value < rate for value in block]
        self._cursor = 0

    def _next_uniform(self) -> float:
        """The next raw uniform, refilling the block when exhausted."""
        cursor = self._cursor
        block = self._block
        if cursor >= len(block):
            self._refill()
            block = self._block
            cursor = 0
        self._cursor = cursor + 1
        return block[cursor]

    def _bernoulli(self, probability: float) -> bool:
        """Block-buffered Bernoulli draw, consuming uniforms exactly as
        the scalar :meth:`RngStream.bernoulli` would."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        cursor = self._cursor
        block = self._block
        if cursor >= len(block):
            self._refill()
            block = self._block
            cursor = 0
        self._cursor = cursor + 1
        return block[cursor] < probability

    def _bernoulli_fixed(self) -> bool:
        """One precomputed outcome at ``_fixed_rate``; consumes one draw."""
        cursor = self._cursor
        outcomes = self._outcomes
        if cursor >= len(outcomes):
            self._refill()
            outcomes = self._outcomes
            cursor = 0
        self._cursor = cursor + 1
        return outcomes[cursor]

    def _bernoulli_fixed_block(self, n: int) -> List[bool]:
        """``n`` precomputed outcomes at ``_fixed_rate``, sliced off the
        block (refilling as needed); consumes exactly ``n`` draws."""
        out: List[bool] = []
        cursor = self._cursor
        outcomes = self._outcomes
        while n > 0:
            available = len(outcomes) - cursor
            if available <= 0:
                self._refill()
                outcomes = self._outcomes
                cursor = 0
                available = len(outcomes)
            take = n if n <= available else available
            out.extend(outcomes[cursor : cursor + take])
            cursor += take
            n -= take
        self._cursor = cursor
        return out

    def _bernoulli_many(self, probability: float, n: int) -> List[bool]:
        """``n`` Bernoulli draws at an arbitrary probability in (0, 1),
        consuming exactly ``n`` uniforms from the block."""
        out: List[bool] = []
        append = out.append
        cursor = self._cursor
        block = self._block
        length = len(block)
        for _ in range(n):
            if cursor >= length:
                self._refill()
                block = self._block
                length = len(block)
                cursor = 0
            append(block[cursor] < probability)
            cursor += 1
        self._cursor = cursor
        return out


class BernoulliLoss(_BufferedLoss):
    """Independent loss with a fixed rate."""

    __slots__ = ("rate",)

    def __init__(self, rate: float, rng: RngStream) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {rate}")
        super().__init__(rng, fixed_rate=rate)
        self.rate = rate

    def is_lost(self, now: float) -> bool:
        if self.rate <= 0.0:
            return False
        cursor = self._cursor
        outcomes = self._outcomes
        if cursor >= len(outcomes):
            self._refill()
            outcomes = self._outcomes
            cursor = 0
        self._cursor = cursor + 1
        return outcomes[cursor]

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        if self.rate <= 0.0:
            return [False] * len(times)
        return self._bernoulli_fixed_block(len(times))


class RoundCorrelatedLoss(_BufferedLoss):
    """The paper's in-round loss correlation, as a channel process.

    Both the Padhye model and the paper assume that "after the first
    packet loss, the subsequent packets in that round are also lost".
    This model triggers a loss event with ``trigger_rate`` per packet
    and then drops everything for ``round_duration`` (≈ one RTT) — the
    remainder of the round.  The resulting lifetime loss rate is
    roughly ``trigger_rate × (packets per half round)``.
    """

    __slots__ = ("trigger_rate", "round_duration", "_burst_until")

    def __init__(
        self, rng: RngStream, trigger_rate: float, round_duration: float
    ) -> None:
        if not 0.0 <= trigger_rate < 1.0:
            raise ConfigurationError(
                f"trigger_rate must be in [0, 1), got {trigger_rate}"
            )
        if round_duration <= 0.0:
            raise ConfigurationError(
                f"round_duration must be positive, got {round_duration}"
            )
        super().__init__(rng, fixed_rate=trigger_rate)
        self.trigger_rate = trigger_rate
        self.round_duration = round_duration
        self._burst_until = -float("inf")

    @property
    def in_burst_until(self) -> float:
        return self._burst_until

    def is_lost(self, now: float) -> bool:
        if now < self._burst_until:
            return True
        if self.trigger_rate > 0.0 and self._bernoulli_fixed():
            self._burst_until = now + self.round_duration
            return True
        return False

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        out: List[bool] = []
        append = out.append
        burst_until = self._burst_until
        trigger = self.trigger_rate
        duration = self.round_duration
        for now in times:
            # Inside a burst no draw is consumed — identical to the
            # scalar short-circuit, so a triggered loss silences the
            # trigger stream for the rest of the round.
            if now < burst_until:
                append(True)
            elif trigger > 0.0 and self._bernoulli_fixed():
                burst_until = now + duration
                append(True)
            else:
                append(False)
        self._burst_until = burst_until
        return out


class GilbertElliottLoss(_BufferedLoss):
    """Two-state Markov (Gilbert–Elliott) burst-loss process.

    State transitions are evaluated in continuous time via exponential
    sojourns, so the burst structure is independent of the packet rate:
    a 300 km/h handoff knocks out everything sent during the bad-state
    episode, exactly the "ACK burst loss" phenomenology of the paper.

    The long-run average loss rate is
    ``π_bad·loss_bad + π_good·loss_good`` with
    ``π_bad = mean_bad / (mean_good + mean_bad)``.
    """

    __slots__ = (
        "mean_good",
        "mean_bad",
        "loss_good",
        "loss_bad",
        "_in_bad_state",
        "_state_expires",
    )

    def __init__(
        self,
        rng: RngStream,
        mean_good_duration: float,
        mean_bad_duration: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        if mean_good_duration <= 0.0 or mean_bad_duration <= 0.0:
            raise ConfigurationError("state durations must be positive")
        if not (0.0 <= loss_good < 1.0 and 0.0 <= loss_bad <= 1.0):
            raise ConfigurationError("state loss rates out of range")
        super().__init__(rng)
        self.mean_good = mean_good_duration
        self.mean_bad = mean_bad_duration
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._in_bad_state = False
        self._state_expires = rng.expovariate(1.0 / mean_good_duration)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the process."""
        pi_bad = self.mean_bad / (self.mean_good + self.mean_bad)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance_to(self, now: float) -> None:
        while now >= self._state_expires:
            self._in_bad_state = not self._in_bad_state
            mean = self.mean_bad if self._in_bad_state else self.mean_good
            # Bit-identical to ``rng.expovariate(1.0 / mean)``: CPython
            # computes ``-log(1 - random()) / lambd``, and dividing by
            # the reciprocal (rather than multiplying by ``mean``)
            # preserves the exact float.
            lambd = 1.0 / mean
            self._state_expires += -_log(1.0 - self._next_uniform()) / lambd

    def is_lost(self, now: float) -> bool:
        if now >= self._state_expires:
            self._advance_to(now)
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        return self._bernoulli(rate)

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        # A burst is typically a run of equal times, so after the first
        # element the state-advance check is a single comparison; the
        # per-packet Bernoulli keeps the scalar short-circuits (the
        # default loss_good=0 / loss_bad=1 states consume no draws).
        out: List[bool] = []
        append = out.append
        bernoulli = self._bernoulli
        for now in times:
            if now >= self._state_expires:
                self._advance_to(now)
            append(
                bernoulli(self.loss_bad if self._in_bad_state else self.loss_good)
            )
        return out


class HandoffLoss(_BufferedLoss):
    """Deterministic outage windows plus a base loss rate.

    ``outages`` is a sorted sequence of ``(start, end)`` intervals
    (seconds) during which packets are lost with ``loss_during``;
    outside them the loss rate is ``base_rate``.  The schedule comes
    from the HSR cell layout (:mod:`repro.hsr.cells`).
    """

    __slots__ = ("outages", "base_rate", "loss_during", "_cursor_outage")

    def __init__(
        self,
        rng: RngStream,
        outages: Sequence[Tuple[float, float]],
        base_rate: float = 0.0,
        loss_during: float = 1.0,
    ) -> None:
        if not 0.0 <= base_rate < 1.0 or not 0.0 <= loss_during <= 1.0:
            raise ConfigurationError("loss rates out of range")
        previous_end = -float("inf")
        for start, end in outages:
            if end <= start:
                raise ConfigurationError(f"empty outage interval ({start}, {end})")
            if start < previous_end:
                raise ConfigurationError("outage intervals must be sorted and disjoint")
            previous_end = end
        super().__init__(rng)
        self.outages = list(outages)
        self.base_rate = base_rate
        self.loss_during = loss_during
        self._cursor_outage = 0

    def in_outage(self, now: float) -> bool:
        """True when ``now`` falls inside an outage window."""
        outages = self.outages
        cursor = self._cursor_outage
        count = len(outages)
        while cursor < count and outages[cursor][1] <= now:
            cursor += 1
        self._cursor_outage = cursor
        if cursor >= count:
            return False
        start, end = outages[cursor]
        return start <= now < end

    def is_lost(self, now: float) -> bool:
        rate = self.loss_during if self.in_outage(now) else self.base_rate
        return self._bernoulli(rate)

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        n = len(times)
        if n == 0:
            return []
        # The transmit path submits whole rounds at one instant, so the
        # common case is a single outage lookup for the burst; a burst
        # spanning several instants falls back to the scalar walk.
        if times[0] == times[-1]:
            rate = self.loss_during if self.in_outage(times[0]) else self.base_rate
            if rate <= 0.0:
                return [False] * n
            if rate >= 1.0:
                return [True] * n
            return self._bernoulli_many(rate, n)
        is_lost = self.is_lost
        return [is_lost(now) for now in times]


class TraceDrivenLoss(LossModel):
    """Scripted outcomes: the n-th transmission is lost iff listed.

    ``lost_indices`` counts wire transmissions through this model
    starting at 0.  Transmissions beyond the script survive.
    """

    __slots__ = ("lost_indices", "_count")

    def __init__(self, lost_indices: Sequence[int]) -> None:
        self.lost_indices = frozenset(lost_indices)
        self._count = 0

    @property
    def transmissions_seen(self) -> int:
        return self._count

    def is_lost(self, now: float) -> bool:
        lost = self._count in self.lost_indices
        self._count += 1
        return lost

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        count = self._count
        lost_indices = self.lost_indices
        n = len(times)
        self._count = count + n
        return [(count + i) in lost_indices for i in range(n)]


class CompositeLoss(LossModel):
    """Lost if any component process loses the packet."""

    __slots__ = ("components",)

    def __init__(self, components: Sequence[LossModel]) -> None:
        if not components:
            raise ConfigurationError("CompositeLoss needs at least one component")
        self.components = list(components)

    def is_lost(self, now: float) -> bool:
        # Evaluate all components so their internal states advance
        # uniformly regardless of short-circuiting; no intermediate
        # list is built.
        lost = False
        for component in self.components:
            if component.is_lost(now):
                lost = True
        return lost

    def is_lost_block(self, times: Sequence[float]) -> List[bool]:
        # Component order matches the scalar path; within a component
        # the whole burst is drawn at once, which only reorders draws
        # *across* components — invisible, because every stochastic
        # model owns a dedicated stream (the batched-RNG invariant).
        components = self.components
        result = components[0].is_lost_block(times)
        for component in components[1:]:
            block = component.is_lost_block(times)
            for i, flag in enumerate(block):
                if flag:
                    result[i] = True
        return result


def _observed_delivery(
    deliver: Callable, telemetry: Telemetry, direction: str
) -> Callable:
    """Wrap a delivery callback so arrivals are reported to ``telemetry``.

    The wrapper keeps the engine's fast-path calling convention
    ``deliver(packet, arrival_time)`` and adds exactly one hook call —
    the uninstrumented delivery path never sees it, because the wrap
    happens once at :class:`Link` construction.
    """

    def observed(packet, time: float) -> None:
        telemetry.on_packet_delivered(direction, time)
        deliver(packet, time)

    return observed


class Link:
    """A one-way link: propagation delay + optional jitter + loss.

    ``deliver`` is called with (packet, arrival_time) when the packet
    survives; ``on_drop`` (if given) is called with (packet, send_time)
    when it does not — the trace layer uses it to mark lost packets the
    way the paper's Fig. 1 marks them at "-1".

    ``deliver`` is required at construction (a link with nowhere to
    deliver is a configuration error, and surfacing it when the first
    surviving packet arrives hides it behind the loss process).  Wiring
    cycles — the ACK link needs a sender that needs the data link —
    are closed with a late-binding lambda over the not-yet-constructed
    peer, which Python resolves at call time.

    ``telemetry`` (an active :class:`~repro.telemetry.Telemetry` sink)
    reports every transmission, drop, and delivery under
    ``direction`` (``"data"`` or ``"ack"``); delivery is observed by
    wrapping ``deliver``, so the uninstrumented send path keeps a
    single ``is not None`` guard and the delivery path keeps none.
    """

    __slots__ = (
        "_simulator",
        "delay",
        "loss_model",
        "jitter",
        "deliver",
        "on_drop",
        "sent",
        "dropped",
        "_last_arrival",
        "_telemetry",
        "direction",
        "packet_pool",
        "release",
    )

    def __init__(
        self,
        simulator,
        delay: float,
        loss_model: Optional[LossModel] = None,
        jitter: Optional[Callable[[], float]] = None,
        deliver: Optional[Callable] = None,
        on_drop: Optional[Callable] = None,
        telemetry: Optional[Telemetry] = None,
        direction: str = "data",
        packet_pool=None,
        release: Optional[Callable] = None,
    ) -> None:
        if delay <= 0.0:
            raise ConfigurationError(f"link delay must be positive, got {delay}")
        if deliver is None:
            raise ConfigurationError(
                "Link needs a deliver callback at construction"
            )
        self._simulator = simulator
        self.delay = delay
        self.loss_model = loss_model or NoLoss()
        self.jitter = jitter
        self.on_drop = on_drop
        self.sent = 0
        self.dropped = 0
        self._last_arrival = 0.0
        self.direction = direction
        #: the flow's :class:`~repro.simulator.packet.PacketPool`, when
        #: pooling is on; senders discover it here so the registry's
        #: sender signature stays pool-agnostic
        self.packet_pool = packet_pool
        #: recycles a *dropped* packet back to the pool (delivered
        #: packets are released by the consumer callback instead, so
        #: the delivery fast path gains no extra frame)
        self.release = release
        self._telemetry = _active_telemetry(telemetry)
        self.deliver = (
            deliver
            if self._telemetry is None
            else _observed_delivery(deliver, self._telemetry, direction)
        )

    @property
    def loss_fraction(self) -> float:
        """Empirical loss fraction over everything sent so far."""
        return self.dropped / self.sent if self.sent else 0.0

    def send(self, packet) -> None:
        """Transmit one packet; it either arrives after delay(+jitter) or drops."""
        self.sent += 1
        simulator = self._simulator
        now = simulator.now
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.on_packet_sent(self.direction, now)
        if self.loss_model.is_lost(now):
            self.dropped += 1
            if telemetry is not None:
                telemetry.on_packet_dropped(self.direction, now)
            if self.on_drop is not None:
                self.on_drop(packet, now)
            if self.release is not None:
                self.release(packet)
            return
        jitter = self.jitter
        if jitter is None:
            arrival = now + self.delay
        else:
            extra = jitter()
            arrival = now + self.delay + extra if extra > 0.0 else now + self.delay
        # FIFO channel: jitter models (correlated) queueing delay, so a
        # packet can never overtake one sent earlier — i.i.d. reordering
        # would inject spurious fast retransmits no real cellular link
        # produces.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        else:
            self._last_arrival = arrival
        simulator.schedule_call(arrival - now, self.deliver, packet)

    def send_burst(self, packets: Sequence) -> None:
        """Transmit a whole round of packets in one call.

        Equivalent, draw for draw and event for event, to calling
        :meth:`send` once per packet: the loss model consumes its block
        with the scalar draw sequence (the batched-RNG invariant),
        jitter is drawn only for survivors in survivor order, and the
        delivery events receive the same consecutive engine sequence
        numbers the scalar loop would assign (nothing else schedules
        between the per-packet sends of a burst).

        A non-batch-capable telemetry sink (e.g. the timeline recorder,
        whose record order is part of its contract) forces the exact
        scalar loop; batch-capable sinks get one hook call per burst.
        """
        count = len(packets)
        if count == 0:
            return
        if count == 1:
            self.send(packets[0])
            return
        telemetry = self._telemetry
        if telemetry is not None and not telemetry.batched_packet_hooks:
            for packet in packets:
                self.send(packet)
            return
        simulator = self._simulator
        now = simulator.now
        self.sent += count
        if telemetry is not None:
            telemetry.on_packets_sent(self.direction, now, count)
        lost_flags = self.loss_model.is_lost_block([now] * count)
        jitter = self.jitter
        base_arrival = now + self.delay
        on_drop = self.on_drop
        release = self.release
        last = self._last_arrival
        survivors = []
        arrivals = []
        drops = 0
        for packet, lost in zip(packets, lost_flags):
            if lost:
                drops += 1
                if on_drop is not None:
                    on_drop(packet, now)
                if release is not None:
                    release(packet)
                continue
            if jitter is None:
                arrival = base_arrival
            else:
                extra = jitter()
                arrival = base_arrival + extra if extra > 0.0 else base_arrival
            # FIFO clamp, identical to the scalar path.
            if arrival < last:
                arrival = last
            else:
                last = arrival
            survivors.append(packet)
            arrivals.append(arrival)
        self._last_arrival = last
        if drops:
            self.dropped += drops
            if telemetry is not None:
                telemetry.on_packets_dropped(self.direction, now, drops)
        if survivors:
            simulator.schedule_calls_at(arrivals, self.deliver, survivors)
