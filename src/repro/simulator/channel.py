"""One-way links and pluggable packet-loss processes.

The paper's two directions behave very differently in high-speed
mobility (data loss ≈ 0.75%, ACK loss ≈ 0.66% but *bursty*), so every
connection owns two independent :class:`Link` instances, each with its
own loss model and delay process.

Loss models implement a single method, ``is_lost(now) -> bool``, drawn
once per wire transmission.  Provided models:

* :class:`BernoulliLoss` — i.i.d. loss (the Padhye world).
* :class:`GilbertElliottLoss` — two-state burst loss; the bad state
  captures handoff/outage episodes that wipe whole rounds of ACKs, the
  mechanism behind the paper's spurious timeouts.
* :class:`HandoffLoss` — deterministic outage windows from an explicit
  handoff schedule (produced by :mod:`repro.hsr`), with elevated loss
  inside the window and a base rate outside.
* :class:`TraceDrivenLoss` — scripted per-transmission outcomes for
  the micro-simulations behind paper Figs. 5, 7 and 11.
* :class:`CompositeLoss` — union of several processes (lost if any
  component loses the packet).

**Batched-RNG invariant.**  The stochastic models consume their stream
through pre-drawn blocks of raw uniforms (:meth:`RngStream.random_block`)
instead of one scalar call per transmission.  The *sequence of raw
uniforms consumed* — and therefore every loss decision — is identical
to the scalar implementation, because (a) ``random.Random.random()``
yields the same values whether drawn eagerly or lazily, (b) a draw is
consumed exactly when the scalar code would consume one (probabilities
``<= 0`` and ``>= 1`` short-circuit without a draw, matching
:meth:`RngStream.bernoulli`), and (c) exponential sojourns are computed
from a raw uniform with the same expression CPython's ``expovariate``
uses, bit for bit.  The only observable difference is that the
*underlying* stream may be over-advanced by up to one block at the end
of a run — which is why a stream feeding a loss model must not be
shared with any other consumer (scenario builders spawn a dedicated
child stream per model).
"""

from __future__ import annotations

from math import log as _log
from typing import Callable, Optional, Sequence, Tuple

from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "RoundCorrelatedLoss",
    "GilbertElliottLoss",
    "HandoffLoss",
    "TraceDrivenLoss",
    "CompositeLoss",
    "Link",
]

#: Raw uniforms pre-drawn per refill.  Big enough to amortise the
#: Python-level call into :class:`RngStream`, small enough that the
#: tail over-draw at end of flow is negligible.
_UNIFORM_BLOCK = 256


class LossModel:
    """Base class: decides, per wire transmission, whether it is lost."""

    __slots__ = ()

    def is_lost(self, now: float) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfect channel."""

    __slots__ = ()

    def is_lost(self, now: float) -> bool:
        return False


class _BufferedLoss(LossModel):
    """Shared machinery: a block-buffered uniform supply for one stream.

    Subclasses own their :class:`RngStream` exclusively (see the
    batched-RNG invariant in the module docstring) and call
    :meth:`_bernoulli` / :meth:`_next_uniform` instead of the scalar
    stream methods.
    """

    __slots__ = ("_rng", "_block", "_cursor")

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng
        self._block: Sequence[float] = ()
        self._cursor = 0

    def _next_uniform(self) -> float:
        """The next raw uniform, refilling the block when exhausted."""
        cursor = self._cursor
        block = self._block
        if cursor >= len(block):
            block = self._block = self._rng.random_block(_UNIFORM_BLOCK)
            cursor = 0
        self._cursor = cursor + 1
        return block[cursor]

    def _bernoulli(self, probability: float) -> bool:
        """Block-buffered Bernoulli draw, consuming uniforms exactly as
        the scalar :meth:`RngStream.bernoulli` would."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        cursor = self._cursor
        block = self._block
        if cursor >= len(block):
            block = self._block = self._rng.random_block(_UNIFORM_BLOCK)
            cursor = 0
        self._cursor = cursor + 1
        return block[cursor] < probability


class BernoulliLoss(_BufferedLoss):
    """Independent loss with a fixed rate."""

    __slots__ = ("rate",)

    def __init__(self, rate: float, rng: RngStream) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {rate}")
        super().__init__(rng)
        self.rate = rate

    def is_lost(self, now: float) -> bool:
        rate = self.rate
        if rate <= 0.0:
            return False
        cursor = self._cursor
        block = self._block
        if cursor >= len(block):
            block = self._block = self._rng.random_block(_UNIFORM_BLOCK)
            cursor = 0
        self._cursor = cursor + 1
        return block[cursor] < rate


class RoundCorrelatedLoss(_BufferedLoss):
    """The paper's in-round loss correlation, as a channel process.

    Both the Padhye model and the paper assume that "after the first
    packet loss, the subsequent packets in that round are also lost".
    This model triggers a loss event with ``trigger_rate`` per packet
    and then drops everything for ``round_duration`` (≈ one RTT) — the
    remainder of the round.  The resulting lifetime loss rate is
    roughly ``trigger_rate × (packets per half round)``.
    """

    __slots__ = ("trigger_rate", "round_duration", "_burst_until")

    def __init__(
        self, rng: RngStream, trigger_rate: float, round_duration: float
    ) -> None:
        if not 0.0 <= trigger_rate < 1.0:
            raise ConfigurationError(
                f"trigger_rate must be in [0, 1), got {trigger_rate}"
            )
        if round_duration <= 0.0:
            raise ConfigurationError(
                f"round_duration must be positive, got {round_duration}"
            )
        super().__init__(rng)
        self.trigger_rate = trigger_rate
        self.round_duration = round_duration
        self._burst_until = -float("inf")

    @property
    def in_burst_until(self) -> float:
        return self._burst_until

    def is_lost(self, now: float) -> bool:
        if now < self._burst_until:
            return True
        if self._bernoulli(self.trigger_rate):
            self._burst_until = now + self.round_duration
            return True
        return False


class GilbertElliottLoss(_BufferedLoss):
    """Two-state Markov (Gilbert–Elliott) burst-loss process.

    State transitions are evaluated in continuous time via exponential
    sojourns, so the burst structure is independent of the packet rate:
    a 300 km/h handoff knocks out everything sent during the bad-state
    episode, exactly the "ACK burst loss" phenomenology of the paper.

    The long-run average loss rate is
    ``π_bad·loss_bad + π_good·loss_good`` with
    ``π_bad = mean_bad / (mean_good + mean_bad)``.
    """

    __slots__ = (
        "mean_good",
        "mean_bad",
        "loss_good",
        "loss_bad",
        "_in_bad_state",
        "_state_expires",
    )

    def __init__(
        self,
        rng: RngStream,
        mean_good_duration: float,
        mean_bad_duration: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        if mean_good_duration <= 0.0 or mean_bad_duration <= 0.0:
            raise ConfigurationError("state durations must be positive")
        if not (0.0 <= loss_good < 1.0 and 0.0 <= loss_bad <= 1.0):
            raise ConfigurationError("state loss rates out of range")
        super().__init__(rng)
        self.mean_good = mean_good_duration
        self.mean_bad = mean_bad_duration
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._in_bad_state = False
        self._state_expires = rng.expovariate(1.0 / mean_good_duration)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the process."""
        pi_bad = self.mean_bad / (self.mean_good + self.mean_bad)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance_to(self, now: float) -> None:
        while now >= self._state_expires:
            self._in_bad_state = not self._in_bad_state
            mean = self.mean_bad if self._in_bad_state else self.mean_good
            # Bit-identical to ``rng.expovariate(1.0 / mean)``: CPython
            # computes ``-log(1 - random()) / lambd``, and dividing by
            # the reciprocal (rather than multiplying by ``mean``)
            # preserves the exact float.
            lambd = 1.0 / mean
            self._state_expires += -_log(1.0 - self._next_uniform()) / lambd

    def is_lost(self, now: float) -> bool:
        if now >= self._state_expires:
            self._advance_to(now)
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        return self._bernoulli(rate)


class HandoffLoss(_BufferedLoss):
    """Deterministic outage windows plus a base loss rate.

    ``outages`` is a sorted sequence of ``(start, end)`` intervals
    (seconds) during which packets are lost with ``loss_during``;
    outside them the loss rate is ``base_rate``.  The schedule comes
    from the HSR cell layout (:mod:`repro.hsr.cells`).
    """

    __slots__ = ("outages", "base_rate", "loss_during", "_cursor_outage")

    def __init__(
        self,
        rng: RngStream,
        outages: Sequence[Tuple[float, float]],
        base_rate: float = 0.0,
        loss_during: float = 1.0,
    ) -> None:
        if not 0.0 <= base_rate < 1.0 or not 0.0 <= loss_during <= 1.0:
            raise ConfigurationError("loss rates out of range")
        previous_end = -float("inf")
        for start, end in outages:
            if end <= start:
                raise ConfigurationError(f"empty outage interval ({start}, {end})")
            if start < previous_end:
                raise ConfigurationError("outage intervals must be sorted and disjoint")
            previous_end = end
        super().__init__(rng)
        self.outages = list(outages)
        self.base_rate = base_rate
        self.loss_during = loss_during
        self._cursor_outage = 0

    def in_outage(self, now: float) -> bool:
        """True when ``now`` falls inside an outage window."""
        outages = self.outages
        cursor = self._cursor_outage
        count = len(outages)
        while cursor < count and outages[cursor][1] <= now:
            cursor += 1
        self._cursor_outage = cursor
        if cursor >= count:
            return False
        start, end = outages[cursor]
        return start <= now < end

    def is_lost(self, now: float) -> bool:
        rate = self.loss_during if self.in_outage(now) else self.base_rate
        return self._bernoulli(rate)


class TraceDrivenLoss(LossModel):
    """Scripted outcomes: the n-th transmission is lost iff listed.

    ``lost_indices`` counts wire transmissions through this model
    starting at 0.  Transmissions beyond the script survive.
    """

    __slots__ = ("lost_indices", "_count")

    def __init__(self, lost_indices: Sequence[int]) -> None:
        self.lost_indices = frozenset(lost_indices)
        self._count = 0

    @property
    def transmissions_seen(self) -> int:
        return self._count

    def is_lost(self, now: float) -> bool:
        lost = self._count in self.lost_indices
        self._count += 1
        return lost


class CompositeLoss(LossModel):
    """Lost if any component process loses the packet."""

    __slots__ = ("components",)

    def __init__(self, components: Sequence[LossModel]) -> None:
        if not components:
            raise ConfigurationError("CompositeLoss needs at least one component")
        self.components = list(components)

    def is_lost(self, now: float) -> bool:
        # Evaluate all components so their internal states advance
        # uniformly regardless of short-circuiting; no intermediate
        # list is built.
        lost = False
        for component in self.components:
            if component.is_lost(now):
                lost = True
        return lost


def _observed_delivery(
    deliver: Callable, telemetry: Telemetry, direction: str
) -> Callable:
    """Wrap a delivery callback so arrivals are reported to ``telemetry``.

    The wrapper keeps the engine's fast-path calling convention
    ``deliver(packet, arrival_time)`` and adds exactly one hook call —
    the uninstrumented delivery path never sees it, because the wrap
    happens once at :class:`Link` construction.
    """

    def observed(packet, time: float) -> None:
        telemetry.on_packet_delivered(direction, time)
        deliver(packet, time)

    return observed


class Link:
    """A one-way link: propagation delay + optional jitter + loss.

    ``deliver`` is called with (packet, arrival_time) when the packet
    survives; ``on_drop`` (if given) is called with (packet, send_time)
    when it does not — the trace layer uses it to mark lost packets the
    way the paper's Fig. 1 marks them at "-1".

    ``deliver`` is required at construction (a link with nowhere to
    deliver is a configuration error, and surfacing it when the first
    surviving packet arrives hides it behind the loss process).  Wiring
    cycles — the ACK link needs a sender that needs the data link —
    are closed with a late-binding lambda over the not-yet-constructed
    peer, which Python resolves at call time.

    ``telemetry`` (an active :class:`~repro.telemetry.Telemetry` sink)
    reports every transmission, drop, and delivery under
    ``direction`` (``"data"`` or ``"ack"``); delivery is observed by
    wrapping ``deliver``, so the uninstrumented send path keeps a
    single ``is not None`` guard and the delivery path keeps none.
    """

    __slots__ = (
        "_simulator",
        "delay",
        "loss_model",
        "jitter",
        "deliver",
        "on_drop",
        "sent",
        "dropped",
        "_last_arrival",
        "_telemetry",
        "direction",
    )

    def __init__(
        self,
        simulator,
        delay: float,
        loss_model: Optional[LossModel] = None,
        jitter: Optional[Callable[[], float]] = None,
        deliver: Optional[Callable] = None,
        on_drop: Optional[Callable] = None,
        telemetry: Optional[Telemetry] = None,
        direction: str = "data",
    ) -> None:
        if delay <= 0.0:
            raise ConfigurationError(f"link delay must be positive, got {delay}")
        if deliver is None:
            raise ConfigurationError(
                "Link needs a deliver callback at construction"
            )
        self._simulator = simulator
        self.delay = delay
        self.loss_model = loss_model or NoLoss()
        self.jitter = jitter
        self.on_drop = on_drop
        self.sent = 0
        self.dropped = 0
        self._last_arrival = 0.0
        self.direction = direction
        self._telemetry = _active_telemetry(telemetry)
        self.deliver = (
            deliver
            if self._telemetry is None
            else _observed_delivery(deliver, self._telemetry, direction)
        )

    @property
    def loss_fraction(self) -> float:
        """Empirical loss fraction over everything sent so far."""
        return self.dropped / self.sent if self.sent else 0.0

    def send(self, packet) -> None:
        """Transmit one packet; it either arrives after delay(+jitter) or drops."""
        self.sent += 1
        simulator = self._simulator
        now = simulator.now
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.on_packet_sent(self.direction, now)
        if self.loss_model.is_lost(now):
            self.dropped += 1
            if telemetry is not None:
                telemetry.on_packet_dropped(self.direction, now)
            if self.on_drop is not None:
                self.on_drop(packet, now)
            return
        jitter = self.jitter
        if jitter is None:
            arrival = now + self.delay
        else:
            extra = jitter()
            arrival = now + self.delay + extra if extra > 0.0 else now + self.delay
        # FIFO channel: jitter models (correlated) queueing delay, so a
        # packet can never overtake one sent earlier — i.i.d. reordering
        # would inject spurious fast retransmits no real cellular link
        # produces.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        else:
            self._last_arrival = arrival
        simulator.schedule_call(arrival - now, self.deliver, packet)
