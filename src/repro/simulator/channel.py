"""One-way links and pluggable packet-loss processes.

The paper's two directions behave very differently in high-speed
mobility (data loss ≈ 0.75%, ACK loss ≈ 0.66% but *bursty*), so every
connection owns two independent :class:`Link` instances, each with its
own loss model and delay process.

Loss models implement a single method, ``is_lost(now) -> bool``, drawn
once per wire transmission.  Provided models:

* :class:`BernoulliLoss` — i.i.d. loss (the Padhye world).
* :class:`GilbertElliottLoss` — two-state burst loss; the bad state
  captures handoff/outage episodes that wipe whole rounds of ACKs, the
  mechanism behind the paper's spurious timeouts.
* :class:`HandoffLoss` — deterministic outage windows from an explicit
  handoff schedule (produced by :mod:`repro.hsr`), with elevated loss
  inside the window and a base rate outside.
* :class:`TraceDrivenLoss` — scripted per-transmission outcomes for
  the micro-simulations behind paper Figs. 5, 7 and 11.
* :class:`CompositeLoss` — union of several processes (lost if any
  component loses the packet).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "RoundCorrelatedLoss",
    "GilbertElliottLoss",
    "HandoffLoss",
    "TraceDrivenLoss",
    "CompositeLoss",
    "Link",
]


class LossModel:
    """Base class: decides, per wire transmission, whether it is lost."""

    def is_lost(self, now: float) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfect channel."""

    def is_lost(self, now: float) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent loss with a fixed rate."""

    def __init__(self, rate: float, rng: RngStream) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def is_lost(self, now: float) -> bool:
        return self._rng.bernoulli(self.rate)


class RoundCorrelatedLoss(LossModel):
    """The paper's in-round loss correlation, as a channel process.

    Both the Padhye model and the paper assume that "after the first
    packet loss, the subsequent packets in that round are also lost".
    This model triggers a loss event with ``trigger_rate`` per packet
    and then drops everything for ``round_duration`` (≈ one RTT) — the
    remainder of the round.  The resulting lifetime loss rate is
    roughly ``trigger_rate × (packets per half round)``.
    """

    def __init__(
        self, rng: RngStream, trigger_rate: float, round_duration: float
    ) -> None:
        if not 0.0 <= trigger_rate < 1.0:
            raise ConfigurationError(
                f"trigger_rate must be in [0, 1), got {trigger_rate}"
            )
        if round_duration <= 0.0:
            raise ConfigurationError(
                f"round_duration must be positive, got {round_duration}"
            )
        self._rng = rng
        self.trigger_rate = trigger_rate
        self.round_duration = round_duration
        self._burst_until = -float("inf")

    @property
    def in_burst_until(self) -> float:
        return self._burst_until

    def is_lost(self, now: float) -> bool:
        if now < self._burst_until:
            return True
        if self._rng.bernoulli(self.trigger_rate):
            self._burst_until = now + self.round_duration
            return True
        return False


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) burst-loss process.

    State transitions are evaluated in continuous time via exponential
    sojourns, so the burst structure is independent of the packet rate:
    a 300 km/h handoff knocks out everything sent during the bad-state
    episode, exactly the "ACK burst loss" phenomenology of the paper.

    The long-run average loss rate is
    ``π_bad·loss_bad + π_good·loss_good`` with
    ``π_bad = mean_bad / (mean_good + mean_bad)``.
    """

    def __init__(
        self,
        rng: RngStream,
        mean_good_duration: float,
        mean_bad_duration: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        if mean_good_duration <= 0.0 or mean_bad_duration <= 0.0:
            raise ConfigurationError("state durations must be positive")
        if not (0.0 <= loss_good < 1.0 and 0.0 <= loss_bad <= 1.0):
            raise ConfigurationError("state loss rates out of range")
        self._rng = rng
        self.mean_good = mean_good_duration
        self.mean_bad = mean_bad_duration
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._in_bad_state = False
        self._state_expires = rng.expovariate(1.0 / mean_good_duration)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the process."""
        pi_bad = self.mean_bad / (self.mean_good + self.mean_bad)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance_to(self, now: float) -> None:
        while now >= self._state_expires:
            self._in_bad_state = not self._in_bad_state
            mean = self.mean_bad if self._in_bad_state else self.mean_good
            self._state_expires += self._rng.expovariate(1.0 / mean)

    def is_lost(self, now: float) -> bool:
        self._advance_to(now)
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        return self._rng.bernoulli(rate)


class HandoffLoss(LossModel):
    """Deterministic outage windows plus a base loss rate.

    ``outages`` is a sorted sequence of ``(start, end)`` intervals
    (seconds) during which packets are lost with ``loss_during``;
    outside them the loss rate is ``base_rate``.  The schedule comes
    from the HSR cell layout (:mod:`repro.hsr.cells`).
    """

    def __init__(
        self,
        rng: RngStream,
        outages: Sequence[Tuple[float, float]],
        base_rate: float = 0.0,
        loss_during: float = 1.0,
    ) -> None:
        if not 0.0 <= base_rate < 1.0 or not 0.0 <= loss_during <= 1.0:
            raise ConfigurationError("loss rates out of range")
        previous_end = -float("inf")
        for start, end in outages:
            if end <= start:
                raise ConfigurationError(f"empty outage interval ({start}, {end})")
            if start < previous_end:
                raise ConfigurationError("outage intervals must be sorted and disjoint")
            previous_end = end
        self._rng = rng
        self.outages = list(outages)
        self.base_rate = base_rate
        self.loss_during = loss_during
        self._cursor = 0

    def in_outage(self, now: float) -> bool:
        """True when ``now`` falls inside an outage window."""
        while self._cursor < len(self.outages) and self.outages[self._cursor][1] <= now:
            self._cursor += 1
        if self._cursor >= len(self.outages):
            return False
        start, end = self.outages[self._cursor]
        return start <= now < end

    def is_lost(self, now: float) -> bool:
        rate = self.loss_during if self.in_outage(now) else self.base_rate
        return self._rng.bernoulli(rate)


class TraceDrivenLoss(LossModel):
    """Scripted outcomes: the n-th transmission is lost iff listed.

    ``lost_indices`` counts wire transmissions through this model
    starting at 0.  Transmissions beyond the script survive.
    """

    def __init__(self, lost_indices: Sequence[int]) -> None:
        self.lost_indices = frozenset(lost_indices)
        self._count = 0

    @property
    def transmissions_seen(self) -> int:
        return self._count

    def is_lost(self, now: float) -> bool:
        lost = self._count in self.lost_indices
        self._count += 1
        return lost


class CompositeLoss(LossModel):
    """Lost if any component process loses the packet."""

    def __init__(self, components: Sequence[LossModel]) -> None:
        if not components:
            raise ConfigurationError("CompositeLoss needs at least one component")
        self.components = list(components)

    def is_lost(self, now: float) -> bool:
        # Evaluate all components so their internal states advance
        # uniformly regardless of short-circuiting.
        outcomes = [component.is_lost(now) for component in self.components]
        return any(outcomes)


class Link:
    """A one-way link: propagation delay + optional jitter + loss.

    ``deliver`` is called with (packet, arrival_time) when the packet
    survives; ``on_drop`` (if given) is called with (packet, send_time)
    when it does not — the trace layer uses it to mark lost packets the
    way the paper's Fig. 1 marks them at "-1".
    """

    def __init__(
        self,
        simulator,
        delay: float,
        loss_model: Optional[LossModel] = None,
        jitter: Optional[Callable[[], float]] = None,
        deliver: Optional[Callable] = None,
        on_drop: Optional[Callable] = None,
    ) -> None:
        if delay <= 0.0:
            raise ConfigurationError(f"link delay must be positive, got {delay}")
        self._simulator = simulator
        self.delay = delay
        self.loss_model = loss_model or NoLoss()
        self.jitter = jitter
        self.deliver = deliver
        self.on_drop = on_drop
        self.sent = 0
        self.dropped = 0
        self._last_arrival = 0.0

    @property
    def loss_fraction(self) -> float:
        """Empirical loss fraction over everything sent so far."""
        return self.dropped / self.sent if self.sent else 0.0

    def send(self, packet) -> None:
        """Transmit one packet; it either arrives after delay(+jitter) or drops."""
        self.sent += 1
        now = self._simulator.now
        if self.loss_model.is_lost(now):
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(packet, now)
            return
        extra = max(0.0, self.jitter()) if self.jitter is not None else 0.0
        if self.deliver is None:
            raise ConfigurationError("Link has no deliver callback attached")
        # FIFO channel: jitter models (correlated) queueing delay, so a
        # packet can never overtake one sent earlier — i.i.d. reordering
        # would inject spurious fast retransmits no real cellular link
        # produces.
        arrival = max(now + self.delay + extra, self._last_arrival)
        self._last_arrival = arrival
        self._simulator.schedule(
            arrival - now, lambda pkt=packet: self.deliver(pkt, self._simulator.now)
        )
