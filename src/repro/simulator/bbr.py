"""A BBR-style rate-based sender: model the pipe, don't fill the queue.

Where every loss-based variant infers capacity from drops, BBR
(Cardwell et al., "BBR: Congestion-Based Congestion Control", ACM
Queue 2016) maintains an explicit model of the path — the windowed-max
delivery rate ``bw`` and the windowed-min round-trip ``min_rtt`` — and
keeps ``cwnd`` pinned to a gain times the estimated
bandwidth-delay product.  The probing state machine:

* **STARTUP** — exponential search: high gain until the delivery rate
  stops growing (three rounds without a 25% gain);
* **DRAIN** — one deflation phase emptying the queue STARTUP built;
* **PROBE_BW** — steady state: an eight-phase pacing-gain cycle
  (1.25, 0.75, then six neutral rounds) perturbs the rate to re-probe
  for freed capacity;
* **PROBE_RTT** — when the min-RTT sample goes stale (10 s), dip the
  window to a few segments so the queue drains and the propagation
  delay can be re-measured.

Sends are *paced*: instead of dumping a window-sized burst per ACK,
the sender emits fixed quanta through the link's batched
:meth:`~repro.simulator.channel.Link.send_burst` path, spaced by the
engine's event wheel at the modelled rate.  Loss handling (fast
recovery bookkeeping, RTO plumbing) is inherited; a loss event does
not collapse the model — BBR's bet, tested here against the paper's
channel, is that HSR loss is noise, not congestion signal.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.cc.info import BbrParams
from repro.simulator.engine import EventHandle
from repro.simulator.sender_base import (
    _MIN_SSTHRESH,
    _TIMEOUT_RECOVERY,
    BaseSender,
)

__all__ = ["BbrSender"]

_STARTUP = "startup"
_DRAIN = "drain"
_PROBE_BW = "probe_bw"
_PROBE_RTT = "probe_rtt"

#: PROBE_BW pacing-gain cycle (BBR v1): probe up, drain, six cruise rounds.
_CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: floor of the model window, so the ACK clock never starves
_MIN_CWND = 4.0


class BbrSender(BaseSender):
    """Rate-based sender: cwnd follows a bw x min_rtt path model."""

    __slots__ = (
        "startup_gain",
        "cwnd_gain",
        "probe_rtt_interval",
        "probe_rtt_duration",
        "pacing_quantum",
        "_mode",
        "_min_rtt",
        "_min_rtt_stamp",
        "_bw_filter",
        "_round_max_bw",
        "_max_bw",
        "_delivered",
        "_last_ack_time",
        "_round_end",
        "_full_bw",
        "_full_bw_rounds",
        "_cycle_index",
        "_cycle_stamp",
        "_probe_rtt_done",
        "_pace_timer",
    )

    def __init__(
        self,
        *args,
        startup_gain: float = 2.885,
        cwnd_gain: float = 2.0,
        probe_rtt_interval: float = 10.0,
        probe_rtt_duration: float = 0.2,
        bw_window_rtts: float = 10.0,
        pacing_quantum: int = 4,
        **kwargs,
    ) -> None:
        params = BbrParams(
            startup_gain=startup_gain,
            cwnd_gain=cwnd_gain,
            probe_rtt_interval=probe_rtt_interval,
            probe_rtt_duration=probe_rtt_duration,
            bw_window_rtts=bw_window_rtts,
            pacing_quantum=pacing_quantum,
        )
        super().__init__(*args, **kwargs)
        self.startup_gain = params.startup_gain
        self.cwnd_gain = params.cwnd_gain
        self.probe_rtt_interval = params.probe_rtt_interval
        self.probe_rtt_duration = params.probe_rtt_duration
        self.pacing_quantum = params.pacing_quantum
        self._mode = _STARTUP
        self._min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0
        #: per-round bandwidth maxima; the max over the deque is the
        #: windowed-max filter, aged out round by round
        self._bw_filter: deque = deque(maxlen=max(int(params.bw_window_rtts), 1))
        self._round_max_bw = 0.0
        self._max_bw = 0.0
        self._delivered = 0
        self._last_ack_time = -1.0
        self._round_end = 0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done = 0.0
        self._pace_timer: Optional[EventHandle] = None

    # -- the path model ----------------------------------------------------

    @property
    def mode(self) -> str:
        """The probing state machine's current mode."""
        return self._mode

    def _gain(self) -> float:
        if self._mode == _STARTUP:
            return self.startup_gain
        if self._mode == _DRAIN:
            return 1.0 / self.startup_gain
        if self._mode == _PROBE_BW:
            return _CYCLE_GAINS[self._cycle_index]
        return 1.0  # PROBE_RTT: the cwnd floor does the work

    def _bdp(self) -> Optional[float]:
        if self._max_bw <= 0.0 or self._min_rtt is None:
            return None
        return self._max_bw * self._min_rtt

    def _model_cwnd(self) -> Optional[float]:
        bdp = self._bdp()
        if bdp is None:
            return None
        if self._mode == _PROBE_RTT:
            return _MIN_CWND
        gain = self.cwnd_gain if self._mode == _PROBE_BW else self._gain()
        return min(max(gain * bdp, _MIN_CWND), self.wmax)

    def _on_rtt_sample(self, rtt: float, now: float) -> None:
        expired = now - self._min_rtt_stamp > self.probe_rtt_interval
        if self._min_rtt is None or rtt <= self._min_rtt or expired:
            self._min_rtt = rtt
            self._min_rtt_stamp = now

    def _after_new_ack(self, newly_acked: int, now: float) -> None:
        self._delivered += newly_acked
        if 0.0 <= self._last_ack_time < now:
            rate = newly_acked / (now - self._last_ack_time)
            if rate > self._round_max_bw:
                self._round_max_bw = rate
        self._last_ack_time = now
        if self.snd_una >= self._round_end:
            self._round_end = self.snd_max
            self._on_round_end()
        self._advance_mode(now)
        model = self._model_cwnd()
        if model is not None:
            self.cwnd = model

    def _on_round_end(self) -> None:
        if self._round_max_bw > 0.0:
            self._bw_filter.append(self._round_max_bw)
            self._max_bw = max(self._bw_filter)
        self._round_max_bw = 0.0
        if self._mode == _STARTUP:
            # Full-pipe detection: three rounds without 25% growth.
            if self._max_bw > self._full_bw * 1.25:
                self._full_bw = self._max_bw
                self._full_bw_rounds = 0
            elif self._max_bw > 0.0:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._mode = _DRAIN

    def _advance_mode(self, now: float) -> None:
        if self._mode == _DRAIN:
            bdp = self._bdp()
            if bdp is not None and self.inflight <= bdp:
                self._enter_probe_bw(now)
        if self._mode == _PROBE_BW:
            if self._min_rtt is not None and now - self._cycle_stamp > self._min_rtt:
                self._cycle_index = (self._cycle_index + 1) % len(_CYCLE_GAINS)
                self._cycle_stamp = now
            if now - self._min_rtt_stamp > self.probe_rtt_interval:
                self._mode = _PROBE_RTT
                self._probe_rtt_done = now + self.probe_rtt_duration
        elif self._mode == _PROBE_RTT and now >= self._probe_rtt_done:
            # The dip drained the queue; the freshest sample is the floor.
            self._min_rtt_stamp = now
            self._enter_probe_bw(now)

    def _enter_probe_bw(self, now: float) -> None:
        self._mode = _PROBE_BW
        self._cycle_index = 0
        self._cycle_stamp = now

    # -- loss and timeout: the model shrugs --------------------------------

    def _on_loss_event(self) -> None:
        # No multiplicative decrease: recovery still retransmits and
        # bounds inflight, but the exit window is the model's, not half.
        model = self._model_cwnd()
        self.ssthresh = max(
            model if model is not None else self.cwnd, _MIN_SSTHRESH
        )
        self.cwnd = self.ssthresh

    def _on_timeout_collapse(self) -> None:
        # Conservative during timeout recovery (the retransmit-only
        # phase), but ssthresh keeps the model so the post-recovery
        # slow start rejoins it quickly.
        model = self._model_cwnd()
        self.ssthresh = max(
            model if model is not None else self.cwnd, _MIN_SSTHRESH
        )
        self.cwnd = 1.0
        self._last_ack_time = -1.0  # the recovery gap is not a rate sample

    # -- pacing -------------------------------------------------------------

    def _pace_interval(self) -> Optional[float]:
        if self._max_bw <= 0.0:
            return None
        rate = self._gain() * self._max_bw
        if rate <= 0.0:
            return None
        return self.pacing_quantum / rate

    def pump(self) -> None:
        """Window-gated like the base sender, but rate-paced.

        Until the model has a bandwidth estimate, sends fall back to
        the base burst path (STARTUP's first rounds are ACK-clocked
        anyway).  With an estimate, each firing emits one quantum
        through the link's batched path and the next quantum is an
        engine event ``quantum/rate`` later.
        """
        if self._phase == _TIMEOUT_RECOVERY:
            return
        if self._pace_interval() is None:
            super().pump()
            return
        if self._pace_timer is None:
            self._pace_fire()
        else:
            self._ensure_rto_armed()

    def _pace_fire(self) -> None:
        self._pace_timer = None
        if self._phase == _TIMEOUT_RECOVERY:
            return
        limit = self.snd_una + math.floor(self._send_window())
        if self.snd_nxt < limit:
            self._send_range(min(limit, self.snd_nxt + self.pacing_quantum))
            interval = self._pace_interval()
            if interval is not None and self.snd_nxt < limit:
                self._pace_timer = self._simulator.schedule(
                    interval, self._pace_fire
                )
        self._ensure_rto_armed()
