"""The shared TCP sender state machine every variant builds on.

:class:`BaseSender` owns everything the paper's loss model cares about
and every variant shares: the send window bookkeeping (``snd_una`` /
``snd_nxt`` / ``snd_max``), duplicate-ACK counting and fast
retransmit, RTO arming with exponential backoff (via
:class:`~repro.simulator.rto.RtoEstimator`), timeout-recovery phase
records, Karn-filtered RTT sampling, packet pooling, and the batched
burst path into the link.  Its default policy hooks implement classic
Reno, so :class:`~repro.simulator.reno.RenoSender` is this class
unchanged; CUBIC, BBR, Compound, and Relentless override only the
hooks below.

**Sender constructor protocol.**  This is the contract a factory
registered with :func:`repro.cc.register_cc` must satisfy —
:func:`repro.cc.make_sender` (called by the flow harness for every
executed :class:`~repro.exec.FlowSpec`) invokes::

    factory(simulator, data_link, log,
            wmax=<float>,                      # window clamp (segments)
            initial_cwnd=<float>,
            rto=<RtoEstimator>,
            redundant_retransmit_link=<Link or None>,
            telemetry=<Telemetry>,             # only when a sink is active
            **tuning)                          # fields of the variant's
                                               # cc_params dataclass

The first three arguments are positional: the event engine, the data
:class:`~repro.simulator.channel.Link`, and the
:class:`~repro.simulator.metrics.FlowLog` to record into.  All
remaining arguments arrive as keywords and must have defaults.  The
instance must expose ``start()``, ``on_ack(ack, time)``, ``pump()``,
``phase``, and the window attributes this class defines — subclassing
:class:`BaseSender` provides all of it.

**Policy hooks** (defaults are Reno; override in subclasses):

* :meth:`_send_window` — segments the window permits in flight.
* :meth:`_ca_window` — the congestion-avoidance window after one ACK.
* :meth:`_on_loss_event` — window/ssthresh response entering fast
  recovery (triple duplicate ACK).
* :meth:`_exit_fast_recovery` — deflation when a new ACK ends recovery.
* :meth:`_on_timeout_collapse` — response to the first RTO of a
  sequence.
* :meth:`_on_rtt_sample` — fed every Karn-valid RTT sample.
* :meth:`_after_new_ack` — runs after window growth on every new ACK
  (rate estimators, per-round secondary windows).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.simulator.channel import Link
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.metrics import (
    DataPacketRecord,
    FlowLog,
    RecoveryPhaseRecord,
    TimeoutRecord,
)
from repro.simulator.packet import AckSegment, Segment
from repro.simulator.rto import RtoEstimator
from repro.telemetry.base import Telemetry, active as _active_telemetry
from repro.util.errors import ConfigurationError

__all__ = [
    "BaseSender",
    "_CONGESTION_AVOIDANCE",
    "_FAST_RECOVERY",
    "_SLOW_START",
    "_TIMEOUT_RECOVERY",
]

_SLOW_START = "slow_start"
_CONGESTION_AVOIDANCE = "congestion_avoidance"
_FAST_RECOVERY = "fast_recovery"
_TIMEOUT_RECOVERY = "timeout_recovery"

_DUPACK_THRESHOLD = 3
_MIN_SSTHRESH = 2.0


class BaseSender:
    """Loss detection, RTO plumbing, and window bookkeeping shared by
    every congestion-control variant; default hooks implement Reno."""

    __slots__ = (
        "_simulator",
        "_data_link",
        "_log",
        "wmax",
        "cwnd",
        "ssthresh",
        "rto",
        "redundant_retransmit_link",
        "subflow_id",
        "snd_una",
        "snd_nxt",
        "snd_max",
        "_dupacks",
        "_phase",
        "_recover_point",
        "_rto_timer",
        "_current_recovery",
        "_recovery_records",
        "_transmission_counter",
        "_send_info",
        "_telemetry",
        "_tel_records",
        "_pool",
        "_send_burst",
    )

    def __init__(
        self,
        simulator: Simulator,
        data_link: Link,
        log: FlowLog,
        wmax: float = 64.0,
        initial_cwnd: float = 2.0,
        initial_ssthresh: Optional[float] = None,
        rto: Optional[RtoEstimator] = None,
        redundant_retransmit_link: Optional[Link] = None,
        subflow_id: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if wmax < 1.0:
            raise ConfigurationError(f"wmax must be >= 1, got {wmax}")
        if initial_cwnd < 1.0:
            raise ConfigurationError(f"initial_cwnd must be >= 1, got {initial_cwnd}")
        self._simulator = simulator
        self._data_link = data_link
        self._log = log
        self.wmax = wmax
        self.cwnd = initial_cwnd
        self.ssthresh = initial_ssthresh if initial_ssthresh is not None else wmax
        self.rto = rto or RtoEstimator()
        self.redundant_retransmit_link = redundant_retransmit_link
        self.subflow_id = subflow_id

        self.snd_una = 0  # oldest unacknowledged sequence number
        self.snd_nxt = 0  # next sequence number to (re)send; pulled back on RTO
        self.snd_max = 0  # first never-transmitted sequence number
        self._dupacks = 0
        self._phase = _SLOW_START
        self._recover_point = 0  # fast-recovery exit threshold
        self._rto_timer: Optional[EventHandle] = None
        self._current_recovery: Optional[RecoveryPhaseRecord] = None
        self._recovery_records: list = []  # DataPacketRecords of the open phase
        self._transmission_counter = 0
        #: per-seq (last send time, ever retransmitted) for Karn's rule
        self._send_info: Dict[int, Tuple[float, bool]] = {}
        self._telemetry = _active_telemetry(telemetry)
        #: per-seq latest DataPacketRecord, kept only under telemetry so
        #: an RTO can be classified as spurious (latest copy not lost)
        self._tel_records: Optional[Dict[int, DataPacketRecord]] = (
            {} if self._telemetry is not None else None
        )
        # Packet pooling is discovered from the link rather than taken
        # as a constructor argument, so the CC registry's sender
        # signature stays pool-agnostic; links wired without a pool
        # (third-party harnesses, manual tests) simply allocate.
        self._pool = getattr(data_link, "packet_pool", None)
        self._send_burst = getattr(data_link, "send_burst", None)
        self._log.record_cwnd(simulator.now, self.cwnd, self._phase)

    # -- public surface ---------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def in_timeout_recovery(self) -> bool:
        return self._phase == _TIMEOUT_RECOVERY

    @property
    def inflight(self) -> int:
        """Segments sent (from the window's perspective) and unacked."""
        return self.snd_nxt - self.snd_una

    @property
    def has_outstanding_data(self) -> bool:
        return self.snd_una < self.snd_max

    def start(self) -> None:
        """Begin transmitting (schedules the first send immediately)."""
        self._simulator.schedule(0.0, self.pump)

    def pump(self) -> None:
        """Send as much data as the window allows.

        After an RTO, ``snd_nxt`` has been pulled back to just past the
        retransmitted segment, so the slow-start that follows recovery
        resends the rest of the lost window (go-back-N under cumulative
        ACKs) before any new data — real Reno behaviour.
        """
        if self._phase == _TIMEOUT_RECOVERY:
            # Only the lost packet is retransmitted during timeout
            # recovery (paper Section III-B.1).
            return
        # The window limit is fixed for the whole burst (cwnd and
        # snd_una only change from ACK/timeout events, which are never
        # processed inside this loop), so hoist the floor() out of it.
        limit = self.snd_una + math.floor(self._send_window())
        self._send_range(limit)
        self._ensure_rto_armed()

    # -- window policy hooks (defaults: Reno) -----------------------------

    def _send_window(self) -> float:
        """Segments the window currently permits in flight (pre-floor).

        Compound returns ``cwnd + dwnd`` here; rate-based senders keep
        ``cwnd`` synced to their model and use the default.
        """
        return min(self.cwnd, self.wmax)

    def _ca_window(self, newly_acked: int) -> float:
        """The congestion-avoidance window after one new ACK (pre-clamp).

        Reno: +1/cwnd per ACK, i.e. one segment every b rounds under
        delayed ACK (paper Eq. 3).
        """
        return self.cwnd + 1.0 / self.cwnd

    def _on_loss_event(self) -> None:
        """Window response entering fast recovery (triple dup ACK).

        Reno halves: ``ssthresh = cwnd/2``, then the window is set to
        ``ssthresh + 3`` (the three duplicates have left the network).
        """
        self.ssthresh = max(self.cwnd / 2.0, _MIN_SSTHRESH)
        self.cwnd = self.ssthresh + _DUPACK_THRESHOLD

    def _exit_fast_recovery(self) -> None:
        """Deflation when the recovery-ending new ACK arrives.

        Classic Reno: the window deflates to ``ssthresh`` and
        congestion avoidance resumes.
        """
        self.cwnd = self.ssthresh
        self._set_phase(_CONGESTION_AVOIDANCE)

    def _on_timeout_collapse(self) -> None:
        """Window response to the first RTO of a timeout sequence."""
        self.ssthresh = max(self.cwnd / 2.0, _MIN_SSTHRESH)
        self.cwnd = 1.0

    def _on_rtt_sample(self, rtt: float, now: float) -> None:
        """A Karn-valid RTT sample (already folded into the RTO
        estimator); delay/rate-based variants filter it here."""

    def _after_new_ack(self, newly_acked: int, now: float) -> None:
        """Runs at the end of every new-ACK event, after window growth
        and backoff collapse; rate estimators and per-round secondary
        windows (BBR, Compound) live here."""

    # -- transmission loop --------------------------------------------------

    def _send_range(self, limit: int) -> None:
        """(Re)transmit sequence numbers from ``snd_nxt`` up to ``limit``."""
        nxt = self.snd_nxt
        count = limit - nxt
        if count <= 0:
            return
        if count == 1 or self._send_burst is None:
            while self.snd_nxt < limit:
                self._transmit(
                    self.snd_nxt, is_retransmission=self.snd_nxt < self.snd_max
                )
                self.snd_nxt += 1
                if self.snd_nxt > self.snd_max:
                    self.snd_max = self.snd_nxt
            return
        # Burst path: build the whole round, then hand it to the link
        # in one call so loss draws, telemetry, and event scheduling
        # batch.  ``seq < snd_max`` (the pre-burst value) is exactly
        # the retransmission flag the scalar loop computes, because
        # snd_max only trails snd_nxt upward inside the loop.
        now = self._simulator.now
        snd_max = self.snd_max
        subflow_id = self.subflow_id
        pool = self._pool
        send_info = self._send_info
        tel_records = self._tel_records
        record_send = self._log.record_data_send
        tid = self._transmission_counter
        segments = []
        append = segments.append
        for seq in range(nxt, limit):
            retx = seq < snd_max
            if pool is not None:
                segment = pool.segment(seq, tid, now, retx, False, subflow_id)
            else:
                segment = Segment(seq, tid, now, retx, False, subflow_id)
            previous = send_info.get(seq)
            send_info[seq] = (now, retx or (previous is not None and previous[1]))
            record = DataPacketRecord(
                transmission_id=tid,
                seq=seq,
                send_time=now,
                is_retransmission=retx,
                in_timeout_recovery=False,
                subflow_id=subflow_id,
            )
            record_send(record)
            if tel_records is not None:
                tel_records[seq] = record
            tid += 1
            append(segment)
        self._transmission_counter = tid
        self.snd_nxt = limit
        if limit > snd_max:
            self.snd_max = limit
        self._send_burst(segments)

    # -- ACK processing -----------------------------------------------------

    def on_ack(self, ack: AckSegment, arrival_time: float) -> None:
        """Handle an acknowledgement delivered by the reverse link."""
        self._log.record_ack_arrival(ack.transmission_id, arrival_time)
        if ack.ack_seq > self.snd_una:
            self._on_new_ack(ack, arrival_time)
        else:
            self._on_duplicate_ack()
        self.pump()

    def _on_new_ack(self, ack: AckSegment, arrival_time: float) -> None:
        newly_acked = ack.ack_seq - self.snd_una
        # Karn's algorithm: sample RTT only from never-retransmitted
        # segments.
        last_acked = ack.ack_seq - 1
        info = self._send_info.get(last_acked)
        if info is not None and not info[1]:
            rtt_sample = arrival_time - info[0]
            self.rto.on_measurement(rtt_sample)
            self._on_rtt_sample(rtt_sample, arrival_time)
        tel_records = self._tel_records
        for seq in range(self.snd_una, ack.ack_seq):
            self._send_info.pop(seq, None)
            if tel_records is not None:
                tel_records.pop(seq, None)
        self.snd_una = ack.ack_seq
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self._dupacks = 0

        if self._phase == _TIMEOUT_RECOVERY:
            self._finish_timeout_recovery(arrival_time)
        elif self._phase == _FAST_RECOVERY:
            self._exit_fast_recovery()
        else:
            self._grow_window(newly_acked)

        self.rto.on_recovery()
        self._after_new_ack(newly_acked, arrival_time)
        self._restart_rto_timer()

    def _grow_window(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start: +1 per ACK.
            self.cwnd = min(self.cwnd + 1.0, self.wmax)
            if self.cwnd >= self.ssthresh:
                self._set_phase(_CONGESTION_AVOIDANCE)
            else:
                self._log.record_cwnd(self._simulator.now, self.cwnd, self._phase)
        else:
            if self._phase == _SLOW_START:
                self._set_phase(_CONGESTION_AVOIDANCE)
            self.cwnd = min(self._ca_window(newly_acked), self.wmax)
            self._log.record_cwnd(self._simulator.now, self.cwnd, self._phase)

    def _on_duplicate_ack(self) -> None:
        if self._phase == _TIMEOUT_RECOVERY:
            return
        self._dupacks += 1
        if self._phase == _FAST_RECOVERY:
            # Window inflation: each further dup ACK signals one more
            # packet has left the network.
            self.cwnd += 1.0
            self._log.record_cwnd(self._simulator.now, self.cwnd, self._phase)
            return
        if self._dupacks == _DUPACK_THRESHOLD and self.has_outstanding_data:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self._on_loss_event()
        self._recover_point = self.snd_max
        self._set_phase(_FAST_RECOVERY)
        self._transmit(self.snd_una, is_retransmission=True)
        self._restart_rto_timer()

    # -- timeout handling ---------------------------------------------------

    def _ensure_rto_armed(self) -> None:
        if self._rto_timer is None and self.has_outstanding_data:
            rto_value = self.rto.current_rto
            self._rto_timer = self._simulator.schedule(rto_value, self._on_rto_fired)
            if self._telemetry is not None:
                self._telemetry.on_rto_armed(self._simulator.now, rto_value)

    def _restart_rto_timer(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self._ensure_rto_armed()

    def _on_rto_fired(self) -> None:
        self._rto_timer = None
        if not self.has_outstanding_data:
            return  # everything acknowledged in the meantime
        now = self._simulator.now
        if self._phase != _TIMEOUT_RECOVERY:
            # First timeout of a sequence: start a recovery phase.
            self._on_timeout_collapse()
            self._current_recovery = RecoveryPhaseRecord(start_time=now)
            self._recovery_records = []
            self._log.recovery_phases.append(self._current_recovery)
            self._set_phase(_TIMEOUT_RECOVERY)
        rto_value = self.rto.current_rto
        self._log.timeouts.append(
            TimeoutRecord(
                time=now,
                seq=self.snd_una,
                backoff_exponent=self.rto.backoff_exponent,
                rto_value=rto_value,
                sequence_index=len(self._log.recovery_phases) - 1,
            )
        )
        if self._current_recovery is not None:
            self._current_recovery.timeouts += 1
        if self._telemetry is not None:
            # Ground truth the paper can only infer: the RTO is spurious
            # when the latest copy of the oldest outstanding segment was
            # *not* dropped by the channel — the data is in flight (or
            # its ACK was lost/late) and the retransmission is wasted.
            latest = self._tel_records.get(self.snd_una)
            spurious = latest is not None and not latest.lost
            self._telemetry.on_rto_fired(
                now, self.snd_una, spurious, self.rto.backoff_exponent
            )
        self.rto.on_timeout()
        self._transmit(self.snd_una, is_retransmission=True)
        # Pull the send pointer back: once recovery completes, slow
        # start resumes from just past the retransmitted segment and
        # resends the rest of the outstanding window.
        self.snd_nxt = self.snd_una + 1
        self._ensure_rto_armed()

    def _finish_timeout_recovery(self, time: float) -> None:
        if self._current_recovery is not None:
            self._current_recovery.end_time = time
            self._count_recovery_losses(self._current_recovery)
            self._current_recovery = None
        # Slow start resumes after recovery (paper Fig. 2).
        self._set_phase(_SLOW_START)

    def _count_recovery_losses(self, phase: RecoveryPhaseRecord) -> None:
        """Fill in retransmission loss counts for the finished phase.

        Counts the records collected while the phase was open; a
        packet's fate (``dropped``) is decided synchronously at send
        time, so the counts are exact by the time the resuming ACK
        closes the phase.
        """
        for record in self._recovery_records:
            if record.subflow_id != self.subflow_id:
                continue
            phase.retransmissions += 1
            if record.lost:
                phase.retransmissions_lost += 1
        self._recovery_records = []

    # -- transmission -------------------------------------------------------

    def _transmit(self, seq: int, is_retransmission: bool) -> None:
        now = self._simulator.now
        in_recovery = self._phase == _TIMEOUT_RECOVERY
        pool = self._pool
        if pool is not None:
            segment = pool.segment(
                seq,
                self._transmission_counter,
                now,
                is_retransmission,
                in_recovery and is_retransmission,
                self.subflow_id,
            )
        else:
            segment = Segment(
                seq=seq,
                transmission_id=self._transmission_counter,
                send_time=now,
                is_retransmission=is_retransmission,
                in_timeout_recovery=in_recovery and is_retransmission,
                subflow_id=self.subflow_id,
            )
        self._transmission_counter += 1
        previous = self._send_info.get(seq)
        self._send_info[seq] = (now, is_retransmission or (previous is not None and previous[1]))
        record = DataPacketRecord(
            transmission_id=segment.transmission_id,
            seq=seq,
            send_time=now,
            is_retransmission=is_retransmission,
            in_timeout_recovery=segment.in_timeout_recovery,
            subflow_id=self.subflow_id,
        )
        self._log.record_data_send(record)
        if self._tel_records is not None:
            self._tel_records[seq] = record
        if segment.in_timeout_recovery and self._current_recovery is not None:
            self._recovery_records.append(record)
        self._data_link.send(segment)
        if (
            segment.in_timeout_recovery
            and self.redundant_retransmit_link is not None
        ):
            # MPTCP-style double retransmission (paper Section V-B):
            # the same payload also travels the alternate subflow; the
            # receiver keeps whichever copy survives.
            copy = Segment(
                seq=seq,
                transmission_id=self._transmission_counter,
                send_time=now,
                is_retransmission=True,
                in_timeout_recovery=True,
                subflow_id=self.subflow_id + 1,
            )
            self._transmission_counter += 1
            self._log.record_data_send(
                DataPacketRecord(
                    transmission_id=copy.transmission_id,
                    seq=seq,
                    send_time=now,
                    is_retransmission=True,
                    in_timeout_recovery=True,
                    subflow_id=copy.subflow_id,
                )
            )
            self.redundant_retransmit_link.send(copy)

    def _set_phase(self, phase: str) -> None:
        if self._telemetry is not None:
            self._telemetry.on_phase_transition(
                self._simulator.now, self._phase, phase, self.cwnd
            )
        self._phase = phase
        self._log.record_cwnd(self._simulator.now, self.cwnd, phase)
