"""The TCP Reno sender state machine.

Implements the behaviour the paper's server ran ("running TCP Reno in
the kernel"): slow start, congestion avoidance, fast retransmit /
fast recovery on triple duplicate ACKs, and RTO-driven retransmission
with exponential backoff capped at 64·T.  Window growth follows the
modelled dynamics — one increment per ACK in slow start, ``1/cwnd``
per ACK in congestion avoidance — so with delayed ACK (``b`` packets
per ACK) the window grows by one segment every ``b`` rounds, matching
paper Eq. (3).

The sender has an infinite backlog (the model's steady-state
assumption) and marks every retransmission sent while in timeout
recovery, which is how the in-recovery retransmission loss rate ``q``
(paper Fig. 3) is measured from the logs.

All of the machinery lives in
:class:`~repro.simulator.sender_base.BaseSender`, whose default policy
hooks *are* Reno; this subclass only pins the name.  The phase
constants are re-exported here for compatibility with older imports.
"""

from __future__ import annotations

from repro.simulator.sender_base import (
    _CONGESTION_AVOIDANCE,
    _FAST_RECOVERY,
    _SLOW_START,
    _TIMEOUT_RECOVERY,
    BaseSender,
)

__all__ = ["RenoSender", "_CONGESTION_AVOIDANCE", "_FAST_RECOVERY", "_TIMEOUT_RECOVERY"]


class RenoSender(BaseSender):
    """TCP Reno congestion control over a lossy data link."""

    __slots__ = ()
