"""repro — reproduction of "Measurement, Modeling, and Analysis of TCP
in High-Speed Mobility Scenarios" (ICDCS 2016).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the enhanced throughput model and baselines.
* :mod:`repro.simulator` — discrete-event TCP Reno / MPTCP simulator.
* :mod:`repro.hsr` — high-speed-rail channel/mobility substrate.
* :mod:`repro.traces` — trace capture, analysis, and synthetic dataset.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.core import (
    LinkParams,
    ModelOptions,
    ThroughputPrediction,
    compare_models,
    deviation_rate,
    enhanced_throughput,
    mptcp_gain,
    padhye_approx_throughput,
    padhye_full_throughput,
    padhye_paper_form,
)

__version__ = "1.0.0"

__all__ = [
    "LinkParams",
    "ModelOptions",
    "ThroughputPrediction",
    "__version__",
    "compare_models",
    "deviation_rate",
    "enhanced_throughput",
    "mptcp_gain",
    "padhye_approx_throughput",
    "padhye_full_throughput",
    "padhye_paper_form",
]
