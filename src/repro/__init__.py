"""repro — reproduction of "Measurement, Modeling, and Analysis of TCP
in High-Speed Mobility Scenarios" (ICDCS 2016).

One import gives the working set of the whole stack::

    import repro

    # closed-form models (the paper's contribution)
    repro.enhanced_throughput(repro.LinkParams(...))

    # one simulated flow, optionally instrumented
    result = repro.run_flow(config, telemetry=repro.CountingTelemetry())

    # a campaign: specs -> executor -> report (+ merged telemetry)
    execution = repro.Executor(telemetry=True).run(
        [repro.FlowSpec(scenario=repro.Scenario(...), duration=60.0)]
    )

    # the Table-I dataset
    dataset = repro.generate_dataset(flow_scale=0.1, workers="auto")

Layers, bottom to top (each imports only downwards):

* :mod:`repro.util` — seeded RNG streams, statistics, units, errors.
* :mod:`repro.telemetry` — zero-overhead-when-off instrumentation
  (:class:`Telemetry` hooks, counters, campaign aggregation, progress).
* :mod:`repro.simulator` — discrete-event TCP / MPTCP simulator with a
  congestion-control zoo (Reno, NewReno, CUBIC, BBR, Compound,
  Relentless).
* :mod:`repro.cc` — the congestion-control registry: :class:`CCInfo`
  metadata, per-CC tuning dataclasses, ``python -m repro.cc list``.
* :mod:`repro.robustness` — fault injection, watchdogs, retry/quarantine.
* :mod:`repro.exec` — the unified flow-execution pipeline
  (:class:`FlowSpec` → :class:`Executor`, serial/pool byte-identical).
* :mod:`repro.store` — content-addressed flow-result persistence
  (:class:`ResultStore`, :class:`CachedBackend`, resumable campaigns),
  shareable over HTTP (:class:`StoreServer`, :class:`RemoteStore`).
* :mod:`repro.fabric` — the distributed campaign fabric: shard-by-key
  leases with epochs and work stealing, coordinator + workers over
  HTTP, the ``workers="fabric"`` backend (:func:`fabric_scope`).
* :mod:`repro.hsr` — high-speed-rail channel/mobility substrate.
* :mod:`repro.scenarios` — scenarios as data: schema-validated
  YAML/JSON documents, a compiler to :class:`Scenario`, the bundled
  scenario library (``python -m repro.scenarios list``).
* :mod:`repro.core` — the enhanced throughput model and baselines.
* :mod:`repro.traces` — trace capture, analysis, synthetic dataset.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.cc import (
    CCInfo,
    cc_infos,
    cc_names,
    describe_cc,
    make_sender,
    register_cc,
)
from repro.core import (
    LinkParams,
    ModelOptions,
    ThroughputPrediction,
    compare_models,
    deviation_rate,
    enhanced_throughput,
    mptcp_gain,
    padhye_approx_throughput,
    padhye_full_throughput,
    padhye_paper_form,
)
from repro.exec import (
    ExecutionResult,
    Executor,
    FlowOutcome,
    FlowSpec,
    SupervisorPolicy,
    interrupt_signal,
    simulate_spec,
    supervise_scope,
)
from repro.fabric import FabricBackend, FabricConfig, fabric_scope
from repro.hsr import (
    HookSpec,
    Scenario,
    driving_scenario,
    hsr_scenario,
    stationary_scenario,
)
from repro.robustness import (
    CampaignReport,
    FaultPlan,
    RetryPolicy,
    Watchdog,
    fault_scope,
    watchdog_scope,
)
from repro.scenarios import (
    ScenarioDocument,
    compile_scenario,
    scenario_names,
)
from repro.simulator import ConnectionConfig, FlowResult, run_flow
from repro.store import (
    CachedBackend,
    RemoteStore,
    ResultStore,
    StoreServer,
    flow_key,
    open_store,
    store_scope,
)
from repro.telemetry import (
    CampaignTelemetry,
    CountingTelemetry,
    NullTelemetry,
    Telemetry,
    TelemetryConfig,
    TimelineTelemetry,
    telemetry_scope,
)
from repro.traces import (
    SyntheticDataset,
    generate_dataset,
    generate_stationary_reference,
)

__version__ = "1.7.0"

__all__ = [
    "CCInfo",
    "CachedBackend",
    "CampaignReport",
    "CampaignTelemetry",
    "ConnectionConfig",
    "CountingTelemetry",
    "ExecutionResult",
    "Executor",
    "FabricBackend",
    "FabricConfig",
    "FaultPlan",
    "FlowOutcome",
    "FlowResult",
    "FlowSpec",
    "HookSpec",
    "LinkParams",
    "ModelOptions",
    "NullTelemetry",
    "RemoteStore",
    "ResultStore",
    "RetryPolicy",
    "Scenario",
    "ScenarioDocument",
    "StoreServer",
    "SupervisorPolicy",
    "SyntheticDataset",
    "Telemetry",
    "TelemetryConfig",
    "ThroughputPrediction",
    "TimelineTelemetry",
    "Watchdog",
    "__version__",
    "cc_infos",
    "cc_names",
    "compare_models",
    "compile_scenario",
    "describe_cc",
    "deviation_rate",
    "driving_scenario",
    "enhanced_throughput",
    "fabric_scope",
    "fault_scope",
    "flow_key",
    "generate_dataset",
    "generate_stationary_reference",
    "hsr_scenario",
    "interrupt_signal",
    "make_sender",
    "mptcp_gain",
    "open_store",
    "padhye_approx_throughput",
    "padhye_full_throughput",
    "padhye_paper_form",
    "register_cc",
    "run_flow",
    "scenario_names",
    "simulate_spec",
    "stationary_scenario",
    "store_scope",
    "supervise_scope",
    "telemetry_scope",
    "watchdog_scope",
]
