"""The campaign coordinator: lease server, delta ingester, merger.

One coordinator owns one batch of executor payloads.  It plans the
batch into shards (:class:`~repro.fabric.shard.ShardPlan`), serves
leases over HTTP to any number of workers, ingests each completed
shard's pickled :class:`~repro.exec.executor.FlowOutcome` list plus its
:class:`~repro.telemetry.campaign.CampaignTelemetry` delta, and keys
every accepted outcome by payload *position* — so when the campaign
drains, :meth:`wait` returns the outcome list in the original batch
order and the executor's spec-order report/telemetry merge produces
bytes identical to a serial run, regardless of how many workers ran,
died, or joined along the way.

The wire protocol is four JSON endpoints (pickles travel base64-inside
JSON — payloads and outcomes are arbitrary Python objects; the fabric
trusts its workers exactly as much as a process pool trusts its
children)::

    GET  /campaign  -> {campaign, total_payloads, shards, store, fn}
    POST /lease     -> {status: lease|wait|done, shard, epoch, payloads}
    POST /complete  -> {accepted, done}
    GET  /progress  -> {completed, total, shards_done, shards, ...}

Completion acceptance is the lease table's epoch rule: one accepted
completion per shard, ever.  The telemetry stream on ``/progress`` is
a *live* aggregate (merge order is arrival order — counter sums are
commutative); the byte-stable artefact is still assembled by the
executor from the returned outcomes in spec order.
"""

from __future__ import annotations

import base64
import contextlib
import json
import pickle
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exec.executor import FlowOutcome
from repro.fabric.shard import DEFAULT_SHARD_SIZE, LeaseTable, ShardPlan
from repro.store.remote import _QuietThreadingHTTPServer
from repro.telemetry.campaign import CampaignTelemetry

__all__ = ["CampaignCoordinator"]


def _pickle_b64(obj) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _unpickle_b64(data: str):
    return pickle.loads(base64.b64decode(data))


class _CoordinatorHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-fabric"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def _coordinator(self) -> "CampaignCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def _respond_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", "0"))
        return json.loads(self.rfile.read(length) or b"{}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/campaign":
            self._respond_json(200, self._coordinator.describe())
        elif self.path == "/progress":
            self._respond_json(200, self._coordinator.progress_info())
        elif self.path == "/healthz":
            self._respond_json(200, {"status": "ok"})
        else:
            self._respond_json(404, {"error": "unknown path"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/lease":
            data = self._read_json()
            self._respond_json(
                200, self._coordinator.lease(str(data.get("worker", "anonymous")))
            )
        elif self.path == "/complete":
            self._respond_json(200, self._coordinator.complete(self._read_json()))
        else:
            self._respond_json(404, {"error": "unknown path"})


class CampaignCoordinator:
    """Lease out one payload batch and merge what comes back."""

    def __init__(
        self,
        fn: Callable,
        payloads: Sequence[Tuple],
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout_s: float = 30.0,
        steal_age_s: Optional[float] = None,
        store: Optional[str] = None,
        campaign_id: str = "campaign",
    ) -> None:
        self.fn = fn
        self.payloads = list(payloads)
        self.plan = ShardPlan.for_payloads(self.payloads, shard_size=shard_size)
        self.leases = LeaseTable(
            self.plan.shard_count,
            lease_timeout_s=lease_timeout_s,
            steal_age_s=steal_age_s,
        )
        #: store reference workers should read/write through (a
        #: directory only works for same-host workers; an http:// URL
        #: works anywhere) — None runs the fabric uncached
        self.store = store
        self.campaign_id = campaign_id
        self._results: List[Optional[FlowOutcome]] = [None] * len(self.payloads)
        self._completed = 0
        #: live telemetry aggregate, merged per accepted shard in
        #: arrival order (commutative sums; display only — the
        #: byte-stable artefact is merged in spec order by the executor)
        self.telemetry = CampaignTelemetry()
        self._telemetry_shards = 0
        self._lock = threading.Lock()
        self._http: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: workers ever seen on /lease, for progress reporting
        self._workers_seen: Dict[str, int] = {}

    # -- handler-facing operations (each takes the lock once) ----------

    def describe(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign_id,
            "total_payloads": len(self.payloads),
            "shards": self.plan.shard_count,
            "store": self.store,
            "fn": _pickle_b64(self.fn),
        }

    def lease(self, worker: str) -> Dict[str, object]:
        with self._lock:
            self._workers_seen[worker] = self._workers_seen.get(worker, 0) + 1
            if self.leases.done:
                return {"status": "done"}
            lease = self.leases.claim(worker)
            if lease is None:
                return {"status": "wait"}
            positions = self.plan.shards[lease.shard]
            return {
                "status": "lease",
                "shard": lease.shard,
                "epoch": lease.epoch,
                "positions": list(positions),
                "payloads": _pickle_b64(
                    [self.payloads[position] for position in positions]
                ),
            }

    def complete(self, data: Dict[str, object]) -> Dict[str, object]:
        shard = int(data["shard"])
        epoch = int(data["epoch"])
        outcomes: List[FlowOutcome] = _unpickle_b64(data["outcomes"])
        with self._lock:
            accepted = self.leases.complete(shard, epoch)
            if accepted:
                positions = self.plan.shards[shard]
                for position, outcome in zip(positions, outcomes):
                    self._results[position] = outcome
                    self._completed += 1
                delta = data.get("telemetry")
                if delta:
                    self.telemetry.merge(CampaignTelemetry.from_mapping(delta))
                    self._telemetry_shards += 1
            return {"accepted": accepted, "done": self.leases.done}

    def progress_info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "campaign": self.campaign_id,
                "completed": self._completed,
                "total": len(self.payloads),
                "shards_done": self.leases.done_count,
                "shards": self.plan.shard_count,
                "workers_seen": sorted(self._workers_seen),
                "leases_expired": self.leases.expired,
                "leases_stolen": self.leases.stolen,
                "completions_rejected": self.leases.rejected,
                "telemetry_shards": self._telemetry_shards,
                "telemetry": self.telemetry.to_dict(),
            }

    # -- lifecycle -----------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return self.leases.done

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def url(self) -> str:
        if self._http is None:
            raise RuntimeError("coordinator is not serving")
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Start serving on a daemon thread; returns the bound URL."""
        self._http = _QuietThreadingHTTPServer((host, port), _CoordinatorHandler)
        self._http.coordinator = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-fabric-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def close(self) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @contextlib.contextmanager
    def serving(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Iterator[str]:
        url = self.serve(host, port)
        try:
            yield url
        finally:
            self.close()

    def wait(
        self,
        progress: Optional[Callable[[int], None]] = None,
        *,
        poll_s: float = 0.05,
        tick: Optional[Callable[[], None]] = None,
        timeout_s: Optional[float] = None,
    ) -> List[FlowOutcome]:
        """Block until every shard completes; outcomes in batch order.

        ``tick`` runs once per poll (the backend's worker keep-alive
        hook); ``timeout_s`` bounds the wait for tests — production
        campaigns wait indefinitely, because a fabric with no live
        workers is a fabric *waiting for workers to attach*, not a
        failure.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        reported = -1
        while not self.done:
            if tick is not None:
                tick()
            if progress is not None:
                completed = self.completed
                if completed != reported:
                    progress(completed)
                    reported = completed
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"fabric campaign incomplete after {timeout_s}s "
                    f"({self.completed}/{len(self.payloads)} payloads)"
                )
            time.sleep(poll_s)
        if progress is not None and self.completed != reported:
            progress(self.completed)
        with self._lock:
            # done ⇒ every shard accepted exactly one completion ⇒
            # every position is filled.
            return list(self._results)
