"""FabricBackend: the executor backend that runs batches on the fabric.

``Executor.for_workers("fabric")`` (the CLI's ``--workers fabric``)
plugs the distributed fabric into the same funnel every other backend
uses: ``map(fn, payloads)`` stands up a
:class:`~repro.fabric.coordinator.CampaignCoordinator` on an ephemeral
localhost port, spawns ``workers`` local worker processes
(``python -m repro.fabric work``), keeps them alive for the duration
(dead workers are respawned up to ``max_worker_restarts``), and blocks
until every shard completes — returning outcomes in batch order, so
reports and telemetry stay byte-identical to serial runs.

The backend advertises ``self_supervising = True``:
:class:`~repro.exec.supervise.SupervisedBackend` delegates the batch to
it verbatim, because the fabric's fault story (lease expiry, epoch
arbitration, worker respawn) already covers everything the in-process
supervisor would add, across a boundary the supervisor cannot see.

Configuration is ambient, like every other campaign knob:
:func:`fabric_scope` installs a :class:`FabricConfig` (the CLI's
``--fabric-workers`` / ``--lease-timeout-s`` plumbing), and external
workers on other hosts can join the same campaign mid-run by pointing
``python -m repro.fabric work --coordinator URL`` at the printed
endpoint — ``workers=0`` runs a coordinator that *only* waits for such
external workers.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import time
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.fabric.coordinator import CampaignCoordinator
from repro.fabric.shard import DEFAULT_SHARD_SIZE
from repro.util.errors import ConfigurationError

__all__ = [
    "FabricBackend",
    "FabricConfig",
    "current_fabric_config",
    "fabric_scope",
]


@dataclass(frozen=True)
class FabricConfig:
    """How a :class:`FabricBackend` stands up its campaign.

    ``workers`` local worker processes are spawned per map call
    (0 = none: external workers must attach to the printed coordinator
    URL).  ``store`` is a store *reference* — a directory path or an
    ``http://`` store-server URL — handed to every worker so completed
    flows persist as they finish; campaigns whose workers span hosts
    need the URL spelling.  ``extra_worker_args`` appends per-worker
    CLI arguments by spawn index (the chaos suites use it to hand one
    worker ``--sigkill-after N``); workers past the tuple's length get
    none.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    store: Optional[str] = None
    shard_size: int = DEFAULT_SHARD_SIZE
    lease_timeout_s: float = 30.0
    steal_age_s: Optional[float] = None
    max_worker_restarts: int = 8
    poll_s: float = 0.05
    announce: bool = False
    extra_worker_args: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.poll_s <= 0.0:
            raise ConfigurationError(
                f"poll_s must be positive, got {self.poll_s}"
            )


_ambient_fabric: ContextVar[Optional[FabricConfig]] = ContextVar(
    "repro_ambient_fabric", default=None
)


def current_fabric_config() -> Optional[FabricConfig]:
    """The ambient config installed by :func:`fabric_scope`, if any."""
    return _ambient_fabric.get()


@contextlib.contextmanager
def fabric_scope(config: Optional[FabricConfig]) -> Iterator[Optional[FabricConfig]]:
    """Install ``config`` ambiently (the CLI's fabric-flag plumbing).

    ``None`` is a no-op scope, so callers can thread an optional
    configuration straight through.
    """
    if config is None:
        yield None
        return
    token = _ambient_fabric.set(config)
    try:
        yield config
    finally:
        _ambient_fabric.reset(token)


class _WorkerFleet:
    """Spawn, watch, and respawn the local worker processes."""

    def __init__(self, coordinator_url: str, config: FabricConfig) -> None:
        self.url = coordinator_url
        self.config = config
        self.procs: List[subprocess.Popen] = []
        self.spawned = 0
        self.restarts = 0
        self.exits: Dict[int, int] = {}  # exit status -> count

    def _spawn_command(self, spawn_index: int) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.fabric",
            "work",
            "--coordinator",
            self.url,
        ]
        if spawn_index < len(self.config.extra_worker_args):
            command.extend(self.config.extra_worker_args[spawn_index])
        return command

    def _environment(self) -> Dict[str, str]:
        # The spawned interpreter must resolve the same repro package
        # as this process regardless of the caller's cwd.
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        path = env.get("PYTHONPATH", "")
        if src_dir not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src_dir}{os.pathsep}{path}" if path else src_dir
            )
        return env

    def spawn(self) -> None:
        for _ in range(self.config.workers):
            self._launch(self.spawned)

    def _launch(self, spawn_index: int) -> None:
        # stdout is silenced: campaign drivers print byte-compared
        # report JSON on *their* stdout, and worker chatter belongs to
        # stderr anyway.
        self.procs.append(
            subprocess.Popen(
                self._spawn_command(spawn_index),
                env=self._environment(),
                stdout=subprocess.DEVNULL,
            )
        )
        self.spawned += 1

    def tick(self) -> None:
        """Reap dead workers; respawn while the restart budget lasts.

        Respawns are plain fresh workers (no ``extra_worker_args`` —
        a chaos worker told to die once should not die forever): the
        fabric's answer to a crash is "attach another worker", and
        this is exactly that, automated.  Called only while the
        campaign is still incomplete, so *any* worker exit here —
        SIGKILL, crash status, even a clean 0 — means a worker the
        campaign still needs is gone.
        """
        for position, proc in enumerate(self.procs):
            status = proc.poll()
            if status is None:
                continue
            self.procs.pop(position)
            self.exits[status] = self.exits.get(status, 0) + 1
            if self.restarts < self.config.max_worker_restarts:
                self.restarts += 1
                print(
                    f"fabric: worker exited with status {status} "
                    f"mid-campaign; respawning (restart {self.restarts}/"
                    f"{self.config.max_worker_restarts})",
                    file=sys.stderr,
                    flush=True,
                )
                self._launch(spawn_index=len(self.config.extra_worker_args))
            break  # list mutated; next tick resumes the sweep
        if not self.procs and self.restarts >= self.config.max_worker_restarts:
            raise RuntimeError(
                "fabric: every local worker is dead and the restart "
                f"budget ({self.config.max_worker_restarts}) is spent; "
                "the campaign cannot finish"
            )

    def shutdown(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self.procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                proc.kill()
                proc.wait()
        self.procs.clear()


class FabricBackend:
    """Run executor batches on the distributed campaign fabric."""

    name = "fabric"
    #: SupervisedBackend delegates to us instead of wrapping: the
    #: fabric owns its own fault handling across process boundaries.
    self_supervising = True

    def __init__(self, config: Optional[FabricConfig] = None) -> None:
        self.config = config
        #: observability for the last map call (benchmarks, tests)
        self.last_stats: Optional[Dict[str, object]] = None

    def _effective_config(self) -> FabricConfig:
        if self.config is not None:
            return self.config
        ambient = current_fabric_config()
        return ambient if ambient is not None else FabricConfig()

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        items = list(items)
        if not items:
            # The warm-cache fast path: an all-hits batch reaches the
            # fabric as an empty miss list, and an empty campaign must
            # not stand up servers or spawn a single process.
            self.last_stats = {"items": 0, "workers_spawned": 0, "restarts": 0}
            return []
        config = self._effective_config()
        coordinator = CampaignCoordinator(
            fn,
            items,
            shard_size=config.shard_size,
            lease_timeout_s=config.lease_timeout_s,
            steal_age_s=config.steal_age_s,
            store=config.store,
        )
        with coordinator.serving(config.host, config.port) as url:
            if config.announce or config.workers == 0:
                # With no local workers the URL *is* the campaign:
                # external workers need it to attach.
                print(f"fabric: coordinator at {url}", file=sys.stderr, flush=True)
            fleet = _WorkerFleet(url, config)
            fleet.spawn()
            try:
                outcomes = coordinator.wait(
                    progress,
                    poll_s=config.poll_s,
                    tick=fleet.tick if config.workers else None,
                )
            finally:
                fleet.shutdown()
        info = coordinator.progress_info()
        self.last_stats = {
            "items": len(items),
            "shards": coordinator.plan.shard_count,
            "workers_spawned": fleet.spawned,
            "restarts": fleet.restarts,
            "workers_seen": info["workers_seen"],
            "leases_expired": info["leases_expired"],
            "leases_stolen": info["leases_stolen"],
            "completions_rejected": info["completions_rejected"],
        }
        return outcomes
