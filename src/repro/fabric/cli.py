"""The fabric CLI: serve a campaign, work a campaign, or do both.

Usage::

    # Terminal 1 — coordinator only; waits for workers to attach:
    python -m repro.fabric serve [--scale 0.1] [--duration 8] [--seed N]
        [--cc reno] [--store DIR|http://host:port]
        [--host H] [--port P] [--shard-size N]
        [--lease-timeout-s S] [--steal-age-s S]

    # Terminal 2..N — attach any number of workers, any time:
    python -m repro.fabric work --coordinator http://host:port
        [--worker-id NAME] [--poll-s S] [--sigkill-after N]

    # Or one command, coordinator + N local workers:
    python -m repro.fabric run [--workers 2] [...same campaign flags]

``serve`` and ``run`` drive the paper's Table-I campaign
(:func:`~repro.traces.generator.generate_dataset`) and print the final
:class:`~repro.robustness.campaign.CampaignReport` JSON on stdout —
byte-identical to ``generate_dataset(workers=1)`` of the same
parameters, which is the fabric's core contract and what the CI gate
diffs.  ``--sigkill-after`` is the chaos hook: the worker SIGKILLs
itself after N simulated flows, which is how the kill-and-rejoin
suites produce a mid-shard corpse on demand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.1,
                        help="Table-I flow_scale (default 0.1)")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="per-flow simulated seconds (default 8)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="campaign base seed (default 2015)")
    parser.add_argument("--cc", default="reno",
                        help="congestion control variant (default reno)")
    parser.add_argument("--store", default=None,
                        help="result store: a directory or an http:// "
                             "store-server URL (workers share it)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="coordinator bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="coordinator bind port (default 0 = ephemeral)")
    parser.add_argument("--shard-size", type=int, default=4,
                        help="payloads per lease shard (default 4)")
    parser.add_argument("--lease-timeout-s", type=float, default=30.0,
                        help="seconds before an unfinished lease expires "
                             "back to pending (default 30)")
    parser.add_argument("--steal-age-s", type=float, default=None,
                        help="age at which idle workers may steal an "
                             "active lease (default: timeout expiry only)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fabric",
        description="Distributed campaign fabric: coordinator and workers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="run a Table-I campaign coordinator; workers attach separately",
    )
    _add_campaign_arguments(serve)

    work = sub.add_parser("work", help="attach one worker to a coordinator")
    work.add_argument("--coordinator", required=True,
                      help="coordinator URL (printed by serve/run)")
    work.add_argument("--worker-id", default=None,
                      help="stable worker name (default host-pid)")
    work.add_argument("--poll-s", type=float, default=0.2,
                      help="idle poll interval in seconds (default 0.2)")
    work.add_argument("--sigkill-after", type=int, default=None,
                      help="chaos: SIGKILL self after N simulated flows")

    run = sub.add_parser(
        "run", help="run a Table-I campaign with local fabric workers"
    )
    _add_campaign_arguments(run)
    run.add_argument("--workers", type=int, default=2,
                     help="local worker processes to spawn (default 2)")

    return parser


def _run_campaign(args: argparse.Namespace, workers: int) -> int:
    from repro.fabric.backend import FabricConfig, fabric_scope
    from repro.traces.generator import generate_dataset

    config = FabricConfig(
        workers=workers,
        host=args.host,
        port=args.port,
        store=args.store,
        shard_size=args.shard_size,
        lease_timeout_s=args.lease_timeout_s,
        steal_age_s=args.steal_age_s,
        announce=True,
    )
    with fabric_scope(config):
        dataset = generate_dataset(
            seed=args.seed,
            duration=args.duration,
            flow_scale=args.scale,
            workers="fabric",
            store=args.store,
            cc=args.cc,
        )
    report = dataset.report
    print(report.to_json())
    print(f"fabric: campaign complete — {report.summary()}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "work":
        from repro.fabric.worker import FabricWorker

        worker = FabricWorker(
            args.coordinator,
            worker_id=args.worker_id,
            poll_s=args.poll_s,
            sigkill_after=args.sigkill_after,
        )
        return worker.run()

    if args.command == "serve":
        return _run_campaign(args, workers=0)

    # run
    return _run_campaign(args, workers=args.workers)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
