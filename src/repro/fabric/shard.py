"""Deterministic work plans and leases for distributed campaigns.

A campaign batch is split into *shards* — small groups of payload
positions — and workers claim shards under time-limited *leases*.
Two properties carry the whole fabric's correctness story:

* **The plan is a pure function of the batch.**  Every payload is
  assigned to its shard by its spec's content hash
  (:func:`~repro.store.keys.flow_key` — the same key that addresses
  its result in the store), so any coordinator planning the same batch
  produces the same shards in the same order, and a resumed campaign
  re-plans identically.  Unhashable specs fall back to a digest of
  ``flow_id`` + position, which is just as stable for one batch.

* **Re-leasing never double-counts.**  Each shard carries an *epoch*
  that increments every time it is (re-)leased.  A completion is
  accepted only when it quotes the shard's current epoch and the shard
  is not already done — so when a dead worker's shard is re-leased and
  the original worker turns out to be merely slow, whichever completion
  arrives first under the live epoch wins and the other is discarded
  whole.  Results are keyed by payload *position*, so accepted outcomes
  land exactly once and chaos/execution indices are never replayed into
  the report.

Work stealing falls out of the same table: an idle worker with no
pending shards may *steal* the oldest active lease once it has aged
past ``steal_age_s`` — the re-grant bumps the epoch, invalidating the
straggler's eventual completion.  A lease that outlives
``lease_timeout_s`` without completing is expired back to pending,
which is how SIGKILLed workers shed their work.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.store.keys import UnhashableSpecError, flow_key
from repro.util.errors import ConfigurationError

__all__ = ["Lease", "LeaseTable", "ShardPlan", "shard_key_for_payload"]

#: shards sized for lease granularity: small enough that losing one to
#: a dead worker costs little, large enough that lease round-trips are
#: amortised over several flows
DEFAULT_SHARD_SIZE = 4


def shard_key_for_payload(payload: Tuple) -> str:
    """The content hash that routes one executor payload to a shard.

    The spec's :func:`~repro.store.keys.flow_key` when it has one (so
    shard routing and store addressing agree); otherwise a digest of
    flow id + batch position, which is stable for the batch at hand.
    """
    index, spec = payload[0], payload[1]
    try:
        return flow_key(spec)
    except UnhashableSpecError:
        return hashlib.sha256(
            f"unhashable:{spec.flow_id}:{index}".encode()
        ).hexdigest()


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic payload-position → shard assignment."""

    #: per shard, the payload positions it owns (batch order preserved)
    shards: Tuple[Tuple[int, ...], ...]

    @classmethod
    def for_payloads(
        cls, payloads: Sequence[Tuple], shard_size: int = DEFAULT_SHARD_SIZE
    ) -> "ShardPlan":
        """Plan a batch: hash-bucket payloads, then split oversized
        buckets so no shard exceeds ``shard_size``.

        Bucket count scales with the batch so shards stay small; the
        bucket walk is in bucket-index order and positions within a
        bucket keep batch order, so the plan is reproducible from the
        batch alone.
        """
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if not payloads:
            return cls(shards=())
        bucket_count = max(1, (len(payloads) + shard_size - 1) // shard_size)
        buckets: Dict[int, List[int]] = {}
        for position, payload in enumerate(payloads):
            bucket = int(shard_key_for_payload(payload)[:16], 16) % bucket_count
            buckets.setdefault(bucket, []).append(position)
        shards: List[Tuple[int, ...]] = []
        for bucket in sorted(buckets):
            positions = buckets[bucket]
            for start in range(0, len(positions), shard_size):
                shards.append(tuple(positions[start : start + shard_size]))
        return cls(shards=tuple(shards))

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def payload_count(self) -> int:
        return sum(len(shard) for shard in self.shards)


@dataclass
class Lease:
    """One live grant of a shard to a worker."""

    shard: int
    epoch: int
    worker: str
    granted_at: float = field(default_factory=time.monotonic)

    def age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.granted_at


class LeaseTable:
    """Pending / active / done bookkeeping for one campaign's shards.

    Not thread-safe on its own; the coordinator serialises access
    under its lock.  ``now`` parameters exist so tests can drive the
    clock explicitly.
    """

    def __init__(
        self,
        shard_count: int,
        *,
        lease_timeout_s: float = 30.0,
        steal_age_s: Optional[float] = None,
    ) -> None:
        if lease_timeout_s <= 0.0:
            raise ConfigurationError(
                f"lease_timeout_s must be positive, got {lease_timeout_s}"
            )
        if steal_age_s is not None and steal_age_s <= 0.0:
            raise ConfigurationError(
                f"steal_age_s must be positive, got {steal_age_s}"
            )
        self.lease_timeout_s = lease_timeout_s
        #: minimum age before an active lease may be stolen by an idle
        #: worker; None = steal only via timeout expiry
        self.steal_age_s = steal_age_s
        self.shard_count = shard_count
        self._pending: Deque[int] = deque(range(shard_count))
        self._active: Dict[int, Lease] = {}
        self._done: Set[int] = set()
        self._epochs: Dict[int, int] = {shard: 0 for shard in range(shard_count)}
        #: observability counters: expiries, steals, rejected completions
        self.expired = 0
        self.stolen = 0
        self.rejected = 0

    # -- queries -------------------------------------------------------

    @property
    def done(self) -> bool:
        return len(self._done) == self.shard_count

    @property
    def done_count(self) -> int:
        return len(self._done)

    def epoch_of(self, shard: int) -> int:
        return self._epochs[shard]

    # -- lease lifecycle -----------------------------------------------

    def _expire_stale(self, now: float) -> None:
        for shard, lease in list(self._active.items()):
            if lease.age(now) > self.lease_timeout_s:
                del self._active[shard]
                self._pending.append(shard)
                self.expired += 1

    def claim(self, worker: str, now: Optional[float] = None) -> Optional[Lease]:
        """Grant the next shard to ``worker``, or None when nothing is
        claimable right now (the worker should poll again — active
        leases may yet expire or complete)."""
        now = time.monotonic() if now is None else now
        self._expire_stale(now)
        if self._pending:
            shard = self._pending.popleft()
        elif self._active and self.steal_age_s is not None:
            # Idle worker, nothing pending: steal the oldest active
            # lease once it has aged past the steal threshold.  The
            # epoch bump below invalidates the straggler's completion.
            oldest = min(self._active.values(), key=lambda lease: lease.granted_at)
            if oldest.age(now) < self.steal_age_s or oldest.worker == worker:
                return None
            shard = oldest.shard
            del self._active[shard]
            self.stolen += 1
        else:
            return None
        self._epochs[shard] += 1
        lease = Lease(
            shard=shard, epoch=self._epochs[shard], worker=worker, granted_at=now
        )
        self._active[shard] = lease
        return lease

    def complete(self, shard: int, epoch: int) -> bool:
        """Whether this completion is the accepted one for ``shard``.

        Exactly one completion per shard is ever accepted: the first
        to arrive quoting the shard's *current* epoch.  Stale epochs
        (the lease was re-granted) and duplicate completions are
        rejected whole, which is what keeps re-leased shards from
        double-counting execution indices.
        """
        if shard in self._done or epoch != self._epochs[shard]:
            self.rejected += 1
            return False
        self._active.pop(shard, None)
        # A lease can expire back to pending and *then* complete (the
        # holder was slow, not dead): pull it out of the queue so the
        # shard is never pointlessly re-run.
        try:
            self._pending.remove(shard)
        except ValueError:
            pass
        self._done.add(shard)
        return True
