"""repro.fabric: the distributed campaign fabric.

Any number of worker processes — on one or many hosts — join, leave,
and resume a single campaign, and the final report is byte-identical
to a serial run regardless of topology.  Three pieces make that true:

* :class:`~repro.fabric.shard.ShardPlan` /
  :class:`~repro.fabric.shard.LeaseTable` — the batch is planned into
  shards by each spec's content hash (the same
  :func:`~repro.store.keys.flow_key` that addresses its result in the
  store), and shards are leased out under epochs: a re-leased shard's
  stale completion is rejected whole, so dead workers and stragglers
  can never double-count a flow.

* :class:`~repro.fabric.coordinator.CampaignCoordinator` /
  :class:`~repro.fabric.worker.FabricWorker` — a lease server in the
  driver process and a stateless claim → execute → complete loop in
  each worker (``python -m repro.fabric work``).  Workers stream each
  completed shard's outcomes and telemetry delta back; the coordinator
  keys them by payload position, so the executor's spec-order merge is
  untouched.

* :class:`FabricBackend` — the executor backend behind
  ``Executor.for_workers("fabric")`` and the CLI's ``--workers
  fabric``: it stands up a coordinator, spawns local workers (and
  respawns dead ones), and returns outcomes in batch order.  Point the
  campaign at a shared store (``--store http://host:port``, served by
  ``python -m repro.store serve``) and completed flows persist as they
  finish — a killed campaign resumes from exactly where its fleet got
  to, and a warm rerun simulates nothing.

``python -m repro.fabric`` offers ``serve`` / ``work`` / ``run`` over
the paper's Table-I campaign; :func:`fabric_scope` is the ambient
configuration every executor-driven experiment picks up.
"""

from repro.fabric.backend import (
    FabricBackend,
    FabricConfig,
    current_fabric_config,
    fabric_scope,
)
from repro.fabric.coordinator import CampaignCoordinator
from repro.fabric.shard import Lease, LeaseTable, ShardPlan, shard_key_for_payload
from repro.fabric.worker import FabricWorker

__all__ = [
    "CampaignCoordinator",
    "FabricBackend",
    "FabricConfig",
    "FabricWorker",
    "Lease",
    "LeaseTable",
    "ShardPlan",
    "current_fabric_config",
    "fabric_scope",
    "shard_key_for_payload",
]
