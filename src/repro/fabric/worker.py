"""The fabric worker: claim a lease, run the shard, post it back.

A worker is stateless and owns nothing: it learns the campaign (the
pickled-by-reference map function and the store reference) from
``GET /campaign``, then loops *claim → execute → complete* until the
coordinator says the campaign is drained.  Everything that makes the
fabric deterministic lives elsewhere — specs carry their own seeds, the
lease table arbitrates duplicates — so a worker can be SIGKILLed at any
instruction and the campaign still converges to the same bytes: its
leased shard expires, another worker re-runs it, and the re-run is a
pure function of the specs.

When the campaign carries a store reference, the shard runs through a
:class:`~repro.store.backend.CachedBackend` over that store (a
:class:`~repro.store.remote.RemoteStore` client for ``http://``
references), so every completed flow is persisted the moment it
finishes — a worker that dies *after* simulating but *before*
completing its shard has still banked the expensive part, and the
re-run serves those flows as cache hits.

``sigkill_after=N`` (the CLI's ``--sigkill-after``) is the chaos hook
the kill-and-rejoin suites use: the worker SIGKILLs itself — a real
``SIGKILL``, no cleanup, no goodbye — immediately after its Nth flow
*execution* (cache hits don't count), which lands mid-shard by
construction whenever a shard holds more than N flows.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import pickle
import signal
import socket
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.executor import FlowOutcome
from repro.telemetry.campaign import CampaignTelemetry
from repro.telemetry.counters import CountingTelemetry

__all__ = ["FabricWorker"]


class _CoordinatorClient:
    """Minimal JSON-over-HTTP client for one coordinator, with
    connection reuse and a short transient-failure retry."""

    RETRIES = 3
    RETRY_SLEEP_S = 0.2

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        from urllib.parse import urlsplit

        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"coordinator URL must be http://host:port, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _drop(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        body = None if payload is None else json.dumps(payload).encode()
        last_error: Optional[Exception] = None
        for attempt in range(self.RETRIES):
            if attempt:
                time.sleep(self.RETRY_SLEEP_S)
            try:
                conn = self._connection()
                conn.request(method, path, body=body)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                self._drop()
                last_error = error
                continue
            if response.status != 200:
                raise OSError(
                    f"coordinator {method} {path} failed with {response.status}"
                )
            return json.loads(raw)
        raise OSError(
            f"coordinator {self.host}:{self.port} unreachable: {last_error}"
        )


class _ShardRunner:
    """The serial inner backend a worker's shard runs on.

    Counts real executions so the ``sigkill_after`` chaos hook fires on
    *simulated* flows, not cache hits, and satisfies the backend ``map``
    protocol so a :class:`~repro.store.backend.CachedBackend` can wrap
    it when the campaign carries a store.
    """

    name = "fabric-worker"

    def __init__(self, worker: "FabricWorker") -> None:
        self.worker = worker

    def map(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int], None]] = None,
    ) -> List:
        results = []
        for done, item in enumerate(items, start=1):
            results.append(fn(item))
            self.worker.note_execution()
            if progress is not None:
                progress(done)
        return results


class FabricWorker:
    """One claim → execute → complete loop against a coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        *,
        worker_id: Optional[str] = None,
        poll_s: float = 0.2,
        sigkill_after: Optional[int] = None,
    ) -> None:
        self.client = _CoordinatorClient(coordinator_url)
        self.worker_id = (
            worker_id
            if worker_id
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        self.poll_s = poll_s
        self.sigkill_after = sigkill_after
        self.executed = 0
        self.shards_completed = 0

    def _note(self, message: str) -> None:
        print(f"fabric worker {self.worker_id}: {message}", file=sys.stderr, flush=True)

    def note_execution(self) -> None:
        """Called by the shard runner after every *simulated* flow."""
        self.executed += 1
        if self.sigkill_after is not None and self.executed >= self.sigkill_after:
            # The chaos hook: die the hard way, mid-shard, with the
            # lease unreturned — exactly what a OOM-killed or
            # power-cycled worker looks like to the coordinator.
            self._note(
                f"chaos: SIGKILL self after {self.executed} executions"
            )
            os.kill(os.getpid(), signal.SIGKILL)

    # -- shard execution -----------------------------------------------

    def _open_store(self, ref: Optional[str]):
        if not ref:
            return None
        from repro.store.remote import open_store

        return open_store(ref)

    def _run_shard(self, fn: Callable, payloads: List[Tuple], store) -> List[FlowOutcome]:
        runner = _ShardRunner(self)
        if store is None:
            return runner.map(fn, payloads)
        from repro.store.backend import CachedBackend

        return CachedBackend(store, runner).map(fn, payloads)

    @staticmethod
    def _telemetry_delta(outcomes: List[FlowOutcome]) -> Optional[Dict[str, object]]:
        delta: Optional[CampaignTelemetry] = None
        for outcome in outcomes:
            # the fabric maps arbitrary fns; only FlowOutcome-shaped
            # results carry a telemetry summary worth streaming
            result = getattr(outcome, "result", None)
            if result is None or not isinstance(
                getattr(result, "telemetry", None), CountingTelemetry
            ):
                continue
            if delta is None:
                delta = CampaignTelemetry()
            delta.merge_flow(result.telemetry.summarise(outcome.spec.flow_id))
        return None if delta is None else delta.to_dict()

    # -- the loop ------------------------------------------------------

    def run(self) -> int:
        """Work until the campaign drains; 0 on clean exit."""
        try:
            campaign = self.client.request("GET", "/campaign")
        except OSError as error:
            self._note(f"cannot reach coordinator: {error}")
            return 1
        fn = pickle.loads(base64.b64decode(campaign["fn"]))
        store = self._open_store(campaign.get("store"))
        self._note(
            f"joined campaign {campaign.get('campaign')!r}: "
            f"{campaign.get('total_payloads')} payloads in "
            f"{campaign.get('shards')} shards"
            + (f", store {campaign.get('store')}" if campaign.get("store") else "")
        )
        while True:
            try:
                job = self.client.request(
                    "POST", "/lease", {"worker": self.worker_id}
                )
            except OSError as error:
                # The coordinator is gone: the campaign finished (its
                # driver tore the server down) or died with its driver.
                # Either way there is nothing left to work on.
                self._note(f"coordinator gone ({error}); exiting")
                return 0
            status = job.get("status")
            if status == "done":
                self._note(
                    f"campaign drained; ran {self.executed} flows in "
                    f"{self.shards_completed} shards"
                )
                return 0
            if status == "wait":
                time.sleep(self.poll_s)
                continue
            shard = int(job["shard"])
            epoch = int(job["epoch"])
            payloads: List[Tuple] = pickle.loads(base64.b64decode(job["payloads"]))
            outcomes = self._run_shard(fn, payloads, store)
            completion = {
                "shard": shard,
                "epoch": epoch,
                "worker": self.worker_id,
                "outcomes": base64.b64encode(pickle.dumps(outcomes)).decode("ascii"),
            }
            delta = self._telemetry_delta(outcomes)
            if delta is not None:
                completion["telemetry"] = delta
            try:
                verdict = self.client.request("POST", "/complete", completion)
            except OSError as error:
                self._note(f"coordinator gone mid-completion ({error}); exiting")
                return 0
            self.shards_completed += 1
            if not verdict.get("accepted"):
                # A re-leased shard beat us to it (we were the
                # straggler).  Nothing to do — the work was a pure
                # function and the accepted copy is identical.
                self._note(f"shard {shard} epoch {epoch} superseded; discarded")
