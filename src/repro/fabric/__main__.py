"""``python -m repro.fabric`` — campaign fabric CLI entry point."""

from repro.fabric.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
