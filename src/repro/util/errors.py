"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """A parameter object was constructed with invalid values.

    Raised eagerly at construction time (not at use time) so that a bad
    experiment configuration fails before any simulation work is done.
    """


class ModelDomainError(ReproError, ValueError):
    """A closed-form model was evaluated outside its mathematical domain.

    Example: a loss rate of exactly zero passed to the Padhye formula,
    whose expected-round expression divides by ``p``.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state.

    This always indicates a bug in the simulator (or an event injected
    out of order), never a legitimate protocol condition; protocol
    conditions such as timeouts are modelled, not raised.
    """


class BudgetExceededError(ReproError, RuntimeError):
    """A watchdog budget (events, simulated time, or wall clock) ran out.

    Unlike :class:`SimulationError` this is not necessarily a bug: fault
    injection deliberately drives simulations into degenerate regimes,
    and the watchdog converts "would hang forever" into a catchable,
    attributable failure.  ``kind`` names the exhausted budget
    (``"events"``, ``"sim-time"`` or ``"wall-clock"``).
    """

    def __init__(self, kind: str, limit: float, detail: str = "") -> None:
        self.kind = kind
        self.limit = limit
        message = f"{kind} budget exceeded (limit={limit})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class WorkerCrashError(ReproError, RuntimeError):
    """A worker process died (segfault, ``os._exit``, OOM-kill) mid-flow.

    Raised in the *parent* by the supervision layer after it isolates
    which spec was running on the dead worker; the flow itself never
    sees it.  Classified as ``infrastructure`` by the retry taxonomy —
    a healthy worker usually completes the same spec.
    """


class DeadlineExceededError(ReproError, RuntimeError):
    """A flow overran its parent-enforced wall-clock deadline.

    Distinct from :class:`BudgetExceededError`: the watchdog polls from
    *inside* the simulation loop and cannot fire when the interpreter
    itself is stuck (a hung C call, a pathological GC, a worker
    deadlock).  The supervision layer enforces the deadline from the
    parent via a future timeout and kills the worker, so even a frozen
    flow is preempted.
    """


class ChaosError(ReproError, RuntimeError):
    """An injected failure from a :class:`~repro.exec.chaos.ChaosPlan`.

    Only ever raised on purpose, by the chaos harness's scheduled
    ``raise`` action — seeing it outside a chaos test means the plan
    leaked into a real campaign.
    """


class TraceValidationError(ReproError, ValueError):
    """A captured flow trace failed post-capture sanity validation.

    Carries the list of human-readable ``issues`` found by
    :func:`repro.robustness.validate.validate_trace`; campaign execution
    quarantines such traces instead of letting them corrupt
    dataset-level statistics.
    """

    def __init__(self, flow_id: str, issues) -> None:
        self.flow_id = flow_id
        self.issues = list(issues)
        summary = "; ".join(self.issues[:3])
        if len(self.issues) > 3:
            summary += f"; … ({len(self.issues)} issues total)"
        super().__init__(f"invalid trace {flow_id!r}: {summary}")
