"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """A parameter object was constructed with invalid values.

    Raised eagerly at construction time (not at use time) so that a bad
    experiment configuration fails before any simulation work is done.
    """


class ModelDomainError(ReproError, ValueError):
    """A closed-form model was evaluated outside its mathematical domain.

    Example: a loss rate of exactly zero passed to the Padhye formula,
    whose expected-round expression divides by ``p``.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state.

    This always indicates a bug in the simulator (or an event injected
    out of order), never a legitimate protocol condition; protocol
    conditions such as timeouts are modelled, not raised.
    """
