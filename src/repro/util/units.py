"""Unit conversions used throughout the library.

Internal conventions:

* time is in **seconds**,
* throughput at the model layer is in **packets (MSS) per second**,
* train speed at the HSR layer is in **metres per second**,
* distances are in **metres**.

The helpers below convert to the units the paper reports (km/h, Mbps).
"""

from __future__ import annotations

__all__ = [
    "BYTES_PER_MSS",
    "kmh_to_mps",
    "mps_to_kmh",
    "pps_to_mbps",
    "mbps_to_pps",
    "seconds_to_ms",
    "ms_to_seconds",
    "bytes_to_gb",
]

#: Maximum segment size assumed by the model layer (standard Ethernet
#: payload minus IP/TCP headers).  The paper assumes all data packets
#: are one MSS.
BYTES_PER_MSS = 1460


def kmh_to_mps(kmh: float) -> float:
    """Convert kilometres-per-hour to metres-per-second."""
    return kmh * 1000.0 / 3600.0


def mps_to_kmh(mps: float) -> float:
    """Convert metres-per-second to kilometres-per-hour."""
    return mps * 3600.0 / 1000.0


def pps_to_mbps(packets_per_second: float, mss_bytes: int = BYTES_PER_MSS) -> float:
    """Convert a packet rate (MSS-sized packets/s) to megabits per second."""
    return packets_per_second * mss_bytes * 8.0 / 1e6


def mbps_to_pps(mbps: float, mss_bytes: int = BYTES_PER_MSS) -> float:
    """Convert megabits per second to MSS-sized packets per second."""
    return mbps * 1e6 / (mss_bytes * 8.0)


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1000.0


def bytes_to_gb(num_bytes: float) -> float:
    """Convert bytes to (decimal) gigabytes, as used in the paper's Table I."""
    return num_bytes / 1e9
