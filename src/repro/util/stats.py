"""Small statistics toolkit: summary statistics and empirical CDFs.

Kept dependency-light (pure Python + math) because these functions are
called from hot simulator paths; numpy is reserved for the bulk
vectorised analyses in :mod:`repro.traces`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "mean",
    "median",
    "stddev",
    "variance",
    "percentile",
    "geometric_mean",
    "pearson_correlation",
    "EmpiricalCdf",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ValueError on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (average of middle two for even length)."""
    if not values:
        raise ValueError("median() of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def variance(values: Sequence[float]) -> float:
    """Population variance; 0.0 for a single element."""
    if not values:
        raise ValueError("variance() of empty sequence")
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric_mean() of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either sequence is constant (correlation is then
    undefined; 0 is the convention most useful to the callers here,
    which test for the *presence* of a positive trend).
    """
    if len(xs) != len(ys):
        raise ValueError("pearson_correlation() needs equal-length sequences")
    if len(xs) < 2:
        raise ValueError("pearson_correlation() needs at least two points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / math.sqrt(vx * vy)


@dataclass(frozen=True)
class EmpiricalCdf:
    """Empirical cumulative distribution function over a sample.

    Supports evaluation (``cdf(x)``), inverse evaluation
    (``quantile(q)``), and export of step-plot points — the form in
    which the paper's Figs. 3 and 6 are drawn.
    """

    sorted_values: Tuple[float, ...]

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "EmpiricalCdf":
        if not values:
            raise ValueError("EmpiricalCdf needs at least one sample")
        return cls(tuple(sorted(values)))

    def __call__(self, x: float) -> float:
        """Fraction of samples ≤ x."""
        return bisect_right(self.sorted_values, x) / len(self.sorted_values)

    def quantile(self, q: float) -> float:
        """Smallest sample value v with cdf(v) ≥ q, for q in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile q must be in (0, 1], got {q}")
        index = math.ceil(q * len(self.sorted_values)) - 1
        return self.sorted_values[max(0, index)]

    @property
    def n(self) -> int:
        return len(self.sorted_values)

    def mean(self) -> float:
        return mean(self.sorted_values)

    def step_points(self) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs suitable for drawing the CDF as a step plot."""
        n = len(self.sorted_values)
        return [(v, (i + 1) / n) for i, v in enumerate(self.sorted_values)]
