"""Shared utilities: seeded RNG streams, statistics, units, and errors."""

from repro.util.errors import (
    BudgetExceededError,
    ConfigurationError,
    ModelDomainError,
    SimulationError,
    TraceValidationError,
)
from repro.util.rng import RngStream, spawn_streams
from repro.util.stats import (
    EmpiricalCdf,
    geometric_mean,
    mean,
    median,
    percentile,
    stddev,
)
from repro.util.units import (
    BYTES_PER_MSS,
    kmh_to_mps,
    mbps_to_pps,
    mps_to_kmh,
    pps_to_mbps,
    seconds_to_ms,
)

__all__ = [
    "BYTES_PER_MSS",
    "BudgetExceededError",
    "ConfigurationError",
    "EmpiricalCdf",
    "ModelDomainError",
    "RngStream",
    "SimulationError",
    "TraceValidationError",
    "geometric_mean",
    "kmh_to_mps",
    "mbps_to_pps",
    "mean",
    "median",
    "mps_to_kmh",
    "percentile",
    "pps_to_mbps",
    "seconds_to_ms",
    "spawn_streams",
    "stddev",
]
