"""Deterministic random-number streams for reproducible experiments.

Every stochastic component in the library (loss channels, workload
generators, campaign drivers) draws from an :class:`RngStream` rather
than a module-level RNG, so that

* two runs with the same seed produce byte-identical traces, and
* independent components never perturb each other's sequences.

Streams are spawned hierarchically from a root seed with
:func:`spawn_streams`, mirroring ``numpy``'s ``SeedSequence`` design
but with a tiny, dependency-light wrapper API tailored to this library.
"""

from __future__ import annotations

import math
import random
from array import array
from typing import Dict, Iterable, List, Optional, Sequence

try:  # optional acceleration for block post-processing (never generation)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

__all__ = ["RngStream", "spawn_streams", "derive_seed"]

#: ``4 * exp(-0.5) / sqrt(2)`` — CPython's Kinderman–Monahan constant,
#: recomputed here with the same expression so :meth:`RngStream.lognormal_block`
#: is bit-identical to ``random.Random.lognormvariate`` on every platform.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)

_MIX_CONSTANT = 0x9E3779B97F4A7C15  # 64-bit golden-ratio constant


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from ``root_seed`` and a hashable path.

    The derivation is a SplitMix64-style integer mix over the root seed
    and the (stringified) path elements.  It is stable across Python
    processes and platforms, unlike the builtin ``hash``.
    """
    state = (root_seed ^ _MIX_CONSTANT) & 0xFFFFFFFFFFFFFFFF
    for element in path:
        for byte in str(element).encode("utf-8"):
            state = (state ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
        state = _splitmix64(state)
    return state


def _splitmix64(state: int) -> int:
    state = (state + _MIX_CONSTANT) & 0xFFFFFFFFFFFFFFFF
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class RngStream:
    """A named, seeded random stream.

    Thin wrapper over :class:`random.Random` exposing only the draws the
    library needs, so the stochastic surface of every component is
    explicit and easy to stub in tests.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self.seed)
        #: preallocated per-size ``array('d')`` buffers reused by the
        #: ``*_block`` methods (one float buffer per distinct block size)
        self._block_buffers: Dict[int, array] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r}, seed={self.seed})"

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return self._random.uniform(low, high)

    def random(self) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self._random.random()

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    # -- batched draws --------------------------------------------------
    #
    # The hot-path loss models consume their stream in pre-drawn blocks
    # (see repro.simulator.channel).  Batched draws are element-for-
    # element identical to the scalar methods above: random_block(n)
    # yields exactly the values n successive random() calls would, and
    # the derived blocks apply the same per-element expressions (and
    # the same 0/1 short-circuits) as their scalar counterparts.
    #
    # Buffer contract: the float-block methods fill and return a
    # *preallocated* ``array('d')`` owned by this stream (one buffer per
    # block size), so a refill loop allocates no fresh list per call.
    # The returned buffer is overwritten by the next same-size call on
    # the same stream — copy it if it must survive.  Hot consumers
    # (``repro.simulator.channel._BufferedLoss``) replace their
    # reference on every refill, which is exactly this contract.

    def _checked_block(self, n: int) -> array:
        """Validate ``n`` once and return this stream's reusable buffer."""
        if n < 0:
            raise ValueError(f"block size must be >= 0, got {n}")
        buffers = self._block_buffers
        buffer = buffers.get(n)
        if buffer is None:
            buffer = buffers[n] = array("d", bytes(8 * n))
        return buffer

    def random_block(self, n: int) -> Sequence[float]:
        """Draw ``n`` uniforms from ``[0, 1)`` in one Python-level call.

        Identical values, in order, to ``n`` calls of :meth:`random`,
        returned in the stream's preallocated ``array('d')`` buffer.
        """
        buffer = self._checked_block(n)
        random = self._random.random
        buffer[:] = array("d", [random() for _ in range(n)])
        return buffer

    def bernoulli_block(self, probability: float, n: int) -> List[bool]:
        """``n`` Bernoulli outcomes, identical to ``n`` scalar calls.

        Mirrors :meth:`bernoulli` exactly: probabilities ``<= 0`` and
        ``>= 1`` short-circuit without consuming any underlying draws.
        The comparison is vectorised through numpy when available.
        """
        self._checked_block(n)
        if probability <= 0.0:
            return [False] * n
        if probability >= 1.0:
            return [True] * n
        random = self._random.random
        if _np is not None and n >= 32:
            draws = self.random_block(n)
            return (_np.frombuffer(draws) < probability).tolist()
        return [random() < probability for _ in range(n)]

    def expovariate_block(self, rate: float, n: int) -> Sequence[float]:
        """``n`` exponential draws, identical to ``n`` scalar calls.

        Uses the same expression CPython's ``Random.expovariate`` uses
        (``-log(1 - random()) / rate``), so each element is bit-identical
        to the corresponding :meth:`expovariate` call.  Returned in the
        stream's preallocated ``array('d')`` buffer.
        """
        buffer = self._checked_block(n)
        random = self._random.random
        log = math.log
        buffer[:] = array("d", [-log(1.0 - random()) / rate for _ in range(n)])
        return buffer

    def lognormal_block(self, mu: float, sigma: float, n: int) -> Sequence[float]:
        """``n`` log-normal draws, identical to ``n`` :meth:`lognormal` calls.

        Replicates CPython's Kinderman–Monahan rejection loop
        (``random.Random.normalvariate``) bit for bit — same draws
        consumed, same accept condition, same arithmetic — then
        exponentiates, so batching the per-packet jitter stream cannot
        change a single delivery time.  Returned in the stream's
        preallocated ``array('d')`` buffer.
        """
        buffer = self._checked_block(n)
        random = self._random.random
        log = math.log
        exp = math.exp
        magic = _NV_MAGICCONST
        values = []
        append = values.append
        for _ in range(n):
            while True:
                u1 = random()
                u2 = 1.0 - random()
                z = magic * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log(u2):
                    break
            append(exp(mu + z * sigma))
        buffer[:] = array("d", values)
        return buffer

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence):
        """Pick one element of a non-empty sequence uniformly."""
        return self._random.choice(items)

    def shuffle(self, items: List) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Draw from an exponential distribution with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Draw from a normal distribution."""
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Draw from a log-normal distribution."""
        return self._random.lognormvariate(mu, sigma)

    def geometric(self, success_probability: float) -> int:
        """Number of Bernoulli trials up to and including the first success.

        Returns at least 1.  ``success_probability`` must be in (0, 1].
        """
        if not 0.0 < success_probability <= 1.0:
            raise ValueError(
                f"geometric() needs success probability in (0, 1], got {success_probability}"
            )
        count = 1
        while not self.bernoulli(success_probability):
            count += 1
        return count

    def spawn(self, *path: object) -> "RngStream":
        """Create an independent child stream identified by ``path``."""
        child_seed = derive_seed(self.seed, self.name, *path)
        child_name = "/".join([self.name, *map(str, path)])
        return RngStream(child_seed, child_name)


def spawn_streams(root_seed: int, names: Iterable[str], prefix: Optional[str] = None) -> dict:
    """Spawn one independent stream per name from a root seed."""
    root = RngStream(root_seed, prefix or "root")
    return {name: root.spawn(name) for name in names}
