"""Parameter objects for the closed-form throughput models.

:class:`LinkParams` bundles every quantity the paper's model (Eq. 21)
consumes.  Instances are immutable and validated eagerly, so a bad
experiment configuration fails at construction time.

Symbols follow Table II of the paper:

====================  =======================================================
attribute             paper symbol / meaning
====================  =======================================================
``rtt``               ``RTT`` — average round-trip time (seconds)
``timeout``           ``T`` — base retransmission-timer value (seconds)
``b``                 packets acknowledged per ACK (delayed-ACK factor)
``data_loss``         ``p_d`` — data-packet loss rate over the flow lifetime
``ack_loss``          ``p_a`` — per-ACK loss rate
``recovery_loss``     ``q`` — loss rate of retransmitted packets during the
                      timeout-recovery phase (paper recommends 0.25–0.4)
``wmax``              ``W_m`` — receiver-advertised window limit (packets)
====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.util.errors import ConfigurationError

__all__ = ["LinkParams", "RECOMMENDED_RECOVERY_LOSS_RANGE"]

#: The paper recommends q in [0.25, 0.4] based on the BTR traces.
RECOMMENDED_RECOVERY_LOSS_RANGE = (0.25, 0.40)


@dataclass(frozen=True)
class LinkParams:
    """Inputs of the enhanced throughput model (paper Table II).

    ``recovery_loss`` defaults to the midpoint of the paper's
    recommended range when not supplied.
    """

    rtt: float
    timeout: float
    data_loss: float
    ack_loss: float = 0.0
    b: int = 2
    recovery_loss: Optional[float] = None
    wmax: float = 64.0

    def __post_init__(self) -> None:
        if self.rtt <= 0.0:
            raise ConfigurationError(f"rtt must be positive, got {self.rtt}")
        if self.timeout <= 0.0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if not 0.0 <= self.data_loss < 1.0:
            raise ConfigurationError(
                f"data_loss must be in [0, 1), got {self.data_loss}"
            )
        if not 0.0 <= self.ack_loss < 1.0:
            raise ConfigurationError(f"ack_loss must be in [0, 1), got {self.ack_loss}")
        if self.b < 1 or int(self.b) != self.b:
            raise ConfigurationError(f"b must be a positive integer, got {self.b}")
        if self.recovery_loss is None:
            lo, hi = RECOMMENDED_RECOVERY_LOSS_RANGE
            object.__setattr__(self, "recovery_loss", (lo + hi) / 2.0)
        if not 0.0 <= self.recovery_loss < 1.0:
            raise ConfigurationError(
                f"recovery_loss must be in [0, 1), got {self.recovery_loss}"
            )
        if self.wmax < 1.0:
            raise ConfigurationError(f"wmax must be >= 1 packet, got {self.wmax}")

    def with_(self, **changes) -> "LinkParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def as_stationary(self) -> "LinkParams":
        """Project onto the Padhye assumption set.

        No ACK loss, and retransmissions during timeout recovery see the
        same loss rate as ordinary data packets.  Feeding this to the
        enhanced model yields the paper's Padhye baseline.
        """
        return self.with_(ack_loss=0.0, recovery_loss=self.data_loss)
