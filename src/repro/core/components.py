"""Closed-form building blocks shared by the Padhye and enhanced models.

Each function implements one numbered equation of the paper (or of the
original Padhye et al. ToN 2000 paper, for the baseline) and is unit-
tested against hand-computed values and limiting cases.

Two math conventions coexist in the paper (see DESIGN.md §2): Eq. (3)
implies ``E[W] = (2/b)·E[X] − 2`` while Eqs. (7)/(15) expand with
``E[W] = (b/2)·E[X] − 2``.  They coincide for the paper's evaluation
setting ``b = 2``.  Functions taking ``paper_literal`` implement both.
"""

from __future__ import annotations

import math

from repro.util.errors import ModelDomainError

__all__ = [
    "f_backoff",
    "first_loss_round",
    "expected_ca_rounds",
    "expected_ca_window",
    "ack_burst_loss_probability",
    "solve_ack_burst_fixed_point",
    "timeout_probability_padhye",
    "timeout_probability",
    "consecutive_timeout_probability",
    "expected_timeouts_per_sequence",
    "expected_timeout_packets",
    "expected_timeout_duration",
    "flat_rounds_padhye",
    "expected_flat_rounds",
    "MAX_BACKOFF_DOUBLINGS",
]

#: The retransmission timer doubles until it reaches 64·T (6 doublings),
#: per the paper's Section III-B and classic Reno behaviour.
MAX_BACKOFF_DOUBLINGS = 6


def f_backoff(p: float) -> float:
    """Paper Eq. (14): expected-backoff polynomial ``f(p)``.

    ``f(p) = 1 + p + 2p² + 4p³ + 8p⁴ + 16p⁵ + 32p⁶`` — the expected
    (normalised) duration contribution of an exponential-backoff
    timeout sequence where each retransmission fails with probability
    ``p`` and the timer doubles at most :data:`MAX_BACKOFF_DOUBLINGS`
    times.
    """
    if not 0.0 <= p <= 1.0:
        raise ModelDomainError(f"f_backoff requires p in [0, 1], got {p}")
    return 1.0 + p + 2.0 * p**2 + 4.0 * p**3 + 8.0 * p**4 + 16.0 * p**5 + 32.0 * p**6


def first_loss_round(data_loss: float, b: int) -> float:
    """Paper Eq. (1): ``X_P``, the expected round where data loss first occurs.

    Diverges as ``data_loss → 0``; returns ``math.inf`` for a lossless
    link so callers can take the appropriate limit.
    """
    if not 0.0 <= data_loss < 1.0:
        raise ModelDomainError(f"data_loss must be in [0, 1), got {data_loss}")
    if b < 1:
        raise ModelDomainError(f"b must be >= 1, got {b}")
    if data_loss == 0.0:
        return math.inf
    head = (2.0 + b) / 6.0
    return head + math.sqrt(2.0 * b * (1.0 - data_loss) / (3.0 * data_loss) + head**2)


def _truncated_geometric_mean_rounds(limit: float, p_event: float) -> float:
    """E[X] for the truncated-geometric law of Table III.

    ``X = k`` with probability ``(1−p)^{k−1}·p`` for ``k ≤ limit`` and
    ``X = limit+1`` with the remaining mass ``(1−p)^{limit}``; the
    closed form is ``(1 − (1−p)^{limit+1}) / p`` (paper Eq. 2 shape).
    Handles the ``p → 0`` limit (→ ``limit + 1``) and ``limit = inf``
    (→ ``1/p``).
    """
    if not 0.0 <= p_event <= 1.0:
        raise ModelDomainError(f"probability must be in [0, 1], got {p_event}")
    # Denormal probabilities quantize in the expm1 path (multiples of
    # ~5e-324 round up), breaking the E[X] <= limit+1 bound; treat them
    # as the exact-zero limit they numerically are.
    if p_event < 1e-300:
        p_event = 0.0
    if p_event == 0.0:
        if math.isinf(limit):
            raise ModelDomainError(
                "expected rounds diverge: no data loss and no ACK burst loss"
            )
        return limit + 1.0
    if p_event == 1.0:
        return 1.0
    if math.isinf(limit):
        return 1.0 / p_event
    # -expm1((limit+1)·log1p(-p))/p is the cancellation-free form of
    # (1 - (1-p)^(limit+1))/p; the naive expression collapses to 0/p
    # for p below ~1e-16 and destabilises the P_a fixed point.
    return -math.expm1((limit + 1.0) * math.log1p(-p_event)) / p_event


def expected_ca_rounds(x_p: float, ack_burst_loss: float) -> float:
    """Paper Eq. (2): expected number of rounds in a congestion-avoidance phase.

    ``E[X] = (1 − (1 − P_a)^{X_P + 1}) / P_a`` with the L'Hôpital limit
    ``X_P + 1`` as ``P_a → 0`` (recovering the Padhye model).
    """
    return _truncated_geometric_mean_rounds(x_p, ack_burst_loss)


def expected_ca_window(
    expected_rounds: float, b: int, paper_literal: bool = False
) -> float:
    """Paper Eq. (4): expected window size at the end of a CA phase.

    Consistent form (from Eq. 3): ``E[W] = (2/b)·E[X] − 2``.
    Paper-literal form (Eq. 4 first line): ``E[W] = (b/2)·E[X] − 2``.
    Both results are clamped at ≥ 1 packet — the congestion window of a
    live connection can never fall below one segment.
    """
    if b < 1:
        raise ModelDomainError(f"b must be >= 1, got {b}")
    slope = (b / 2.0) if paper_literal else (2.0 / b)
    return max(1.0, slope * expected_rounds - 2.0)


def ack_burst_loss_probability(
    ack_loss: float, window: float, b: int = 1, per_ack: bool = False
) -> float:
    """``P_a``: probability that *all* ACKs of one round are lost.

    The paper derives ``P_a = p_a^w`` assuming independent ACK losses
    and one ACK per packet.  With delayed ACK only ``w/b`` ACKs are sent
    per round, giving the sharper ``P_a = p_a^{w/b}`` (``per_ack=True``).
    The exponent is floored at 1 — a round always carries at least one
    ACK.
    """
    if not 0.0 <= ack_loss < 1.0:
        raise ModelDomainError(f"ack_loss must be in [0, 1), got {ack_loss}")
    if window < 1.0:
        raise ModelDomainError(f"window must be >= 1, got {window}")
    if ack_loss == 0.0:
        return 0.0
    exponent = max(1.0, window / b if per_ack else window)
    return ack_loss**exponent


def solve_ack_burst_fixed_point(
    ack_loss: float,
    data_loss: float,
    b: int,
    wmax: float,
    per_ack: bool = False,
    paper_literal: bool = False,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
) -> float:
    """Close the loop ``P_a = p_a^{E[W](P_a)}`` by fixed-point iteration.

    ``P_a`` depends on the window size, which (via ``E[X]``) depends on
    ``P_a``.  The map is monotone and bounded, so damped iteration from
    the Padhye window converges rapidly; we stop early once successive
    iterates differ by less than ``tolerance``.
    """
    x_p = first_loss_round(data_loss, b)
    if ack_loss == 0.0:
        return 0.0

    def window_for(pa: float) -> float:
        rounds = expected_ca_rounds(x_p, pa)
        window = expected_ca_window(rounds, b, paper_literal)
        return min(window, wmax)

    # Padhye starting point: no ACK burst loss.
    if math.isinf(x_p):
        window = wmax
    else:
        window = window_for(0.0)
    pa = ack_burst_loss_probability(ack_loss, window, b, per_ack)
    for _ in range(max_iterations):
        window = window_for(pa)
        new_pa = ack_burst_loss_probability(ack_loss, window, b, per_ack)
        # Damping guards against the (rare) oscillatory regime at very
        # high ack_loss where the window reacts strongly to P_a.
        new_pa = 0.5 * (pa + new_pa)
        if abs(new_pa - pa) < tolerance:
            return new_pa
        pa = new_pa
    return pa


def timeout_probability_padhye(expected_window: float) -> float:
    """Paper Eq. (9): ``Q_P = min(1, 3/E[W])`` — P(loss indication is a timeout)."""
    if expected_window <= 0.0:
        raise ModelDomainError(f"expected_window must be positive, got {expected_window}")
    return min(1.0, 3.0 / expected_window)


def timeout_probability(
    q_padhye: float, ack_burst_loss: float, x_p: float
) -> float:
    """Paper Eq. (10): ``Q = 1 − (1 − Q_P)·(1 − P_a)^{X_P}``.

    A CA phase ended by data loss (probability ``(1−P_a)^{X_P}``)
    times out with the Padhye probability; a phase ended by ACK burst
    loss *always* times out.
    """
    if not 0.0 <= q_padhye <= 1.0:
        raise ModelDomainError(f"q_padhye must be in [0, 1], got {q_padhye}")
    if not 0.0 <= ack_burst_loss <= 1.0:
        raise ModelDomainError(
            f"ack_burst_loss must be in [0, 1], got {ack_burst_loss}"
        )
    if ack_burst_loss == 0.0:
        return q_padhye
    if math.isinf(x_p):
        return 1.0
    return 1.0 - (1.0 - q_padhye) * (1.0 - ack_burst_loss) ** x_p


def consecutive_timeout_probability(recovery_loss: float, ack_burst_loss: float) -> float:
    """``p = 1 − (1 − q)(1 − P_a)``: probability the next timeout also fires.

    A retransmission only succeeds if the retransmitted packet survives
    (probability ``1 − q``) *and* its ACK round is not burst-lost
    (probability ``1 − P_a``).
    """
    if not 0.0 <= recovery_loss < 1.0:
        raise ModelDomainError(f"recovery_loss must be in [0, 1), got {recovery_loss}")
    if not 0.0 <= ack_burst_loss < 1.0:
        raise ModelDomainError(
            f"ack_burst_loss must be in [0, 1), got {ack_burst_loss}"
        )
    return 1.0 - (1.0 - recovery_loss) * (1.0 - ack_burst_loss)


def expected_timeouts_per_sequence(p: float) -> float:
    """Paper Eq. (11): ``E[R] = 1/(1 − p)`` — geometric mean length of a timeout sequence."""
    if not 0.0 <= p < 1.0:
        raise ModelDomainError(f"p must be in [0, 1), got {p}")
    return 1.0 / (1.0 - p)


def expected_timeout_packets(
    recovery_loss: float, expected_timeouts: float, paper_form: bool = True
) -> float:
    """Paper Eq. (12): ``E[Y^TO] = (1 − q)^{E[R]}``.

    The paper's form is dimensionally a probability rather than a
    count; ``paper_form=False`` provides the natural alternative
    ``(1 − q)·E[R]`` (expected deliveries across the sequence) used
    only in the ablation benchmark.  Numerically both are ≤ a few
    packets, so the throughput impact is negligible.
    """
    if not 0.0 <= recovery_loss < 1.0:
        raise ModelDomainError(f"recovery_loss must be in [0, 1), got {recovery_loss}")
    if expected_timeouts < 1.0:
        raise ModelDomainError(
            f"expected_timeouts must be >= 1, got {expected_timeouts}"
        )
    if paper_form:
        return (1.0 - recovery_loss) ** expected_timeouts
    return (1.0 - recovery_loss) * expected_timeouts


def expected_timeout_duration(timeout: float, p: float) -> float:
    """Paper Eq. (13): ``E[A^TO] = T · f(p) / (1 − p)``."""
    if timeout <= 0.0:
        raise ModelDomainError(f"timeout must be positive, got {timeout}")
    if not 0.0 <= p < 1.0:
        raise ModelDomainError(f"p must be in [0, 1), got {p}")
    return timeout * f_backoff(p) / (1.0 - p)


def flat_rounds_padhye(data_loss: float, wmax: float, b: int) -> float:
    """Paper Eq. (17): ``V_P`` — rounds spent pinned at ``W_m`` (Padhye).

    Can be computed negative for small ``W_m``/large ``p_d`` parameter
    combinations outside the window-limited regime; clamped at ≥ 1
    round, matching common Padhye implementations.  A lossless link
    (``data_loss = 0``) pins the window at ``W_m`` forever; returns
    ``math.inf`` so callers can take the limit.
    """
    if not 0.0 <= data_loss < 1.0:
        raise ModelDomainError(f"data_loss must be in [0, 1), got {data_loss}")
    if wmax < 1.0:
        raise ModelDomainError(f"wmax must be >= 1, got {wmax}")
    if data_loss == 0.0:
        return math.inf
    v_p = (1.0 - data_loss) / (data_loss * wmax) + 1.0 - 3.0 * b * wmax / 8.0
    return max(1.0, v_p)


def expected_flat_rounds(v_p: float, ack_burst_loss: float) -> float:
    """Paper Eq. (18): ``E[V] = (1 − (1 − P_a)^{V_P}) / P_a``.

    Limit ``V_P`` as ``P_a → 0``.  (Paper Eq. 18 truncates at ``V_P``
    rather than ``V_P + 1``; we follow the paper.)
    """
    if not 0.0 <= ack_burst_loss <= 1.0:
        raise ModelDomainError(
            f"ack_burst_loss must be in [0, 1], got {ack_burst_loss}"
        )
    if ack_burst_loss < 1e-300:  # denormals quantize in the expm1 path
        return v_p
    if ack_burst_loss == 1.0:
        return 1.0
    if math.isinf(v_p):
        return 1.0 / ack_burst_loss
    # Cancellation-free form of (1 - (1-P_a)^V_P)/P_a; see
    # _truncated_geometric_mean_rounds.
    return -math.expm1(v_p * math.log1p(-ack_burst_loss)) / ack_burst_loss
