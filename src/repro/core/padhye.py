"""The classic Padhye et al. TCP Reno throughput model (ToN 2000).

Implemented as the independent baseline: the *full* model with timeout
and receiver-window terms, and the widely-quoted *approximate*
square-root formula.  The paper under reproduction compares its
enhanced model against Padhye (its Fig. 10); it evaluates Padhye in the
same algebraic framework as the enhanced model
(:func:`repro.core.enhanced.padhye_paper_form`), while this module
provides the original closed forms for cross-validation — the two
agree asymptotically, which the test suite checks.
"""

from __future__ import annotations

import math

from repro.core.components import f_backoff
from repro.core.params import LinkParams
from repro.util.errors import ModelDomainError

__all__ = [
    "padhye_full_throughput",
    "padhye_approx_throughput",
    "padhye_expected_window",
    "padhye_timeout_probability",
]


def padhye_expected_window(data_loss: float, b: int) -> float:
    """Unconstrained equilibrium window W(p) of the full Padhye model.

    ``W(p) = (2+b)/(3b) + sqrt(8(1−p)/(3bp) + ((2+b)/(3b))²)``
    """
    if not 0.0 < data_loss < 1.0:
        raise ModelDomainError(f"data_loss must be in (0, 1), got {data_loss}")
    head = (2.0 + b) / (3.0 * b)
    return head + math.sqrt(8.0 * (1.0 - data_loss) / (3.0 * b * data_loss) + head**2)


def padhye_timeout_probability(data_loss: float, window: float) -> float:
    """Full-model ``Q̂(p, w)``: probability a loss indication is a timeout.

    ``Q̂ = min(1, (1 + (1−p)³(1 − (1−p)^{w−3})) / ((1 − (1−p)^w)/(1 − (1−p)³)))``

    Falls back to ``min(1, 3/w)`` — the simplification used by the HSR
    paper's Eq. (9) — when the full expression is numerically unstable
    (very small ``p``), to which it converges in that limit anyway.
    """
    if not 0.0 < data_loss < 1.0:
        raise ModelDomainError(f"data_loss must be in (0, 1), got {data_loss}")
    if window < 1.0:
        raise ModelDomainError(f"window must be >= 1, got {window}")
    if window <= 3.0:
        return 1.0
    p = data_loss
    survive = 1.0 - p
    denominator = 1.0 - survive**window
    if denominator < 1e-12:
        return min(1.0, 3.0 / window)
    numerator = (1.0 - survive**3) * (1.0 + survive**3 * (1.0 - survive ** (window - 3.0)))
    return min(1.0, numerator / denominator)


def padhye_full_throughput(params: LinkParams) -> float:
    """Full Padhye model (their Eq. 30/31), packets per second.

    Uses ``data_loss`` only — the Padhye world has no ACK loss and no
    distinguished recovery-phase loss rate.
    """
    p = params.data_loss
    if p <= 0.0:
        return params.wmax / params.rtt
    b, rtt, t0, wm = params.b, params.rtt, params.timeout, params.wmax
    w_u = padhye_expected_window(p, b)
    if w_u < wm:
        q_hat = padhye_timeout_probability(p, w_u)
        numerator = (1.0 - p) / p + w_u / 2.0 + q_hat
        denominator = rtt * (b / 2.0 * w_u + 1.0) + q_hat * t0 * f_backoff(p) / (
            1.0 - p
        )
    else:
        q_hat = padhye_timeout_probability(p, wm)
        numerator = (1.0 - p) / p + wm / 2.0 + q_hat
        denominator = rtt * (b / 8.0 * wm + (1.0 - p) / (p * wm) + 2.0) + q_hat * t0 * f_backoff(p) / (1.0 - p)
    return numerator / denominator


def padhye_approx_throughput(params: LinkParams) -> float:
    """The famous approximate formula (Padhye Eq. 32), packets per second.

    ``B ≈ min(W_m/RTT, 1/(RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1+32p²)))``
    """
    p = params.data_loss
    if p <= 0.0:
        return params.wmax / params.rtt
    b, rtt, t0, wm = params.b, params.rtt, params.timeout, params.wmax
    denominator = rtt * math.sqrt(2.0 * b * p / 3.0) + t0 * min(
        1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)
    ) * p * (1.0 + 32.0 * p**2)
    return min(wm / rtt, 1.0 / denominator)
