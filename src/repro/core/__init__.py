"""The paper's primary contribution: closed-form TCP throughput models.

Public API:

* :class:`LinkParams` — model inputs (paper Table II).
* :func:`enhanced_throughput` — the enhanced model, paper Eq. (21).
* :func:`padhye_paper_form` — the Padhye baseline in the paper's framework.
* :func:`padhye_full_throughput` / :func:`padhye_approx_throughput` —
  the original Padhye et al. closed forms.
* :func:`compare_models`, :func:`deviation_rate` — Fig. 10 accuracy metric.
* :mod:`repro.core.delayed_ack`, :mod:`repro.core.mptcp_model` —
  Section V analyses.
"""

from repro.core.accuracy import (
    FlowObservation,
    ModelComparison,
    compare_models,
    deviation_rate,
)
from repro.core.components import (
    ack_burst_loss_probability,
    consecutive_timeout_probability,
    expected_ca_rounds,
    expected_ca_window,
    expected_timeout_duration,
    expected_timeouts_per_sequence,
    f_backoff,
    first_loss_round,
    solve_ack_burst_fixed_point,
    timeout_probability,
    timeout_probability_padhye,
)
from repro.core.delayed_ack import (
    DelackPoint,
    adaptive_delayed_window,
    delayed_ack_tradeoff,
    optimal_delayed_window,
)
from repro.core.enhanced import (
    ModelOptions,
    ThroughputPrediction,
    enhanced_throughput,
    padhye_paper_form,
)
from repro.core.fitting import (
    FittedParameters,
    fit_ack_burst,
    fit_latent_parameters,
    fit_population_recovery_loss,
    fit_recovery_loss,
)
from repro.core.mptcp_model import (
    MptcpPrediction,
    backup_mode_throughput,
    duplex_mode_throughput,
    effective_recovery_loss,
    mptcp_gain,
)
from repro.core.padhye import (
    padhye_approx_throughput,
    padhye_expected_window,
    padhye_full_throughput,
    padhye_timeout_probability,
)
from repro.core.params import RECOMMENDED_RECOVERY_LOSS_RANGE, LinkParams
from repro.core.sensitivity import SweepPoint, dominant_parameter, elasticity, sweep
from repro.core.variants import (
    VENO_RANDOM_LOSS_BACKOFF,
    newreno_throughput,
    variant_throughput,
    veno_throughput,
)

__all__ = [
    "DelackPoint",
    "FittedParameters",
    "FlowObservation",
    "LinkParams",
    "ModelComparison",
    "ModelOptions",
    "MptcpPrediction",
    "RECOMMENDED_RECOVERY_LOSS_RANGE",
    "SweepPoint",
    "ThroughputPrediction",
    "VENO_RANDOM_LOSS_BACKOFF",
    "ack_burst_loss_probability",
    "adaptive_delayed_window",
    "backup_mode_throughput",
    "compare_models",
    "consecutive_timeout_probability",
    "delayed_ack_tradeoff",
    "deviation_rate",
    "dominant_parameter",
    "duplex_mode_throughput",
    "effective_recovery_loss",
    "elasticity",
    "enhanced_throughput",
    "expected_ca_rounds",
    "expected_ca_window",
    "expected_timeout_duration",
    "expected_timeouts_per_sequence",
    "f_backoff",
    "first_loss_round",
    "fit_ack_burst",
    "fit_latent_parameters",
    "fit_population_recovery_loss",
    "fit_recovery_loss",
    "mptcp_gain",
    "newreno_throughput",
    "optimal_delayed_window",
    "padhye_approx_throughput",
    "padhye_expected_window",
    "padhye_full_throughput",
    "padhye_paper_form",
    "padhye_timeout_probability",
    "solve_ack_burst_fixed_point",
    "sweep",
    "timeout_probability",
    "timeout_probability_padhye",
    "variant_throughput",
    "veno_throughput",
]
