"""Parameter sweeps and sensitivity analysis over the enhanced model.

The paper's Section V argues from the model's structure: throughput is
most sensitive to the ACK-related term ``P_a`` and to the recovery
loss ``q``.  These helpers make that argument quantitative — sweep any
:class:`~repro.core.params.LinkParams` field and compute log-log
elasticities — and back the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.enhanced import ModelOptions, ThroughputPrediction, enhanced_throughput
from repro.core.params import LinkParams

__all__ = ["SweepPoint", "sweep", "elasticity", "dominant_parameter"]

#: Fields of LinkParams that can be swept.
SWEEPABLE_FIELDS = ("rtt", "timeout", "data_loss", "ack_loss", "recovery_loss", "wmax", "b")


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, model prediction) pair of a sweep."""

    field: str
    value: float
    prediction: ThroughputPrediction

    @property
    def throughput(self) -> float:
        return self.prediction.throughput


def sweep(
    params: LinkParams,
    field: str,
    values: Sequence[float],
    options: ModelOptions = ModelOptions(),
    model: Optional[Callable[[LinkParams, ModelOptions], ThroughputPrediction]] = None,
) -> List[SweepPoint]:
    """Evaluate the model along one parameter axis."""
    if field not in SWEEPABLE_FIELDS:
        raise ValueError(f"unknown sweep field {field!r}; choose from {SWEEPABLE_FIELDS}")
    evaluate = model or enhanced_throughput
    points: List[SweepPoint] = []
    for value in values:
        cast = int(value) if field == "b" else float(value)
        prediction = evaluate(params.with_(**{field: cast}), options)
        points.append(SweepPoint(field=field, value=float(value), prediction=prediction))
    return points


def elasticity(
    params: LinkParams,
    field: str,
    options: ModelOptions = ModelOptions(),
    relative_step: float = 0.01,
) -> float:
    """Log-log sensitivity ``d ln(TP) / d ln(field)`` by central difference.

    Negative values mean throughput falls as the parameter grows; the
    magnitude ranks which knob matters most at this operating point.
    """
    base_value = float(getattr(params, field))
    if base_value == 0.0:
        raise ValueError(f"elasticity undefined at {field} == 0; sweep instead")
    lo = params.with_(**{field: base_value * (1.0 - relative_step)})
    hi = params.with_(**{field: base_value * (1.0 + relative_step)})
    tp_lo = enhanced_throughput(lo, options).throughput
    tp_hi = enhanced_throughput(hi, options).throughput
    if tp_lo <= 0.0 or tp_hi <= 0.0:
        raise ValueError("throughput non-positive during elasticity probe")
    import math

    return (math.log(tp_hi) - math.log(tp_lo)) / (
        math.log(1.0 + relative_step) - math.log(1.0 - relative_step)
    )


def dominant_parameter(
    params: LinkParams,
    fields: Sequence[str] = ("rtt", "data_loss", "ack_loss", "recovery_loss"),
    options: ModelOptions = ModelOptions(),
) -> str:
    """The parameter with the largest |elasticity| at this operating point.

    Skips fields whose current value is zero (elasticity undefined).
    """
    best_field = ""
    best_magnitude = -1.0
    for field in fields:
        if float(getattr(params, field)) == 0.0:
            continue
        magnitude = abs(elasticity(params, field, options))
        if magnitude > best_magnitude:
            best_field, best_magnitude = field, magnitude
    if not best_field:
        raise ValueError("no sweepable field with a nonzero value")
    return best_field
