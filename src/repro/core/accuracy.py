"""Model-accuracy evaluation: the deviation metric D and comparisons.

Paper Eq. (22): ``D = |TP_model − TP_trace| / TP_trace × 100%``.
:func:`compare_models` evaluates a set of models against a collection
of per-flow observations and produces the Fig.-10-style summary
(per-flow deviations, per-provider means, overall means, and the
headline improvement of one model over another).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.core.params import LinkParams
from repro.util.stats import mean

__all__ = [
    "deviation_rate",
    "FlowObservation",
    "ModelComparison",
    "compare_models",
]

#: A model under evaluation: LinkParams -> throughput in packets/second.
ThroughputModel = Callable[[LinkParams], float]


def deviation_rate(model_throughput: float, trace_throughput: float) -> float:
    """Paper Eq. (22): absolute deviation rate, as a fraction (not %)."""
    if trace_throughput <= 0.0:
        raise ValueError(f"trace throughput must be positive, got {trace_throughput}")
    return abs(model_throughput - trace_throughput) / trace_throughput


@dataclass(frozen=True)
class FlowObservation:
    """One measured flow: its link parameters and its observed throughput.

    ``group`` carries the provider label ("China Mobile", …) used to
    bucket Fig. 10's x-axis.
    """

    params: LinkParams
    throughput: float
    group: str = ""
    flow_id: str = ""

    def __post_init__(self) -> None:
        if self.throughput <= 0.0:
            raise ValueError(f"observed throughput must be positive, got {self.throughput}")


@dataclass
class ModelComparison:
    """Result of evaluating several models over a flow population."""

    model_names: List[str]
    #: per model: list of deviations (fractions), one per flow, in input order
    deviations: Dict[str, List[float]] = field(default_factory=dict)
    #: per model: group label -> mean deviation
    group_means: Dict[str, Dict[str, float]] = field(default_factory=dict)
    groups: List[str] = field(default_factory=list)

    def mean_deviation(self, model: str) -> float:
        """Mean deviation of one model over all flows (fraction)."""
        return mean(self.deviations[model])

    def improvement(self, model: str, baseline: str) -> float:
        """Accuracy improvement of ``model`` over ``baseline``.

        The paper reports the *difference of mean deviation rates* in
        percentage points (21.96% − 5.66% ≈ 16.3%); returned here as a
        fraction (0.163).
        """
        return self.mean_deviation(baseline) - self.mean_deviation(model)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per (group, model) with the mean deviation in percent."""
        rows: List[Dict[str, object]] = []
        for group in self.groups:
            for name in self.model_names:
                rows.append(
                    {
                        "group": group,
                        "model": name,
                        "mean_deviation_pct": 100.0 * self.group_means[name][group],
                    }
                )
        for name in self.model_names:
            rows.append(
                {
                    "group": "ALL",
                    "model": name,
                    "mean_deviation_pct": 100.0 * self.mean_deviation(name),
                }
            )
        return rows


def compare_models(
    observations: Sequence[FlowObservation],
    models: Mapping[str, ThroughputModel],
) -> ModelComparison:
    """Evaluate each model against each observed flow.

    Models receive the flow's *measured* link parameters — exactly the
    paper's methodology: feed measured ``RTT, T, p_d, p_a, q, W_m``
    into the closed form and compare the prediction with the measured
    throughput.
    """
    if not observations:
        raise ValueError("compare_models() needs at least one observation")
    comparison = ModelComparison(model_names=list(models))
    seen_groups: List[str] = []
    per_group: Dict[str, Dict[str, List[float]]] = {name: {} for name in models}
    for name, model in models.items():
        devs: List[float] = []
        for obs in observations:
            dev = deviation_rate(model(obs.params), obs.throughput)
            devs.append(dev)
            per_group[name].setdefault(obs.group, []).append(dev)
            if obs.group not in seen_groups:
                seen_groups.append(obs.group)
        comparison.deviations[name] = devs
    comparison.groups = seen_groups
    comparison.group_means = {
        name: {group: mean(values) for group, values in groups.items()}
        for name, groups in per_group.items()
    }
    return comparison
