"""Section V-A analysis: the delayed-ACK window in high-speed mobility.

With delayed acknowledgements, one ACK covers ``b`` data packets, so a
round of window ``w`` carries only ``w/b`` ACKs.  Fewer ACKs per round
make *ACK burst loss* (every ACK of the round lost → spurious timeout)
exponentially more likely: ``P_a = p_a^{w/b}`` grows with ``b``.  At
the same time a larger ``b`` slows window growth (one increment per
``b`` rounds).  The paper argues ACKs are therefore "precious" in
high-speed mobility and flags tuning of the delayed window as future
work; this module quantifies the trade-off with the enhanced model and
provides a TCP-DCA-style adaptive policy as the extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.enhanced import ModelOptions, ThroughputPrediction, enhanced_throughput
from repro.core.params import LinkParams

__all__ = [
    "DelackPoint",
    "delayed_ack_tradeoff",
    "optimal_delayed_window",
    "adaptive_delayed_window",
]


@dataclass(frozen=True)
class DelackPoint:
    """One point of the delayed-ACK sweep."""

    b: int
    throughput: float
    ack_burst_loss: float
    spurious_timeout_fraction: float
    prediction: ThroughputPrediction


def delayed_ack_tradeoff(
    params: LinkParams,
    b_values: Sequence[int] = (1, 2, 3, 4, 6, 8),
    options: ModelOptions = ModelOptions(per_ack_burst=True),
) -> List[DelackPoint]:
    """Evaluate the enhanced model across delayed-ACK windows.

    ``per_ack_burst=True`` is essential here: the paper's plain
    ``P_a = p_a^w`` is insensitive to ``b``, which is precisely the
    blind spot Section V-A points out.
    """
    points: List[DelackPoint] = []
    for b in b_values:
        prediction = enhanced_throughput(params.with_(b=b), options)
        points.append(
            DelackPoint(
                b=b,
                throughput=prediction.throughput,
                ack_burst_loss=prediction.ack_burst_loss,
                spurious_timeout_fraction=prediction.spurious_timeout_fraction,
                prediction=prediction,
            )
        )
    return points


def optimal_delayed_window(
    params: LinkParams,
    b_values: Sequence[int] = (1, 2, 3, 4, 6, 8),
    options: ModelOptions = ModelOptions(per_ack_burst=True),
) -> DelackPoint:
    """The sweep point with the highest predicted throughput."""
    points = delayed_ack_tradeoff(params, b_values, options)
    return max(points, key=lambda point: point.throughput)


def adaptive_delayed_window(
    params: LinkParams,
    max_b: int = 8,
    spurious_budget: float = 0.25,
    options: ModelOptions = ModelOptions(per_ack_burst=True),
) -> int:
    """TCP-DCA-style policy: the largest delayed window whose predicted
    spurious-timeout share stays within ``spurious_budget``.

    Large ``b`` maximises host efficiency (the original goal of delayed
    ACKs); the budget caps the mobility-induced spurious-timeout risk.
    Falls back to ``b = 1`` when even that exceeds the budget — in a
    hostile channel every ACK matters.
    """
    if max_b < 1:
        raise ValueError(f"max_b must be >= 1, got {max_b}")
    if not 0.0 <= spurious_budget <= 1.0:
        raise ValueError(f"spurious_budget must be in [0, 1], got {spurious_budget}")
    best = 1
    for b in range(1, max_b + 1):
        prediction = enhanced_throughput(params.with_(b=b), options)
        if prediction.spurious_timeout_fraction <= spurious_budget:
            best = b
    return best
