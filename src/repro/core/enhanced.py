"""The paper's enhanced TCP throughput model for high-speed mobility.

Implements Eq. (21) — the complete model — together with all
intermediate quantities (Eqs. 1–20), exposed on the returned
:class:`ThroughputPrediction` so experiments and tests can inspect the
model's internals, not just its headline number.

The model extends Padhye et al. with two high-speed-rail phenomena:

* **ACK burst loss** ``P_a``: the probability that every ACK of a
  transmission round is lost, ending the congestion-avoidance phase
  with a *spurious* retransmission timeout even though no data was
  lost.
* **Lossy recovery** ``q``: retransmitted packets during the
  timeout-recovery phase are lost far more often (≈ 27% in the BTR
  traces) than ordinary packets (≈ 0.75%), stretching timeout
  sequences via exponential backoff.

Setting ``ack_loss = 0`` and ``recovery_loss = data_loss``
(:meth:`repro.core.params.LinkParams.as_stationary`) collapses the
model to the paper's Padhye baseline — a property the test suite
verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core import components as cf
from repro.core.params import LinkParams
from repro.util.errors import ModelDomainError
from repro.util.units import pps_to_mbps

__all__ = [
    "ModelOptions",
    "ThroughputPrediction",
    "enhanced_throughput",
    "padhye_paper_form",
]


@dataclass(frozen=True)
class ModelOptions:
    """Switches between the model variants discussed in DESIGN.md §2.

    ``paper_literal``
        Use the exact printed Eq. (15)/(21) forms, including the
        ``E[W] = (b/2)E[X] − 2`` expansion and the ``−1`` constant.
        The default uses the internally-consistent derivation from
        Eq. (3); the two coincide for ``b = 2`` up to the constant.
    ``timeout_yield_paper_form``
        Keep Eq. (12) verbatim (``E[Y^TO] = (1−q)^{E[R]}``); when
        False use the natural count ``(1−q)·E[R]``.
    ``per_ack_burst``
        Compute ``P_a = p_a^{w/b}`` (one ACK per ``b`` packets, per the
        delayed-ACK discussion of Section V-A) instead of the paper's
        ``P_a = p_a^{w}``.
    ``fixed_point``
        Solve the ``P_a ↔ E[W]`` fixed point; when False, ``P_a`` is
        evaluated once at the Padhye (no-ACK-loss) window.
    ``ack_burst_override``
        Bypass the ``p_a → P_a`` derivation entirely and use a measured
        ``P_a`` (useful when traces expose burst loss directly).
    """

    paper_literal: bool = False
    timeout_yield_paper_form: bool = True
    per_ack_burst: bool = False
    fixed_point: bool = True
    ack_burst_override: Optional[float] = None


@dataclass(frozen=True)
class ThroughputPrediction:
    """A model evaluation: the throughput plus every internal quantity.

    Throughput is in packets (MSS) per second; use
    :attr:`throughput_mbps` for the unit the paper plots.
    """

    throughput: float
    window_limited: bool
    ack_burst_loss: float
    x_p: float
    expected_rounds: float
    expected_window: float
    timeout_probability: float
    consecutive_timeout_probability: float
    expected_timeouts: float
    timeout_duration: float
    timeout_packets: float
    ca_packets: float
    params: LinkParams

    @property
    def throughput_mbps(self) -> float:
        """Throughput in megabits per second (MSS-sized packets)."""
        return pps_to_mbps(self.throughput)

    @property
    def spurious_timeout_fraction(self) -> float:
        """Model-implied share of timeouts that are spurious.

        A CA phase ends by ACK burst loss (always a timeout, always
        spurious) with probability ``1 − (1−P_a)^{X_P}``, or by data
        loss followed by a genuine timeout with probability
        ``(1−P_a)^{X_P}·Q_P``; the spurious share is the ratio.
        """
        if self.timeout_probability == 0.0:
            return 0.0
        if math.isinf(self.x_p):
            return 1.0
        survive = (1.0 - self.ack_burst_loss) ** self.x_p
        spurious = 1.0 - survive
        return spurious / self.timeout_probability


def _resolve_ack_burst(params: LinkParams, options: ModelOptions) -> float:
    """Derive ``P_a`` from the configured options."""
    if options.ack_burst_override is not None:
        pa = options.ack_burst_override
        if not 0.0 <= pa < 1.0:
            raise ModelDomainError(f"ack_burst_override must be in [0, 1), got {pa}")
        return pa
    if params.ack_loss == 0.0:
        return 0.0
    if options.fixed_point:
        return cf.solve_ack_burst_fixed_point(
            params.ack_loss,
            params.data_loss,
            params.b,
            params.wmax,
            per_ack=options.per_ack_burst,
            paper_literal=options.paper_literal,
        )
    x_p = cf.first_loss_round(params.data_loss, params.b)
    if math.isinf(x_p):
        window = params.wmax
    else:
        rounds = cf.expected_ca_rounds(x_p, 0.0)
        window = min(
            cf.expected_ca_window(rounds, params.b, options.paper_literal),
            params.wmax,
        )
    return cf.ack_burst_loss_probability(
        params.ack_loss, window, params.b, options.per_ack_burst
    )


def enhanced_throughput(
    params: LinkParams, options: ModelOptions = ModelOptions()
) -> ThroughputPrediction:
    """Evaluate the complete enhanced model (paper Eq. 21).

    Selects the unconstrained branch when the equilibrium CA window
    stays below the advertised limit ``W_m`` and the window-limited
    branch otherwise, exactly as Eq. (21) prescribes.
    """
    pa = _resolve_ack_burst(params, options)
    x_p = cf.first_loss_round(params.data_loss, params.b)

    # Fully lossless link: the window sits at W_m forever and every
    # round delivers W_m packets.
    if math.isinf(x_p) and pa == 0.0:
        return ThroughputPrediction(
            throughput=params.wmax / params.rtt,
            window_limited=True,
            ack_burst_loss=0.0,
            x_p=x_p,
            expected_rounds=math.inf,
            expected_window=params.wmax,
            timeout_probability=0.0,
            consecutive_timeout_probability=0.0,
            expected_timeouts=1.0,
            timeout_duration=0.0,
            timeout_packets=0.0,
            ca_packets=math.inf,
            params=params,
        )

    expected_rounds = cf.expected_ca_rounds(x_p, pa)
    expected_window = cf.expected_ca_window(
        expected_rounds, params.b, options.paper_literal
    )
    window_limited = expected_window >= params.wmax
    effective_window = min(expected_window, params.wmax)

    q_padhye = cf.timeout_probability_padhye(effective_window)
    big_q = cf.timeout_probability(q_padhye, pa, x_p)
    p = cf.consecutive_timeout_probability(params.recovery_loss, pa)
    expected_timeouts = cf.expected_timeouts_per_sequence(p)
    timeout_packets = cf.expected_timeout_packets(
        params.recovery_loss, expected_timeouts, options.timeout_yield_paper_form
    )
    timeout_duration = cf.expected_timeout_duration(params.timeout, p)

    if window_limited:
        ca_packets, ca_rounds = _window_limited_phase(params, pa, options)
        expected_rounds = ca_rounds
    else:
        ca_packets = _unconstrained_ca_packets(expected_rounds, params.b, options)

    numerator = ca_packets + big_q * timeout_packets
    denominator = params.rtt * expected_rounds + big_q * timeout_duration
    throughput = numerator / denominator

    return ThroughputPrediction(
        throughput=throughput,
        window_limited=window_limited,
        ack_burst_loss=pa,
        x_p=x_p,
        expected_rounds=expected_rounds,
        expected_window=effective_window,
        timeout_probability=big_q,
        consecutive_timeout_probability=p,
        expected_timeouts=expected_timeouts,
        timeout_duration=timeout_duration,
        timeout_packets=timeout_packets,
        ca_packets=ca_packets,
        params=params,
    )


def _unconstrained_ca_packets(
    expected_rounds: float, b: int, options: ModelOptions
) -> float:
    """E[Y] for the unconstrained branch (numerator of Eq. 15).

    Paper-literal: ``(3b/8)E²[X] − ((6+b)/4)E[X] − 1``.
    Consistent (from ``E[Y] = E[W]/2·(3E[X]/2 − 1)`` with
    ``E[W] = (2/b)E[X] − 2``): ``(3/(2b))E²[X] − ((2+3b)/(2b))E[X] + 1``.
    Clamped at ≥ 1 packet: a CA phase delivers at least the packet
    whose loss (or whose ACK-burst loss) terminates it was preceded by.
    """
    x = expected_rounds
    if options.paper_literal:
        packets = (3.0 * b / 8.0) * x**2 - ((6.0 + b) / 4.0) * x - 1.0
    else:
        packets = (3.0 / (2.0 * b)) * x**2 - ((2.0 + 3.0 * b) / (2.0 * b)) * x + 1.0
    return max(1.0, packets)


def _window_limited_phase(
    params: LinkParams, pa: float, options: ModelOptions
) -> tuple:
    """E[Y] and E[X] for the window-limited branch (Eqs. 16–20)."""
    v_p = cf.flat_rounds_padhye(params.data_loss, params.wmax, params.b)
    flat_rounds = cf.expected_flat_rounds(v_p, pa)
    if math.isinf(flat_rounds):
        # data_loss == 0 and pa == 0 is handled by the caller; here the
        # flat phase is unbounded only in the exact Padhye limit, which
        # cannot be reached with pa > 0.
        raise ModelDomainError("window-limited phase diverged; check parameters")
    ramp_rounds = params.b * params.wmax / 2.0  # Eq. (16)
    packets = (
        3.0 * params.b * params.wmax**2 / 8.0
        + params.wmax * (flat_rounds - 0.5)
    )  # Eq. (19)
    rounds = ramp_rounds + flat_rounds  # Eq. (20)
    return max(1.0, packets), rounds


def padhye_paper_form(
    params: LinkParams, options: ModelOptions = ModelOptions()
) -> ThroughputPrediction:
    """The paper's Padhye baseline: the same equations with the
    stationary assumption set (no ACK loss; recovery retransmissions
    see the ordinary data-loss rate).

    This is the baseline against which Fig. 10 measures the enhanced
    model; see :mod:`repro.core.padhye` for the original Padhye et al.
    closed forms.
    """
    return enhanced_throughput(params.as_stationary(), options)
