"""Section V-B analysis: multi-path TCP in high-speed mobility.

The paper's key observation: MPTCP's double-retransmission of a
timed-out packet (retransmit on the original subflow *and* one more)
attacks exactly the parameter the enhanced model shows to dominate —
the recovery-phase loss rate ``q``.  With two independent copies, the
retransmission round fails only if *both* copies fail, so

    ``q_mptcp = q_original · q_alternate``

(and similarly the ACK-burst term: the timeout repeats only if both
paths fail to deliver an acknowledged copy).  This module provides:

* :func:`backup_mode_throughput` — one active subflow; the second is
  used only to double retransmissions, shrinking ``q``.
* :func:`duplex_mode_throughput` — both subflows carry data; following
  the paper's own estimator, the aggregate is the sum of the two
  single-path throughputs (no shared bottleneck).
* :func:`mptcp_gain` — the Fig.-12-style relative improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.enhanced import ModelOptions, ThroughputPrediction, enhanced_throughput
from repro.core.params import LinkParams

__all__ = [
    "MptcpPrediction",
    "effective_recovery_loss",
    "backup_mode_throughput",
    "duplex_mode_throughput",
    "mptcp_gain",
]


@dataclass(frozen=True)
class MptcpPrediction:
    """Aggregate MPTCP prediction and its per-subflow components."""

    throughput: float
    mode: str
    primary: ThroughputPrediction
    secondary: Optional[ThroughputPrediction] = None

    @property
    def subflow_throughputs(self) -> tuple:
        if self.secondary is None:
            return (self.primary.throughput,)
        return (self.primary.throughput, self.secondary.throughput)


def effective_recovery_loss(primary_q: float, alternate_q: float) -> float:
    """Recovery-phase loss seen by MPTCP's double retransmission.

    Both copies must be lost for the timeout to repeat; with
    independent paths the probabilities multiply.
    """
    if not 0.0 <= primary_q < 1.0:
        raise ValueError(f"primary_q must be in [0, 1), got {primary_q}")
    if not 0.0 <= alternate_q < 1.0:
        raise ValueError(f"alternate_q must be in [0, 1), got {alternate_q}")
    return primary_q * alternate_q


def backup_mode_throughput(
    primary: LinkParams,
    backup: LinkParams,
    options: ModelOptions = ModelOptions(),
) -> MptcpPrediction:
    """Backup mode: data flows on ``primary``; ``backup`` only doubles
    retransmissions during timeout recovery.

    Modelled as the primary path with ``q`` replaced by
    ``q_primary · q_backup`` (and the ACK-burst contribution to
    consecutive timeouts damped the same way, approximated here by the
    dominant ``q`` reduction, which the simulator cross-validates).
    """
    reduced_q = effective_recovery_loss(primary.recovery_loss, backup.recovery_loss)
    prediction = enhanced_throughput(primary.with_(recovery_loss=reduced_q), options)
    return MptcpPrediction(
        throughput=prediction.throughput, mode="backup", primary=prediction
    )


def duplex_mode_throughput(
    primary: LinkParams,
    secondary: LinkParams,
    options: ModelOptions = ModelOptions(),
) -> MptcpPrediction:
    """Duplex mode: both subflows carry data simultaneously.

    Follows the paper's Fig.-12 estimator — two flows with no shared
    bottleneck, aggregate = sum of throughputs — with each subflow
    additionally enjoying the double-retransmission ``q`` reduction.
    """
    reduced_primary_q = effective_recovery_loss(
        primary.recovery_loss, secondary.recovery_loss
    )
    reduced_secondary_q = reduced_primary_q
    first = enhanced_throughput(primary.with_(recovery_loss=reduced_primary_q), options)
    second = enhanced_throughput(
        secondary.with_(recovery_loss=reduced_secondary_q), options
    )
    return MptcpPrediction(
        throughput=first.throughput + second.throughput,
        mode="duplex",
        primary=first,
        secondary=second,
    )


def mptcp_gain(
    single_path: LinkParams,
    alternate_path: Optional[LinkParams] = None,
    mode: str = "duplex",
    options: ModelOptions = ModelOptions(),
) -> float:
    """Relative throughput improvement of MPTCP over plain TCP.

    Returns e.g. ``0.42`` for a 42% gain (the paper reports +42.15%
    for China Mobile, +95.64% for Unicom, +283.33% for Telecom in
    duplex mode).  ``alternate_path`` defaults to a clone of the
    single path.
    """
    alternate = alternate_path if alternate_path is not None else single_path
    baseline = enhanced_throughput(single_path, options).throughput
    if mode == "duplex":
        multi = duplex_mode_throughput(single_path, alternate, options).throughput
    elif mode == "backup":
        multi = backup_mode_throughput(single_path, alternate, options).throughput
    else:
        raise ValueError(f"mode must be 'duplex' or 'backup', got {mode!r}")
    return multi / baseline - 1.0
