"""Analytic throughput models for TCP variants beyond Reno (extension).

The paper grounds itself on Reno ("the basis of the other TCP
versions") and cites the NewReno model of Parvez et al. [23] and the
Veno model of Fu et al. [22] as related work.  This module provides
lightweight variant models *in the paper's own framework*: each variant
is expressed as a transformation of the enhanced model's inputs or
timeout structure, so the HSR-specific terms (``P_a``, ``q``) apply to
every variant uniformly.

These are documented approximations, not re-derivations of [22]/[23]:

* **NewReno** — partial-ACK fast recovery repairs multi-loss windows
  without a timeout, so only the ``< 3 dup ACKs`` case still times out.
  In the Padhye framework Reno's data-loss timeout probability ``Q_P``
  additionally fires when a window suffers a *second* loss event
  (retransmission ambiguity); NewReno removes that term.  We model
  Reno's ``Q_P`` as the paper does (Eq. 9) and NewReno's as
  ``Q_P · (1 − p)^{E[W]/2}``-complementary — i.e. the share of
  timeouts attributable to multi-loss windows,
  ``1 − (1 − p)^{E[W]/2}``, is repaired by fast recovery.
* **Veno** — distinguishes random loss from congestive loss via the
  backlog estimate and halves the window only for congestive losses;
  for random (wireless) losses it reduces the window by the milder
  factor 4/5.  In equilibrium this scales the window-halving recurrence
  ``W = W·θ + X/b`` with θ = 4/5 instead of 1/2, enlarging the
  equilibrium window by ``(1−1/2)/(1−4/5) = 2.5×`` per loss event in
  the random-loss regime the HSR channel represents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import components as cf
from repro.core.enhanced import ModelOptions, ThroughputPrediction, enhanced_throughput
from repro.core.params import LinkParams
from repro.util.errors import ModelDomainError

__all__ = [
    "newreno_throughput",
    "veno_throughput",
    "variant_throughput",
    "VENO_RANDOM_LOSS_BACKOFF",
]

#: Veno's multiplicative decrease for losses classified as random.
VENO_RANDOM_LOSS_BACKOFF = 0.8


def newreno_throughput(
    params: LinkParams, options: ModelOptions = ModelOptions()
) -> ThroughputPrediction:
    """Enhanced-framework NewReno: multi-loss windows avoid timeouts.

    Computed by evaluating the enhanced model and re-weighting its
    data-loss timeout share: the fraction of Reno timeouts caused by a
    second loss event in the same window, ``1 − (1−p_d)^{E[W]/2}``,
    is converted back into fast recoveries.  ACK-burst timeouts
    (spurious) are unaffected — NewReno cannot see missing ACKs any
    better than Reno, which is the paper's point that transport-level
    variants don't fix the ACK-loss problem.
    """
    base = enhanced_throughput(params, options)
    multi_loss_share = 1.0 - (1.0 - params.data_loss) ** (base.expected_window / 2.0)
    # Split Q into its data-loss and ACK-burst components (Eq. 10).
    if math.isinf(base.x_p):
        data_component = 0.0
    else:
        survive_bursts = (1.0 - base.ack_burst_loss) ** base.x_p
        q_padhye = cf.timeout_probability_padhye(base.expected_window)
        data_component = q_padhye * survive_bursts
    rescued = data_component * multi_loss_share
    reduced_q = max(0.0, base.timeout_probability - rescued)

    numerator = base.ca_packets + reduced_q * base.timeout_packets
    denominator = (
        params.rtt * base.expected_rounds + reduced_q * base.timeout_duration
    )
    return ThroughputPrediction(
        throughput=numerator / denominator,
        window_limited=base.window_limited,
        ack_burst_loss=base.ack_burst_loss,
        x_p=base.x_p,
        expected_rounds=base.expected_rounds,
        expected_window=base.expected_window,
        timeout_probability=reduced_q,
        consecutive_timeout_probability=base.consecutive_timeout_probability,
        expected_timeouts=base.expected_timeouts,
        timeout_duration=base.timeout_duration,
        timeout_packets=base.timeout_packets,
        ca_packets=base.ca_packets,
        params=params,
    )


def veno_throughput(
    params: LinkParams,
    options: ModelOptions = ModelOptions(),
    random_loss_fraction: float = 1.0,
) -> ThroughputPrediction:
    """Enhanced-framework Veno: milder backoff for random losses.

    ``random_loss_fraction`` is the share of loss events Veno's
    backlog estimator classifies as random (non-congestive); in the
    HSR channel essentially all loss is random, hence the default 1.0.
    The effective multiplicative-decrease factor is
    ``θ = f·0.8 + (1−f)·0.5``; the equilibrium window satisfies
    ``W = θ·W + X/b`` so ``E[W] = (X/b)/(1−θ)``, i.e. the Reno window
    scaled by ``0.5/(1−θ)``.
    """
    if not 0.0 <= random_loss_fraction <= 1.0:
        raise ModelDomainError(
            f"random_loss_fraction must be in [0, 1], got {random_loss_fraction}"
        )
    theta = (
        random_loss_fraction * VENO_RANDOM_LOSS_BACKOFF
        + (1.0 - random_loss_fraction) * 0.5
    )
    window_scale = 0.5 / (1.0 - theta)

    base = enhanced_throughput(params, options)
    scaled_window = min(base.expected_window * window_scale, params.wmax)
    # Larger equilibrium window: proportionally more packets per phase
    # and a lower per-loss timeout probability (Eq. 9), with the same
    # phase duration in rounds (the window is larger the whole time).
    q_padhye = cf.timeout_probability_padhye(scaled_window)
    big_q = cf.timeout_probability(q_padhye, base.ack_burst_loss, base.x_p)
    ca_packets = base.ca_packets * (scaled_window / base.expected_window)

    numerator = ca_packets + big_q * base.timeout_packets
    denominator = params.rtt * base.expected_rounds + big_q * base.timeout_duration
    return ThroughputPrediction(
        throughput=numerator / denominator,
        window_limited=scaled_window >= params.wmax,
        ack_burst_loss=base.ack_burst_loss,
        x_p=base.x_p,
        expected_rounds=base.expected_rounds,
        expected_window=scaled_window,
        timeout_probability=big_q,
        consecutive_timeout_probability=base.consecutive_timeout_probability,
        expected_timeouts=base.expected_timeouts,
        timeout_duration=base.timeout_duration,
        timeout_packets=base.timeout_packets,
        ca_packets=ca_packets,
        params=params,
    )


@dataclass(frozen=True)
class _VariantTable:
    reno: float
    newreno: float
    veno: float


def variant_throughput(
    params: LinkParams, options: ModelOptions = ModelOptions()
) -> dict:
    """Throughput of all three variants at one operating point."""
    return {
        "reno": enhanced_throughput(params, options).throughput,
        "newreno": newreno_throughput(params, options).throughput,
        "veno": veno_throughput(params, options).throughput,
    }
