"""Inverse modeling: fit the HSR parameters from observed throughput.

The paper measures ``q`` and suggests a range (0.25–0.4); ``P_a`` is
"not easily captured by probing directly".  This module closes the
loop: given flows with observed throughput and directly measurable
parameters (RTT, T, p_d, p_a, W_m), recover the latent ``q`` and
``P_a`` that make the enhanced model match — useful both for
calibration against real captures and for checking that the simulator's
ground-truth values are identifiable from throughput alone.

The model is monotone decreasing in both latent parameters, so a
coordinate grid search with refinement is robust and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.accuracy import deviation_rate
from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.params import LinkParams

__all__ = [
    "FittedParameters",
    "fit_ack_burst",
    "fit_latent_parameters",
    "fit_population_recovery_loss",
    "fit_recovery_loss",
]


@dataclass(frozen=True)
class FittedParameters:
    """Result of a latent-parameter fit."""

    recovery_loss: float
    ack_burst: float
    deviation: float  # residual deviation rate at the optimum
    evaluations: int


def _objective(
    params: LinkParams, observed: float, q: float, pa: float
) -> float:
    prediction = enhanced_throughput(
        params.with_(recovery_loss=q), ModelOptions(ack_burst_override=pa)
    )
    return deviation_rate(prediction.throughput, observed)


def _grid_minimise(
    evaluate, lo: float, hi: float, levels: int = 4, points: int = 9
) -> Tuple[float, float, int]:
    """1-D nested grid search; returns (argmin, min, evaluations)."""
    evaluations = 0
    best_x, best_value = lo, float("inf")
    for _ in range(levels):
        step = (hi - lo) / (points - 1)
        for index in range(points):
            x = lo + index * step
            value = evaluate(x)
            evaluations += 1
            if value < best_value:
                best_x, best_value = x, value
        lo = max(lo, best_x - step)
        hi = min(hi, best_x + step)
    return best_x, best_value, evaluations


def fit_recovery_loss(
    params: LinkParams,
    observed_throughput: float,
    ack_burst: float = 0.0,
    bounds: Tuple[float, float] = (0.0, 0.9),
) -> FittedParameters:
    """Fit ``q`` alone, holding ``P_a`` fixed."""
    if observed_throughput <= 0.0:
        raise ValueError("observed throughput must be positive")
    q, deviation, evaluations = _grid_minimise(
        lambda q: _objective(params, observed_throughput, q, ack_burst),
        *bounds,
    )
    return FittedParameters(
        recovery_loss=q, ack_burst=ack_burst, deviation=deviation,
        evaluations=evaluations,
    )


def fit_ack_burst(
    params: LinkParams,
    observed_throughput: float,
    recovery_loss: Optional[float] = None,
    bounds: Tuple[float, float] = (0.0, 0.8),
) -> FittedParameters:
    """Fit ``P_a`` alone, holding ``q`` fixed."""
    if observed_throughput <= 0.0:
        raise ValueError("observed throughput must be positive")
    q = params.recovery_loss if recovery_loss is None else recovery_loss
    pa, deviation, evaluations = _grid_minimise(
        lambda pa: _objective(params, observed_throughput, q, pa),
        *bounds,
    )
    return FittedParameters(
        recovery_loss=q, ack_burst=pa, deviation=deviation,
        evaluations=evaluations,
    )


def fit_latent_parameters(
    params: LinkParams,
    observed_throughput: float,
    rounds: int = 3,
) -> FittedParameters:
    """Fit ``(q, P_a)`` jointly by coordinate descent.

    Alternates the two 1-D fits; the model is monotone in each
    coordinate so a few rounds converge.  Note the pair is only weakly
    identifiable from a single flow (both parameters depress
    throughput); fitting a *population* is done by fitting each flow
    and aggregating, as `examples`/tests demonstrate.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    q, pa = params.recovery_loss, 0.0
    evaluations = 0
    deviation = float("inf")
    for _ in range(rounds):
        fitted_q = fit_recovery_loss(params, observed_throughput, ack_burst=pa)
        q = fitted_q.recovery_loss
        fitted_pa = fit_ack_burst(params, observed_throughput, recovery_loss=q)
        pa = fitted_pa.ack_burst
        deviation = fitted_pa.deviation
        evaluations += fitted_q.evaluations + fitted_pa.evaluations
    return FittedParameters(
        recovery_loss=q, ack_burst=pa, deviation=deviation, evaluations=evaluations
    )


def fit_population_recovery_loss(
    observations: Sequence[Tuple[LinkParams, float]],
    bounds: Tuple[float, float] = (0.0, 0.9),
) -> FittedParameters:
    """One shared ``q`` minimising the mean deviation over many flows.

    This is how the paper's "recommended q in [0.25, 0.4]" would be
    derived from a capture campaign.
    """
    if not observations:
        raise ValueError("need at least one observation")

    def mean_deviation(q: float) -> float:
        total = 0.0
        for params, observed in observations:
            total += _objective(params, observed, q, 0.0)
        return total / len(observations)

    q, deviation, evaluations = _grid_minimise(mean_deviation, *bounds)
    return FittedParameters(
        recovery_loss=q, ack_burst=0.0, deviation=deviation, evaluations=evaluations
    )
