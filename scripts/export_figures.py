"""Export the raw series behind the paper's figures as CSV files.

Writes into ``results/`` (created if needed):

* ``fig1_latency.csv``      — the Fig-1 scatter (send time, latency, dir)
* ``fig1_cwnd.csv``         — the same flow's window trajectory
* ``fig3_loss_pairs.csv``   — per-flow (lifetime, recovery) loss rates
* ``fig4_scatter.csv``      — per-flow (ACK loss, P(timeout)) points
* ``fig6_ack_loss.csv``     — per-flow ACK loss with scenario label
* ``campaign_summary.csv``  — one row per flow of the mini campaign
* ``campaign_report.txt``   — the Section-III text summary

Every CSV goes through :func:`repro.traces.open_csv` /
``repro.traces.export._csv_writer`` so the artefacts all share the same
newline discipline (plain ``\\n``, no platform translation).

Run:  python scripts/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro.experiments.fig1 import simulate_fig1_flow
from repro.simulator.connection import run_flow
from repro.traces import (
    campaign_report,
    generate_dataset,
    generate_stationary_reference,
    loss_rate_pair,
    open_csv,
    timeout_ack_scatter,
    write_cwnd_csv,
    write_flow_summary_csv,
    write_latency_csv,
)
from repro.traces.export import _csv_writer
from repro.hsr import hsr_scenario


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out.mkdir(parents=True, exist_ok=True)

    print("fig1: one HSR flow...")
    trace = simulate_fig1_flow(scale=1.0, seed=2015)
    with open_csv(out / "fig1_latency.csv") as stream:
        write_latency_csv(trace, stream)
    built = hsr_scenario().build(duration=120.0, seed=2015)
    result = run_flow(built.config, built.data_loss, built.ack_loss, seed=2015)
    with open_csv(out / "fig1_cwnd.csv") as stream:
        write_cwnd_csv(result.log.cwnd_samples, stream)

    print("campaigns (this takes a minute)...")
    hsr = generate_dataset(seed=2015, duration=90.0, flow_scale=0.06)
    stationary = generate_stationary_reference(seed=2016, duration=90.0,
                                               flows_per_provider=3)

    with open_csv(out / "fig3_loss_pairs.csv") as stream:
        writer = _csv_writer(stream)
        writer.writerow(["flow_id", "lifetime_loss", "recovery_loss"])
        for flow in hsr.traces:
            lifetime, recovery = loss_rate_pair(flow)
            writer.writerow([flow.metadata.flow_id, f"{lifetime:.6f}",
                             "" if recovery is None else f"{recovery:.6f}"])

    with open_csv(out / "fig4_scatter.csv") as stream:
        writer = _csv_writer(stream)
        writer.writerow(["flow_id", "ack_loss_rate", "timeout_probability"])
        for point in timeout_ack_scatter(hsr.traces):
            writer.writerow([point.flow_id, f"{point.ack_loss_rate:.6f}",
                             f"{point.timeout_probability:.6f}"])

    with open_csv(out / "fig6_ack_loss.csv") as stream:
        writer = _csv_writer(stream)
        writer.writerow(["flow_id", "scenario", "ack_loss_rate"])
        for flow in hsr.traces + stationary.traces:
            writer.writerow([flow.metadata.flow_id, flow.metadata.scenario,
                             f"{flow.ack_loss_rate:.6f}"])

    with open_csv(out / "campaign_summary.csv") as stream:
        write_flow_summary_csv(hsr.traces + stationary.traces, stream)
    (out / "campaign_report.txt").write_text(
        campaign_report(hsr.traces + stationary.traces,
                        title="Synthetic BTR campaign (Section III view)")
    )
    print(f"wrote {len(list(out.iterdir()))} files to {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
