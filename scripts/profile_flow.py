#!/usr/bin/env python
"""Profile one flow: where does the per-packet wall-clock go?

Runs a single flow (by default the 300 km/h HSR shape that
``bench_engine.py`` measures) under cProfile and prints the top
functions by cumulative time — the view that surfaced the original
hot-path sins (per-packet closure allocation in ``Link.send``, scalar
RNG draws per transmission, heap churn on ``EventHandle`` objects).

``--scenario`` profiles any scenario from the bundled library (or a
scenario file path) instead, so a regression on, say, the subway or
stationary channel shape can be localised without editing the script;
``--list-scenarios`` prints the available names.

Usage::

    python scripts/profile_flow.py [--scenario NAME] [--duration 30]
        [--seed 20150402] [--top 20] [--sort cumulative]
        [--list-scenarios]
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default=None,
                        help="scenario name from the bundled library, or a "
                             "path to a scenario file (default: the "
                             "hsr/300kmh bench shape)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="print the known scenario names and exit")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds (default 30)")
    parser.add_argument("--seed", type=int, default=20150402,
                        help="flow seed (default 20150402)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)

    from repro.scenarios import compile_scenario, scenario_names
    from repro.simulator.connection import run_flow

    if args.list_scenarios:
        for name in scenario_names():
            print(name)
        return 0

    if args.scenario is not None:
        scenario = compile_scenario(args.scenario)
        label = args.scenario
    else:
        from repro.hsr.scenario import hsr_scenario

        scenario = hsr_scenario()
        label = "hsr/300kmh"

    built = scenario.build(duration=args.duration, seed=args.seed)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_flow(
        built.config, built.data_loss, built.ack_loss, seed=args.seed
    )
    profiler.disable()

    log = result.log
    print(
        f"profile: {label} flow, {args.duration}s simulated, "
        f"{len(log.data_packets)} data + {len(log.acks)} ack transmissions"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
