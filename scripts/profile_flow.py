#!/usr/bin/env python
"""Profile one HSR flow: where does the per-packet wall-clock go?

Runs a single 300 km/h flow (the same shape ``bench_engine.py``
measures) under cProfile and prints the top functions by cumulative
time — the view that surfaced the original hot-path sins (per-packet
closure allocation in ``Link.send``, scalar RNG draws per
transmission, heap churn on ``EventHandle`` objects).

Usage::

    python scripts/profile_flow.py [--duration 30] [--seed 20150402]
        [--top 20] [--sort cumulative]
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds (default 30)")
    parser.add_argument("--seed", type=int, default=20150402,
                        help="flow seed (default 20150402)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)

    from repro.hsr.scenario import hsr_scenario
    from repro.simulator.connection import run_flow

    built = hsr_scenario().build(duration=args.duration, seed=args.seed)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_flow(
        built.config, built.data_loss, built.ack_loss, seed=args.seed
    )
    profiler.disable()

    log = result.log
    print(
        f"profile: hsr/300kmh flow, {args.duration}s simulated, "
        f"{len(log.data_packets)} data + {len(log.acks)} ack transmissions"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
