#!/usr/bin/env python
"""CI drill for the distributed campaign fabric.

Stands up the whole distributed stack on localhost — an HTTP store
server, a campaign coordinator, two spawned worker processes — and
runs the paper's Table-I campaign through it with one worker ordered
to SIGKILL itself mid-shard.  The gates:

1. the chaotic fabric run is byte-identical to a serial run (report
   JSON and every trace pickle), with at least one worker respawn
   actually observed;
2. every flow was banked in the shared store over HTTP;
3. a warm rerun serves every flow from the store and never engages the
   fabric (zero processes spawned, zero flows simulated).

Writes ``FABRIC_campaign.json`` (the uploaded artefact) and exits
non-zero if any gate fails.

Usage::

    python scripts/fabric_ci.py [--flow-scale 0.05] [--duration 8]
        [--output FABRIC_campaign.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _trace_pickles(dataset):
    return [pickle.dumps(trace) for trace in dataset.traces]


def _fabric_campaign(flow_scale: float, duration: float, config, store_url: str):
    """One Table-I campaign on the fabric, with the backend exposed so
    the drill can read fleet facts (respawns, leases) off it."""
    from repro.exec.executor import Executor
    from repro.fabric import fabric_scope
    from repro.store import store_scope
    from repro.traces.generator import PAPER_CAMPAIGN, SyntheticDataset, campaign_specs

    executor = Executor.for_workers("fabric")
    specs = campaign_specs(seed=2015, duration=duration, flow_scale=flow_scale)
    start = time.perf_counter()
    with fabric_scope(config), store_scope(store_url):
        execution = executor.run(specs)
    elapsed = time.perf_counter() - start
    dataset = SyntheticDataset(
        traces=execution.traces, entries=PAPER_CAMPAIGN, report=execution.report
    )
    return dataset, elapsed, executor.backend.last_stats


def run_drill(flow_scale: float, duration: float) -> dict:
    from repro.fabric import FabricConfig
    from repro.store import StoreServer
    from repro.traces.generator import generate_dataset

    print(f"fabric-ci: serial reference (flow_scale={flow_scale}, "
          f"duration={duration})", flush=True)
    serial = generate_dataset(seed=2015, duration=duration, flow_scale=flow_scale)
    serial_report = serial.report.to_json()
    serial_pickles = _trace_pickles(serial)

    with tempfile.TemporaryDirectory(prefix="repro-fabric-ci-") as tmp:
        with StoreServer(tmp) as server:
            print(f"fabric-ci: store server at {server.url}", flush=True)
            config = FabricConfig(
                workers=2,
                store=server.url,
                poll_s=0.02,
                lease_timeout_s=10.0,
                max_worker_restarts=6,
                announce=True,
                # worker 0 is the crash dummy: a real SIGKILL, mid-shard
                extra_worker_args=(("--sigkill-after", "2"),),
            )
            chaotic, chaotic_s, stats = _fabric_campaign(
                flow_scale, duration, config, server.url
            )
            entries = server.store.stats().entries
            put_round_trips = server.counters.get("put", 0)
            print(f"fabric-ci: chaotic run took {chaotic_s:.1f}s "
                  f"({stats['restarts']} respawns, "
                  f"{stats['leases_expired']} leases expired), "
                  f"{entries} flows banked over HTTP "
                  f"({put_round_trips} PUTs)", flush=True)

            warm, warm_s, warm_stats = _fabric_campaign(
                flow_scale, duration, config, server.url
            )
            server_requests = server.request_count

    flows = serial.flow_count
    gates = {
        "chaotic_report_identical": chaotic.report.to_json() == serial_report,
        "chaotic_traces_identical": _trace_pickles(chaotic) == serial_pickles,
        "crash_observed": stats["restarts"] >= 1,
        "all_flows_banked": entries == flows,
        "warm_report_identical": warm.report.to_json() == serial_report,
        "warm_all_hits": warm.report.cache_hits == flows,
        "warm_simulated_nothing": warm.report.cache_misses == 0,
        # all-hits batches never reach the fabric: no servers, no procs
        "warm_fabric_untouched": warm_stats is None,
    }
    return {
        "drill": "fabric-kill-and-rejoin",
        "flows": flows,
        "flow_duration_s": duration,
        "chaotic_elapsed_s": round(chaotic_s, 4),
        "warm_elapsed_s": round(warm_s, 4),
        "worker_restarts": stats["restarts"],
        "leases_expired": stats["leases_expired"],
        "completions_rejected": stats["completions_rejected"],
        "store_entries": entries,
        "store_put_round_trips": put_round_trips,
        "store_requests_total": server_requests,
        "gates": gates,
        "ok": all(gates.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flow-scale", type=float, default=0.05)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "FABRIC_campaign.json")
    )
    args = parser.parse_args(argv)

    result = run_drill(args.flow_scale, args.duration)
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"fabric-ci: wrote {args.output}", flush=True)
    for gate, passed in result["gates"].items():
        print(f"fabric-ci: gate {gate}: {'ok' if passed else 'FAIL'}", flush=True)
    if not result["ok"]:
        print("fabric-ci: FAIL — the fabric diverged from serial", file=sys.stderr)
        return 1
    print(f"fabric-ci: ok — {result['flows']} flows byte-identical through "
          "crash, rejoin, and warm rerun")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
