#!/usr/bin/env python
"""End-to-end resilience smoke test.

One command that proves the robustness path works as a system:

1. runs the full experiment CLI (``python -m repro.experiments all
   --scale 0.1``) under an aggressive fault plan and per-flow watchdogs,
   asserting a zero exit code and non-empty output — every experiment
   must survive injected handoff storms, deep fades, ACK blackouts and
   RTT spikes;
2. runs a campaign in-process with the same chaos plus a deliberately
   broken flow, asserting the partial dataset and a non-empty,
   deterministic :class:`~repro.robustness.campaign.CampaignReport`.

Usage::

    python scripts/smoke.py            # full smoke (a few minutes)
    python scripts/smoke.py --fast     # in-process campaign check only

Exits 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

CHAOS_INTENSITY = 1.0


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def smoke_cli() -> None:
    """The whole experiment battery under chaos must exit 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.experiments", "all",
        "--scale", "0.1",
        "--chaos", str(CHAOS_INTENSITY),
        "--timeout-s", "600",
        "--max-events", "50000000",
    ]
    print("smoke: running", " ".join(command), flush=True)
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        fail(f"CLI exited {completed.returncode} under chaos")
    if "==" not in completed.stdout:
        fail("CLI produced no experiment reports")
    experiments = completed.stdout.count("== ")
    print(f"smoke: CLI ok — {experiments} experiment reports under chaos")


def smoke_campaign() -> None:
    """A chaotic campaign with a broken flow must degrade, not die."""
    import repro.traces.generator as generator_module
    from repro.robustness import FaultPlan, RetryPolicy, Watchdog
    from repro.util.errors import SimulationError

    plan = FaultPlan.aggressive(CHAOS_INTENSITY)
    watchdog = Watchdog.default()

    # Break one flow persistently: run_flow raises for every seed the
    # retry policy will derive for flow index 2 of the first cell.
    policy = RetryPolicy()
    from repro.traces.generator import PAPER_CAMPAIGN
    from repro.util.rng import RngStream

    entry = PAPER_CAMPAIGN[0]
    base = (
        RngStream(2015, "dataset")
        .spawn(entry.capture_month, entry.provider.name, 2)
        .seed
        & 0x7FFFFFFF
    )
    bad_seeds = {
        policy.seed_for_attempt(base, attempt)
        for attempt in range(policy.max_attempts)
    }
    real_run_flow = generator_module.run_flow

    def breaking_run_flow(config, data_loss=None, ack_loss=None, seed=0, **kwargs):
        if seed in bad_seeds:
            raise SimulationError("smoke-injected failure")
        return real_run_flow(
            config, data_loss=data_loss, ack_loss=ack_loss, seed=seed, **kwargs
        )

    generator_module.run_flow = breaking_run_flow
    try:
        reports = []
        for _ in range(2):  # twice: the report must be byte-identical
            dataset = generator_module.generate_dataset(
                seed=2015,
                duration=10.0,
                flow_scale=0.08,  # 20 flows
                fault_plan=plan,
                watchdog=watchdog,
            )
            reports.append(dataset.report)
    finally:
        generator_module.run_flow = real_run_flow

    report = reports[0]
    print(f"smoke: campaign report — {report.summary()}")
    if report.attempted < 20:
        fail(f"campaign attempted only {report.attempted} flows")
    if not report.failures:
        fail("report is empty: the injected failure was not recorded")
    if report.quarantined != 1:
        fail(f"expected exactly 1 quarantined flow, got {report.quarantined}")
    if dataset.flow_count != report.succeeded or dataset.flow_count < 19:
        fail(
            f"partial dataset inconsistent: {dataset.flow_count} traces, "
            f"{report.succeeded} succeeded"
        )
    if reports[0].to_json() != reports[1].to_json():
        fail("campaign report is not deterministic across reruns")
    print("smoke: campaign resilience ok — degraded deterministically, no data loss")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true",
        help="skip the full CLI battery, run only the in-process campaign check",
    )
    args = parser.parse_args()
    smoke_campaign()
    if not args.fast:
        smoke_cli()
    print("SMOKE PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
