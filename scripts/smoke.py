#!/usr/bin/env python
"""End-to-end resilience smoke test.

One command that proves the robustness path works as a system:

1. runs ``scripts/check_api.py`` — ``import repro`` in a clean
   interpreter, every ``repro.__all__`` name resolvable, every example
   under ``examples/`` importing only things that exist;
2. runs a fixed-seed instrumented flow and asserts every
   :class:`~repro.telemetry.CountingTelemetry` counter reconciles
   exactly with the flow's own :class:`FlowLog` aggregates;
3. runs the full experiment CLI (``python -m repro.experiments all
   --scale 0.1``) under an aggressive fault plan and per-flow watchdogs,
   asserting a zero exit code and non-empty output — every experiment
   must survive injected handoff storms, deep fades, ACK blackouts and
   RTT spikes;
4. runs a campaign in-process with the same chaos plus a deliberately
   broken flow, asserting the partial dataset and a non-empty,
   deterministic :class:`~repro.robustness.campaign.CampaignReport`;
5. SIGTERMs a running store-backed campaign in a subprocess, asserting
   a graceful drain (exit ``128+SIGTERM``, completed flows flushed to
   the store, report marked interrupted) and that rerunning against
   the same store resumes exactly the missing flows with a final
   report byte-identical to a never-interrupted run;
6. runs ``benchmarks/bench_campaign.py`` (serial vs multi-process vs
   auto campaign throughput), asserting every backend agrees with
   serial and that ``BENCH_campaign.json`` is written with the auto
   backend's decision;
7. runs ``benchmarks/bench_engine.py`` — which itself fails if
   ``NullTelemetry`` costs more than its 5% zero-overhead budget — and
   fails if engine events/sec regresses more than 30% against the
   committed ``BENCH_engine.json`` baseline.

Usage::

    python scripts/smoke.py            # full smoke (a few minutes)
    python scripts/smoke.py --fast     # in-process campaign check only

Exits 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

CHAOS_INTENSITY = 1.0


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def smoke_cli() -> None:
    """The whole experiment battery under chaos must exit 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.experiments", "all",
        "--scale", "0.1",
        "--chaos", str(CHAOS_INTENSITY),
        "--timeout-s", "600",
        "--max-events", "50000000",
    ]
    print("smoke: running", " ".join(command), flush=True)
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        fail(f"CLI exited {completed.returncode} under chaos")
    if "==" not in completed.stdout:
        fail("CLI produced no experiment reports")
    experiments = completed.stdout.count("== ")
    print(f"smoke: CLI ok — {experiments} experiment reports under chaos")


def smoke_campaign() -> None:
    """A chaotic campaign with a broken flow must degrade, not die."""
    import repro.exec.executor as executor_module
    from repro.robustness import FaultPlan, RetryPolicy, Watchdog
    from repro.traces.generator import PAPER_CAMPAIGN, generate_dataset
    from repro.util.errors import SimulationError
    from repro.util.rng import RngStream

    plan = FaultPlan.aggressive(CHAOS_INTENSITY)
    watchdog = Watchdog.default()

    # Break one flow persistently: simulate_spec raises for every seed
    # the retry policy will derive for flow index 2 of the first cell.
    # (Patching the executor module global only reaches the serial
    # backend — which is what generate_dataset uses by default.)
    policy = RetryPolicy()
    entry = PAPER_CAMPAIGN[0]
    base = (
        RngStream(2015, "dataset")
        .spawn(entry.capture_month, entry.provider.name, 2)
        .seed
        & 0x7FFFFFFF
    )
    bad_seeds = {
        policy.seed_for_attempt(base, attempt)
        for attempt in range(policy.max_attempts)
    }
    real_simulate_spec = executor_module.simulate_spec

    def breaking_simulate_spec(spec):
        if spec.seed in bad_seeds:
            raise SimulationError("smoke-injected failure")
        return real_simulate_spec(spec)

    executor_module.simulate_spec = breaking_simulate_spec
    try:
        reports = []
        for _ in range(2):  # twice: the report must be byte-identical
            dataset = generate_dataset(
                seed=2015,
                duration=10.0,
                flow_scale=0.08,  # 20 flows
                fault_plan=plan,
                watchdog=watchdog,
            )
            reports.append(dataset.report)
    finally:
        executor_module.simulate_spec = real_simulate_spec

    report = reports[0]
    print(f"smoke: campaign report — {report.summary()}")
    if report.attempted < 20:
        fail(f"campaign attempted only {report.attempted} flows")
    if not report.failures:
        fail("report is empty: the injected failure was not recorded")
    if report.quarantined != 1:
        fail(f"expected exactly 1 quarantined flow, got {report.quarantined}")
    if dataset.flow_count != report.succeeded or dataset.flow_count < 19:
        fail(
            f"partial dataset inconsistent: {dataset.flow_count} traces, "
            f"{report.succeeded} succeeded"
        )
    if reports[0].to_json() != reports[1].to_json():
        fail("campaign report is not deterministic across reruns")
    print("smoke: campaign resilience ok — degraded deterministically, no data loss")


def smoke_store() -> None:
    """A warm result store must serve a whole campaign without simulating."""
    import pickle
    import tempfile

    import repro.exec.executor as executor_module
    from repro.store import ResultStore
    from repro.traces.generator import generate_dataset

    with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as tmp:
        fresh = generate_dataset(seed=2015, duration=8.0, flow_scale=0.04)
        cold = generate_dataset(seed=2015, duration=8.0, flow_scale=0.04, store=tmp)

        calls = []
        real_simulate_spec = executor_module.simulate_spec

        def counting_simulate_spec(spec):
            calls.append(spec.flow_id)
            return real_simulate_spec(spec)

        executor_module.simulate_spec = counting_simulate_spec
        try:
            warm = generate_dataset(
                seed=2015, duration=8.0, flow_scale=0.04, store=tmp
            )
        finally:
            executor_module.simulate_spec = real_simulate_spec

        if calls:
            fail(f"warm store rerun simulated {len(calls)} flows: {calls}")
        if warm.report.cache_hits != warm.flow_count or warm.flow_count == 0:
            fail(
                f"warm run reported {warm.report.cache_hits} cache hits for "
                f"{warm.flow_count} flows"
            )
        for label, dataset in (("cold", cold), ("warm", warm)):
            if [pickle.dumps(t) for t in dataset.traces] != [
                pickle.dumps(t) for t in fresh.traces
            ]:
                fail(f"{label} store-backed traces diverge from uncached ones")
            if dataset.report.to_json() != fresh.report.to_json():
                fail(f"{label} store-backed report diverges from uncached one")
        checked, corrupt = ResultStore(tmp).verify()
        if corrupt or checked != warm.flow_count:
            fail(f"store verify: {checked} checked, {len(corrupt)} corrupt")
    print(
        f"smoke: store ok — {warm.flow_count} flows served from cache, "
        "byte-identical to uncached, store verifies clean"
    )


def smoke_bench() -> None:
    """The campaign micro-benchmark must run and emit its artefact."""
    bench = os.path.join(REPO_ROOT, "benchmarks", "bench_campaign.py")
    output = os.path.join(REPO_ROOT, "BENCH_campaign.json")
    command = [
        sys.executable, bench,
        "--flow-scale", "0.04", "--duration", "5",
        "--output", output,
    ]
    print("smoke: running", " ".join(command), flush=True)
    completed = subprocess.run(
        command, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        fail(f"bench_campaign exited {completed.returncode}")
    import json

    with open(output) as handle:
        record = json.load(handle)
    for key in ("cpu_count", "serial", "parallel", "auto", "cached",
                "speedup", "identical"):
        if key not in record:
            fail(f"BENCH_campaign.json is missing {key!r}")
    if not record["identical"]:
        fail("bench: a campaign backend diverged from serial")
    if record["serial"]["flows_per_s"] <= 0.0:
        fail("bench: non-positive serial throughput")
    decision = record["auto"]["decision"]
    if not decision or decision.get("mode") not in ("serial", "pool", "lockstep"):
        fail("bench: auto backend recorded no usable decision")
    print(f"smoke: bench ok — {record['serial']['flows_per_s']:.1f} flows/s serial, "
          f"speedup {record['speedup']:.2f}x with "
          f"{record['parallel']['workers']} workers, "
          f"auto chose {decision['mode']}")


def smoke_api() -> None:
    """The consolidated import surface and example imports must hold."""
    check = os.path.join(REPO_ROOT, "scripts", "check_api.py")
    command = [sys.executable, check]
    print("smoke: running", " ".join(command), flush=True)
    completed = subprocess.run(
        command, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stdout)
        sys.stderr.write(completed.stderr)
        fail(f"check_api exited {completed.returncode}")
    print("smoke: api ok — top-level surface and example imports resolve")


def smoke_telemetry() -> None:
    """Counters must reconcile exactly with the FlowLog on a fixed seed."""
    from repro.hsr.scenario import hsr_scenario
    from repro.simulator.connection import run_flow
    from repro.telemetry import CountingTelemetry

    seed = 20150402
    built = hsr_scenario().build(duration=12.0, seed=seed)
    telemetry = CountingTelemetry()
    log = run_flow(
        built.config, built.data_loss, built.ack_loss,
        seed=seed, telemetry=telemetry,
    ).log

    delivered = sum(
        1 for p in log.data_packets if p.arrival_time is not None
    ) + sum(1 for a in log.acks if a.arrival_time is not None)
    phase_changes = sum(
        1
        for before, after in zip(log.cwnd_samples, log.cwnd_samples[1:])
        if before.phase != after.phase
    )
    identities = [
        ("data_sent", telemetry.data_sent, log.data_sent),
        ("data_dropped", telemetry.data_dropped, log.data_lost),
        ("acks_sent", telemetry.acks_sent, log.acks_sent),
        ("acks_dropped", telemetry.acks_dropped, log.acks_lost),
        ("packets_sent", telemetry.packets_sent,
         log.data_sent + log.acks_sent),
        ("packets_dropped", telemetry.packets_dropped,
         log.data_lost + log.acks_lost),
        ("packets_delivered", telemetry.packets_delivered, delivered),
        ("rto_fired", telemetry.rto_fired, len(log.timeouts)),
        ("cwnd_phase_transitions", telemetry.cwnd_phase_transitions,
         phase_changes),
    ]
    for name, counted, logged in identities:
        if counted != logged:
            fail(f"telemetry counter {name}={counted} disagrees with "
                 f"the FlowLog's {logged}")
    print(f"smoke: telemetry ok — {len(identities)} counters reconcile "
          f"({telemetry.packets_sent} packets, {telemetry.rto_fired} RTOs, "
          f"{telemetry.rto_spurious} spurious)")


#: the interrupted-campaign drill: flow count, sim duration each, and
#: after how many completed flows the SIGTERM lands
_SUPERVISE_FLOWS = 16
_SUPERVISE_DURATION = 8.0
_SUPERVISE_KILL_AFTER = 5

#: child process for the SIGTERM drill — a store-backed campaign that
#: receives SIGTERM mid-run (delivered deterministically after the
#: ``kill_after``-th completed flow, so the drill cannot race the
#: campaign on fast or slow machines), prints its report JSON, and
#: exits 128+signum when it was drained
_SUPERVISE_CHILD = """
import os
import signal
import sys

import repro.exec.executor as executor_module
from repro.exec import Executor, FlowSpec
from repro.exec.supervise import interrupt_signal
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.store.scope import store_scope

store_dir = sys.argv[1]
flows, duration = int(sys.argv[2]), float(sys.argv[3])
kill_after = int(sys.argv[4])  # 0 = run to completion

completed = [0]
real_simulate_spec = executor_module.simulate_spec

def signalling_simulate_spec(spec):
    result = real_simulate_spec(spec)
    completed[0] += 1
    if kill_after and completed[0] == kill_after:
        os.kill(os.getpid(), signal.SIGTERM)
    return result

executor_module.simulate_spec = signalling_simulate_spec
specs = [
    FlowSpec(
        scenario=hsr_scenario(CHINA_MOBILE), duration=duration,
        seed=900 + i, flow_id=f"sm/{i}",
    )
    for i in range(flows)
]
with store_scope(store_dir):
    result = Executor().run(specs)
print(result.report.to_json())
signum = interrupt_signal()
sys.exit(128 + signum if signum is not None else 0)
"""


def smoke_supervise() -> None:
    """SIGTERM a running campaign: clean drain, then an exact resume.

    The killed run must flush its completed flows to the store and
    report itself interrupted; rerunning the same campaign against the
    same store must simulate exactly the missing flows and produce a
    final report byte-identical to a never-interrupted run.
    """
    import glob
    import json
    import signal as signal_module
    import tempfile

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    def run_child(store_dir, kill_after=0):
        completed = subprocess.run(
            [
                sys.executable, "-c", _SUPERVISE_CHILD, store_dir,
                str(_SUPERVISE_FLOWS), str(_SUPERVISE_DURATION),
                str(kill_after),
            ],
            env=env, cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=300,
        )
        return completed.returncode, completed.stdout.strip(), completed.stderr

    with tempfile.TemporaryDirectory(prefix="repro-smoke-drain-") as shared, \
            tempfile.TemporaryDirectory(prefix="repro-smoke-clean-") as clean:
        code, report_json, stderr = run_child(
            shared, kill_after=_SUPERVISE_KILL_AFTER
        )
        if code != 128 + signal_module.SIGTERM:
            sys.stderr.write(stderr)
            fail(f"interrupted campaign exited {code}, "
                 f"expected {128 + signal_module.SIGTERM}")
        if "draining in-flight flows" not in stderr:
            fail("drain note missing from the interrupted campaign's stderr")
        interrupted = json.loads(report_json)
        if not interrupted["interrupted"]:
            fail("killed campaign's report is not marked interrupted")
        flushed = len(glob.glob(os.path.join(shared, "*", "*.json.gz")))
        if not 0 < flushed < _SUPERVISE_FLOWS:
            fail(f"expected a partial store after SIGTERM, found {flushed} "
                 f"of {_SUPERVISE_FLOWS} entries")
        if interrupted["attempted"] != flushed:
            fail(f"report says {interrupted['attempted']} attempted but "
                 f"{flushed} entries were flushed")

        code, resumed_json, stderr = run_child(shared)
        if code != 0:
            sys.stderr.write(stderr)
            fail(f"resumed campaign exited {code}")
        code, clean_json, stderr = run_child(clean)
        if code != 0:
            sys.stderr.write(stderr)
            fail(f"uninterrupted reference campaign exited {code}")
        if resumed_json != clean_json:
            fail("resumed report diverges from the uninterrupted run's")
        if json.loads(resumed_json)["interrupted"]:
            fail("resumed campaign still reports itself interrupted")
    print(
        f"smoke: supervise ok — SIGTERM drained cleanly after "
        f"{flushed}/{_SUPERVISE_FLOWS} flows, resume byte-matched the "
        "uninterrupted report"
    )


#: fractional events/sec regression tolerated against the committed
#: BENCH_engine.json baseline before the smoke test fails
ENGINE_REGRESSION_TOLERANCE = 0.30


def smoke_engine_bench() -> None:
    """Engine throughput must stay within 30% of the committed baseline."""
    import json

    baseline_path = os.path.join(REPO_ROOT, "BENCH_engine.json")
    if not os.path.exists(baseline_path):
        fail("BENCH_engine.json baseline is missing — run "
             "benchmarks/bench_engine.py and commit the artefact")
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    bench = os.path.join(REPO_ROOT, "benchmarks", "bench_engine.py")
    output = os.path.join(REPO_ROOT, "BENCH_engine.current.json")
    command = [
        sys.executable, bench,
        "--events", "100000", "--flow-duration", "10", "--repeats", "4",
        "--output", output,
    ]
    print("smoke: running", " ".join(command), flush=True)
    completed = subprocess.run(
        command, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        fail(f"bench_engine exited {completed.returncode}")
    try:
        with open(output) as handle:
            current = json.load(handle)
    finally:
        if os.path.exists(output):
            os.remove(output)

    # events/sec is a rate, so the comparison is fair even though the
    # smoke run uses a smaller event count than the committed baseline.
    checks = [
        ("event loop", baseline["event_loop"]["events_per_s"],
         current["event_loop"]["events_per_s"]),
        ("hsr flow", baseline["hsr_flow"]["engine_events_per_s"],
         current["hsr_flow"]["engine_events_per_s"]),
    ]
    for label, base_rate, current_rate in checks:
        floor = base_rate * (1.0 - ENGINE_REGRESSION_TOLERANCE)
        if current_rate < floor:
            fail(
                f"engine regression ({label}): {current_rate:,.0f} events/s "
                f"is more than {ENGINE_REGRESSION_TOLERANCE:.0%} below the "
                f"committed baseline {base_rate:,.0f} events/s"
            )
        print(f"smoke: engine {label} ok — {current_rate:,.0f} events/s "
              f"(baseline {base_rate:,.0f}, floor {floor:,.0f})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true",
        help="skip the full CLI battery, run only the in-process "
             "campaign check and the micro-benchmark",
    )
    args = parser.parse_args()
    smoke_api()
    smoke_telemetry()
    smoke_campaign()
    smoke_store()
    smoke_supervise()
    smoke_bench()
    smoke_engine_bench()
    if not args.fast:
        smoke_cli()
    print("SMOKE PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
