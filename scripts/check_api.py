#!/usr/bin/env python
"""Public-API health check: the import surface must work as documented.

Two guarantees, cheap enough to run on every change:

1. ``import repro`` works in a clean interpreter, ``repro.__all__`` is
   present, sorted, and every name in it actually resolves — the
   consolidated top-level surface is real, not aspirational.
2. Every script under ``examples/`` imports only things that exist.
   The examples run their scenario at import time (they have no
   ``__main__`` guard), so executing them here would turn an API check
   into a simulation run; instead each file is *parsed* and its import
   statements are resolved one by one.  A renamed or dropped public
   symbol therefore breaks this check, not a user's first copy-paste.

Usage::

    python scripts/check_api.py

Exits 0 on success, 1 on the first failure.
"""

from __future__ import annotations

import ast
import glob
import importlib
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly
    print(f"API CHECK FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_top_level_surface() -> None:
    """``import repro`` in a clean interpreter; every ``__all__`` name real."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", "import repro; repro.__all__"],
        env=env, capture_output=True, text=True,
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        fail("`import repro` failed in a clean interpreter")

    import repro

    if list(repro.__all__) != sorted(set(repro.__all__)):
        fail("repro.__all__ is not sorted and duplicate-free")
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    if missing:
        fail(f"repro.__all__ advertises unresolvable names: {missing}")
    print(f"api: top-level surface ok — {len(repro.__all__)} names, "
          f"version {repro.__version__}")


def _imports_of(path: str):
    """Yield (module, names) for every absolute import statement in *path*."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, []
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            yield node.module, [alias.name for alias in node.names]


def check_examples() -> None:
    """Every import in every example must resolve against the live API."""
    examples = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py")))
    if not examples:
        fail("no examples found under examples/")
    for path in examples:
        label = os.path.relpath(path, REPO_ROOT)
        for module, names in _imports_of(path):
            try:
                imported = importlib.import_module(module)
            except ImportError as error:
                fail(f"{label}: cannot import {module!r}: {error}")
            for name in names:
                if name == "*" or hasattr(imported, name):
                    continue
                try:
                    importlib.import_module(f"{module}.{name}")
                except ImportError:
                    fail(f"{label}: {module!r} has no attribute {name!r}")
        print(f"api: {label} imports ok")


def main() -> int:
    check_top_level_surface()
    check_examples()
    print("API CHECK PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
