"""Calibration helper: per-scenario observables vs the paper's targets."""
import statistics, sys, time
from repro.hsr import hsr_scenario, stationary_scenario, CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM
from repro.simulator import run_flow

def classify_spurious(log):
    """A timeout is spurious if an earlier copy of its seq already arrived."""
    arrivals = {}
    for r in log.data_packets:
        if r.arrival_time is not None:
            arrivals.setdefault(r.seq, []).append(r.arrival_time)
    spurious = 0
    for t in log.timeouts:
        if any(a <= t.time for a in arrivals.get(t.seq, [])):
            spurious += 1
    return spurious

def run(scenarios, n_flows=6, duration=180.0):
    t0 = time.time()
    for scen in scenarios:
        stats = dict(pd=[], pa=[], rec=[], q=[], spur=[], tos=[], tp=[])
        for seed in range(n_flows):
            built = scen.build(duration=duration, seed=seed*97+11)
            res = run_flow(built.config, built.data_loss, built.ack_loss, seed=seed*31+5)
            log = res.log
            phases = log.completed_recovery_phases()
            stats['pd'].append(res.data_loss_rate)
            stats['pa'].append(res.ack_loss_rate)
            stats['tp'].append(res.throughput)
            stats['tos'].append(len(log.timeouts))
            if phases:
                stats['rec'] += [p.duration for p in phases]
                retx = sum(p.retransmissions for p in phases)
                lost = sum(p.retransmissions_lost for p in phases)
                if retx: stats['q'].append(lost/retx)
            if log.timeouts:
                stats['spur'].append(classify_spurious(log)/len(log.timeouts))
        m = lambda k: statistics.mean(stats[k]) if stats[k] else 0.0
        print('%-30s tp=%7.1f p_d=%.4f p_a=%.4f TO/flow=%5.1f rec=%5.2fs q=%.2f spur=%.2f' % (
            scen.name, m('tp'), m('pd'), m('pa'), m('tos'), m('rec'), m('q'), m('spur')))
    print('targets(HSR): p_d~0.0075 p_a~0.0066 rec~5.05s q~0.27 spur~0.49 | stationary: p_a~0.0007 rec~0.65s')
    print('%.1fs' % (time.time()-t0))

if __name__ == '__main__':
    scens = [hsr_scenario(p) for p in (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)]
    scens += [stationary_scenario(p) for p in (CHINA_MOBILE, CHINA_UNICOM, CHINA_TELECOM)]
    run(scens)
