#!/usr/bin/env python
"""Micro-benchmark: campaign throughput across executor backends.

Runs the same miniature paper campaign through the flow executor — on
the ``SerialBackend``, on a multi-process ``ProcessPoolBackend``, on
the ``LockstepBackend`` (eligible flows share one event wheel), on
the ``AutoBackend`` (which probes the batch and picks
lockstep/serial/pool itself), and finally twice through a throw-away
``ResultStore`` (a cold populating run, then a warm all-hits one) —
and reports flows/sec for each, the serial→pool and serial→lockstep
speedups, the auto backend's recorded decision, and the warm-cache
speedup, in ``BENCH_campaign.json``.  Each run also appends a
timestamped one-line summary to ``BENCH_history.jsonl``.

All runs must produce identical traces and an identical campaign
report (that is the executor's determinism contract, and this script
asserts it), so the timings compare pure execution cost.  The speedup
itself is machine-dependent, which is why ``cpu_count`` leads the
artefact: on a single-core container a process pool only adds spawn
overhead, and a "slowdown" there is a fact about the host, not the
backend.  The parallel leg therefore defaults to
``min(4, os.cpu_count())`` workers — benchmarking 4 spawned processes
on 1 CPU measures oversubscription, nothing else.

Usage::

    python benchmarks/bench_campaign.py [--flow-scale 0.2]
        [--duration 20] [--workers N] [--cc bbr]
        [--output BENCH_campaign.json]

The ``--cc`` flag points every leg at another registered congestion
control (see ``python -m repro.cc list``); the identity gate is the
same, so the determinism contract is benchmarked — and enforced — for
the whole zoo, not just Reno.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from _common import append_history, write_artifact  # noqa: E402


def _timed_campaign(flow_scale: float, duration: float, workers, cc: str):
    from repro.traces.generator import generate_dataset

    start = time.perf_counter()
    dataset = generate_dataset(
        seed=2015, duration=duration, flow_scale=flow_scale, workers=workers, cc=cc
    )
    elapsed = time.perf_counter() - start
    return dataset, elapsed


def _timed_auto_campaign(flow_scale: float, duration: float, cc: str):
    """The auto leg, run through an explicit backend so the probe's
    decision record can be captured for the artefact."""
    from repro.exec import AutoBackend, Executor
    from repro.traces.generator import PAPER_CAMPAIGN, SyntheticDataset, campaign_specs

    backend = AutoBackend()
    start = time.perf_counter()
    specs = campaign_specs(seed=2015, duration=duration, flow_scale=flow_scale, cc=cc)
    execution = Executor(backend=backend).run(specs)
    elapsed = time.perf_counter() - start
    dataset = SyntheticDataset(
        traces=execution.traces, entries=PAPER_CAMPAIGN, report=execution.report
    )
    return dataset, elapsed, backend.last_decision


def _timed_lockstep_campaign(flow_scale: float, duration: float, cc: str):
    """The lockstep leg: eligible flows share one event wheel."""
    from repro.traces.generator import generate_dataset

    start = time.perf_counter()
    dataset = generate_dataset(
        seed=2015, duration=duration, flow_scale=flow_scale, workers="lockstep", cc=cc
    )
    elapsed = time.perf_counter() - start
    return dataset, elapsed


def _timed_cached_campaign(flow_scale: float, duration: float, cc: str):
    """Cold (populate) then warm (all hits) run through a ResultStore."""
    import tempfile

    from repro.traces.generator import generate_dataset

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        start = time.perf_counter()
        generate_dataset(
            seed=2015, duration=duration, flow_scale=flow_scale, store=tmp, cc=cc
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_dataset = generate_dataset(
            seed=2015, duration=duration, flow_scale=flow_scale, store=tmp, cc=cc
        )
        warm_s = time.perf_counter() - start
    return warm_dataset, cold_s, warm_s


def _timed_fabric_campaign(flow_scale: float, duration: float, cc: str):
    """The fabric leg: two worker processes over HTTP, an in-process
    store server in the middle — the distributed stack end to end,
    with store round-trips counted on the server."""
    import tempfile

    from repro.fabric import FabricConfig, fabric_scope
    from repro.store import StoreServer
    from repro.traces.generator import generate_dataset

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as tmp:
        with StoreServer(tmp) as server:
            config = FabricConfig(workers=2, store=server.url, poll_s=0.02)
            start = time.perf_counter()
            with fabric_scope(config):
                dataset = generate_dataset(
                    seed=2015, duration=duration, flow_scale=flow_scale,
                    workers="fabric", store=server.url, cc=cc,
                )
            elapsed = time.perf_counter() - start
            round_trips = server.request_count
    return dataset, elapsed, round_trips


def _trace_pickles(dataset):
    # Compare per trace: a batched pickle would differ through memo
    # references shared in-process, not through any value drift.
    return [pickle.dumps(trace) for trace in dataset.traces]


def run_benchmark(
    flow_scale: float = 0.2, duration: float = 20.0, workers=None, cc: str = "reno"
) -> dict:
    cpu_count = os.cpu_count() or 1
    if workers is None:
        workers = min(4, cpu_count)
    serial_dataset, serial_s = _timed_campaign(flow_scale, duration, 1, cc)
    parallel_dataset, parallel_s = _timed_campaign(flow_scale, duration, workers, cc)
    lockstep_dataset, lockstep_s = _timed_lockstep_campaign(flow_scale, duration, cc)
    auto_dataset, auto_s, auto_decision = _timed_auto_campaign(flow_scale, duration, cc)
    warm_dataset, cold_s, warm_s = _timed_cached_campaign(flow_scale, duration, cc)
    fabric_dataset, fabric_s, fabric_round_trips = _timed_fabric_campaign(
        flow_scale, duration, cc
    )

    serial_pickles = _trace_pickles(serial_dataset)
    serial_report = serial_dataset.report.to_json()
    identical = (
        serial_report == parallel_dataset.report.to_json()
        and serial_pickles == _trace_pickles(parallel_dataset)
        and serial_report == lockstep_dataset.report.to_json()
        and serial_pickles == _trace_pickles(lockstep_dataset)
        and serial_report == auto_dataset.report.to_json()
        and serial_pickles == _trace_pickles(auto_dataset)
        and serial_report == warm_dataset.report.to_json()
        and serial_pickles == _trace_pickles(warm_dataset)
        and serial_report == fabric_dataset.report.to_json()
        and serial_pickles == _trace_pickles(fabric_dataset)
    )
    flows = serial_dataset.flow_count
    return {
        "benchmark": "campaign",
        "cpu_count": cpu_count,
        "cc": cc,
        "flows": flows,
        "flow_duration_s": duration,
        "serial": {
            "elapsed_s": round(serial_s, 4),
            "flows_per_s": round(flows / serial_s, 4) if serial_s else 0.0,
        },
        "parallel": {
            "workers": workers,
            "elapsed_s": round(parallel_s, 4),
            "flows_per_s": round(flows / parallel_s, 4) if parallel_s else 0.0,
        },
        "lockstep": {
            "elapsed_s": round(lockstep_s, 4),
            "flows_per_s": round(flows / lockstep_s, 4) if lockstep_s else 0.0,
            "speedup": round(serial_s / lockstep_s, 4) if lockstep_s else 0.0,
        },
        "auto": {
            "elapsed_s": round(auto_s, 4),
            "flows_per_s": round(flows / auto_s, 4) if auto_s else 0.0,
            "decision": auto_decision,
        },
        "cached": {
            "cold_elapsed_s": round(cold_s, 4),
            "warm_elapsed_s": round(warm_s, 4),
            "warm_flows_per_s": round(flows / warm_s, 4) if warm_s else 0.0,
            "warm_hits": warm_dataset.report.cache_hits,
            "warm_speedup": round(serial_s / warm_s, 4) if warm_s else 0.0,
        },
        "fabric": {
            "workers": 2,
            "elapsed_s": round(fabric_s, 4),
            "flows_per_s": round(flows / fabric_s, 4) if fabric_s else 0.0,
            "store_round_trips": fabric_round_trips,
            "speedup": round(serial_s / fabric_s, 4) if fabric_s else 0.0,
        },
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else 0.0,
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flow-scale", type=float, default=0.2,
                        help="campaign flow_scale (default 0.2, ~50 flows)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="per-flow simulated seconds (default 20)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count for the parallel run "
                             "(default min(4, cpu_count))")
    parser.add_argument("--cc", default="reno",
                        help="congestion control for every leg (default "
                             "reno; any registered repro.cc name — the "
                             "identity gate applies to all of them)")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_campaign.json"),
                        help="where to write the JSON artefact")
    args = parser.parse_args(argv)

    result = run_benchmark(args.flow_scale, args.duration, args.workers, args.cc)
    write_artifact(args.output, result)
    append_history(
        {
            "benchmark": "campaign",
            "cc": result["cc"],
            "flows": result["flows"],
            "serial_flows_per_s": result["serial"]["flows_per_s"],
            "parallel_flows_per_s": result["parallel"]["flows_per_s"],
            "lockstep_flows_per_s": result["lockstep"]["flows_per_s"],
            "auto_mode": result["auto"]["decision"].get("mode")
            if result["auto"]["decision"]
            else None,
            "fabric_flows_per_s": result["fabric"]["flows_per_s"],
            "fabric_store_round_trips": result["fabric"]["store_round_trips"],
        },
        args.output,
    )

    print(f"bench: {result['cpu_count']} cpus, {result['flows']} flows "
          f"[{result['cc']}] — "
          f"serial {result['serial']['flows_per_s']:.2f} flows/s, "
          f"{result['parallel']['workers']} workers "
          f"{result['parallel']['flows_per_s']:.2f} flows/s "
          f"(speedup {result['speedup']:.2f}x), "
          f"lockstep {result['lockstep']['flows_per_s']:.2f} flows/s "
          f"({result['lockstep']['speedup']:.2f}x), "
          f"auto {result['auto']['flows_per_s']:.2f} flows/s "
          f"[{result['auto']['decision']['mode']}], "
          f"warm cache {result['cached']['warm_flows_per_s']:.2f} flows/s "
          f"({result['cached']['warm_speedup']:.2f}x), "
          f"fabric {result['fabric']['flows_per_s']:.2f} flows/s "
          f"({result['fabric']['store_round_trips']} store round-trips)")
    if not result["identical"]:
        print("bench: FAIL — backend runs diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
