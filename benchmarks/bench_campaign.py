#!/usr/bin/env python
"""Micro-benchmark: campaign throughput, serial vs parallel backend.

Runs the same miniature paper campaign twice through
:func:`repro.traces.generator.generate_dataset` — once on the
``SerialBackend``, once on a multi-process ``ProcessPoolBackend`` —
and reports flows/sec for each, plus the measured speedup, in
``BENCH_campaign.json``.

The two runs must produce identical traces and an identical campaign
report (that is the executor's determinism contract, and this script
asserts it), so the timings compare pure execution cost.  The speedup
itself is machine-dependent: on a single-core container the process
pool only adds spawn overhead — the artefact records the measured
ratio, it does not assert one.

Usage::

    python benchmarks/bench_campaign.py [--flow-scale 0.2]
        [--duration 20] [--workers 4] [--output BENCH_campaign.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _timed_campaign(flow_scale: float, duration: float, workers: int):
    from repro.traces.generator import generate_dataset

    start = time.perf_counter()
    dataset = generate_dataset(
        seed=2015, duration=duration, flow_scale=flow_scale, workers=workers
    )
    elapsed = time.perf_counter() - start
    return dataset, elapsed


def run_benchmark(
    flow_scale: float = 0.2, duration: float = 20.0, workers: int = 4
) -> dict:
    serial_dataset, serial_s = _timed_campaign(flow_scale, duration, 1)
    parallel_dataset, parallel_s = _timed_campaign(flow_scale, duration, workers)

    # Compare per trace: a batched pickle would differ through memo
    # references shared in-process, not through any value drift.
    identical = serial_dataset.report.to_json() == parallel_dataset.report.to_json() and [
        pickle.dumps(trace) for trace in serial_dataset.traces
    ] == [pickle.dumps(trace) for trace in parallel_dataset.traces]
    flows = serial_dataset.flow_count
    return {
        "benchmark": "campaign",
        "flows": flows,
        "flow_duration_s": duration,
        "serial": {
            "elapsed_s": round(serial_s, 4),
            "flows_per_s": round(flows / serial_s, 4) if serial_s else 0.0,
        },
        "parallel": {
            "workers": workers,
            "elapsed_s": round(parallel_s, 4),
            "flows_per_s": round(flows / parallel_s, 4) if parallel_s else 0.0,
        },
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else 0.0,
        "identical": identical,
        "cpu_count": os.cpu_count(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flow-scale", type=float, default=0.2,
                        help="campaign flow_scale (default 0.2, ~50 flows)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="per-flow simulated seconds (default 20)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process count for the parallel run (default 4)")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_campaign.json"),
                        help="where to write the JSON artefact")
    args = parser.parse_args(argv)

    result = run_benchmark(args.flow_scale, args.duration, args.workers)
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"bench: {result['flows']} flows, "
          f"serial {result['serial']['flows_per_s']:.2f} flows/s, "
          f"{args.workers} workers {result['parallel']['flows_per_s']:.2f} flows/s "
          f"(speedup {result['speedup']:.2f}x on {result['cpu_count']} cpus)")
    print(f"bench: wrote {args.output}")
    if not result["identical"]:
        print("bench: FAIL — parallel run diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
