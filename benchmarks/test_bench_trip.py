"""Benchmark: full-trip throughput profile (extension)."""


def test_bench_trip_profile(run_artefact):
    result = run_artefact("trip_profile", scale=0.3)
    assert result.headline["segments"] >= 3
    assert result.headline["cruise_collapse_factor"] > 1.2
