"""Benchmark: throughput-vs-speed sweep (extension)."""


def test_bench_speed_sweep(run_artefact):
    result = run_artefact("speed_sweep", scale=0.4)
    assert result.headline["driving_retention"] > 0.5
    assert result.headline["collapse_factor_300"] > 1.3
