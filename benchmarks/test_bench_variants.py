"""Benchmark: TCP-variant comparison under HSR conditions (extension)."""


def test_bench_variants(run_artefact):
    result = run_artefact("variants", scale=0.3)
    assert result.headline["sim_newreno_timeouts"] <= result.headline["sim_reno_timeouts"]
    assert result.headline["sim_newreno_pps"] > 0.0
