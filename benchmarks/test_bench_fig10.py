"""Benchmark: regenerate Fig. 10 (model accuracy: enhanced vs Padhye).

The headline artefact: the enhanced model's mean deviation D must sit
well below the Padhye baseline's, overall and per provider (paper:
5.66% vs 21.96%).
"""


def test_bench_fig10(run_artefact):
    result = run_artefact("fig10", scale=0.4)
    assert result.headline["enhanced_mean_D"] < result.headline["padhye_mean_D"]
    assert result.headline["improvement_points"] > 0.05
