"""Benchmark: regenerate Fig. 6 (ACK-loss CDFs, stationary vs HSR)."""


def test_bench_fig6(run_artefact):
    result = run_artefact("fig6", scale=0.25)
    assert result.headline["elevation_factor"] > 3.0
