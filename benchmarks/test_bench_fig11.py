"""Benchmark: regenerate Fig. 11 (one surviving ACK prevents the timeout)."""


def test_bench_fig11(run_artefact):
    result = run_artefact("fig11")
    assert result.headline["timeouts_all_lost"] >= 1
    assert result.headline["timeouts_ack_a_survives"] == 0
