#!/usr/bin/env python
"""Micro-benchmark: the simulator core's event and packet hot paths.

Two measurements, written to ``BENCH_engine.json``:

* **events/sec** — a pure engine loop: the heap is pre-filled with
  payload events (the same ``schedule_call`` path every packet
  delivery uses) and drained, measuring raw dispatch throughput with
  no transport logic attached.
* **packets/sec** — one full HSR flow (:func:`repro.simulator.connection.run_flow`
  over the 300 km/h scenario's channels), measuring wire transmissions
  (data + ACK) per wall-clock second, plus the flow's engine
  events/sec for context.

The committed artefact is the regression baseline: ``scripts/smoke.py``
re-measures and fails when events/sec drops more than 30% below it.

Usage::

    python benchmarks/bench_engine.py [--events 200000] [--flow-duration 30]
        [--repeats 3] [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def bench_event_loop(events: int, repeats: int) -> dict:
    """Drain a pre-filled heap of payload events; best of ``repeats``."""
    from repro.simulator.engine import Simulator

    def sink(payload, time):
        pass

    best = float("inf")
    for _ in range(repeats):
        sim = Simulator()
        for index in range(events):
            sim.schedule_call(index * 1e-6, sink, index)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {
        "events": events,
        "elapsed_s": round(best, 4),
        "events_per_s": round(events / best, 1),
    }


def bench_flow(duration: float, repeats: int) -> dict:
    """One HSR flow per repeat; best wall-clock wins."""
    from repro.hsr.scenario import hsr_scenario
    from repro.simulator.connection import run_flow
    from repro.simulator.engine import Simulator

    scenario = hsr_scenario()
    best = float("inf")
    packets = events = 0
    for _ in range(repeats):
        built = scenario.build(duration=duration, seed=20150402)
        sim = Simulator()
        start = time.perf_counter()
        result = run_flow(
            built.config,
            built.data_loss,
            built.ack_loss,
            seed=20150402,
            simulator=sim,
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            packets = result.log.data_sent + result.log.acks_sent
            events = sim.events_processed
    return {
        "scenario": "hsr/300kmh",
        "sim_duration_s": duration,
        "elapsed_s": round(best, 4),
        "packets": packets,
        "packets_per_s": round(packets / best, 1),
        "engine_events": events,
        "engine_events_per_s": round(events / best, 1),
    }


def run_benchmark(events: int, flow_duration: float, repeats: int) -> dict:
    return {
        "benchmark": "engine",
        "cpu_count": os.cpu_count(),
        "event_loop": bench_event_loop(events, repeats),
        "hsr_flow": bench_flow(flow_duration, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200000,
                        help="payload events in the pure engine drain (default 200000)")
    parser.add_argument("--flow-duration", type=float, default=30.0,
                        help="simulated seconds for the HSR flow (default 30)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per measurement, best wins (default 3)")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_engine.json"),
                        help="where to write the JSON artefact")
    args = parser.parse_args(argv)

    result = run_benchmark(args.events, args.flow_duration, args.repeats)
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    loop = result["event_loop"]
    flow = result["hsr_flow"]
    print(f"bench: engine drain {loop['events_per_s']:,.0f} events/s "
          f"({loop['events']} events in {loop['elapsed_s']}s)")
    print(f"bench: HSR flow {flow['packets_per_s']:,.0f} packets/s, "
          f"{flow['engine_events_per_s']:,.0f} events/s "
          f"({flow['packets']} packets in {flow['elapsed_s']}s)")
    print(f"bench: wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
