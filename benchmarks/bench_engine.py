#!/usr/bin/env python
"""Micro-benchmark: the simulator core's event and packet hot paths.

Three measurements, written to ``BENCH_engine.json``:

* **events/sec** — a pure engine loop: the heap is pre-filled with
  payload events (the same ``schedule_call`` path every packet
  delivery uses) and drained, measuring raw dispatch throughput with
  no transport logic attached.
* **packets/sec** — one full HSR flow (:func:`repro.simulator.connection.run_flow`
  over the 300 km/h scenario's channels), measuring wire transmissions
  (data + ACK) per wall-clock second, plus the flow's engine
  events/sec for context.
* **telemetry overhead** — the same HSR flow with telemetry off, with
  a :class:`~repro.telemetry.NullTelemetry` sink, and with a live
  :class:`~repro.telemetry.CountingTelemetry` sink.  ``NullTelemetry``
  is normalised away at construction, so its leg exercises the exact
  uninstrumented code path; the benchmark *fails* (exit 1) if it
  measures more than 5% slower than telemetry-off, because that would
  mean the zero-overhead-when-off contract broke.  The counting leg
  has its own 15% budget: live counters ride the batched per-burst
  hooks and must stay cheap enough to leave on for campaigns.

The committed artefact is the regression baseline: ``scripts/smoke.py``
re-measures and fails when events/sec drops more than 30% below it.
Every run also appends a timestamped one-line summary to
``BENCH_history.jsonl`` next to the artefact, so throughput trends
survive artefact rewrites.

Usage::

    python benchmarks/bench_engine.py [--events 200000] [--flow-duration 30]
        [--repeats 3] [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from _common import append_history, overhead_pct, write_artifact  # noqa: E402

#: NullTelemetry must cost nothing: it resolves to the uninstrumented
#: engine, so anything beyond measurement noise is a broken contract.
NULL_OVERHEAD_LIMIT_PCT = 5.0

#: CountingTelemetry is the always-on campaign sink; batched hook
#: delivery (one call per burst instead of one per packet) is expected
#: to keep live counters within this budget of the uninstrumented flow.
COUNTING_OVERHEAD_LIMIT_PCT = 15.0


def bench_event_loop(events: int, repeats: int) -> dict:
    """Drain a pre-filled heap of payload events; best of ``repeats``."""
    from repro.simulator.engine import Simulator

    def sink(payload, time):
        pass

    best = float("inf")
    for _ in range(repeats):
        sim = Simulator()
        for index in range(events):
            sim.schedule_call(index * 1e-6, sink, index)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {
        "events": events,
        "elapsed_s": round(best, 4),
        "events_per_s": round(events / best, 1),
    }


def _timed_flow(duration: float, seed: int = 20150402, telemetry=None):
    """One freshly-built HSR flow; returns (elapsed_s, result, simulator)."""
    from repro.hsr.scenario import hsr_scenario
    from repro.simulator.connection import run_flow
    from repro.simulator.engine import Simulator
    from repro.telemetry import active

    built = hsr_scenario().build(duration=duration, seed=seed)
    sim = Simulator(telemetry=active(telemetry))
    start = time.perf_counter()
    result = run_flow(
        built.config,
        built.data_loss,
        built.ack_loss,
        seed=seed,
        simulator=sim,
        telemetry=telemetry,
    )
    elapsed = time.perf_counter() - start
    return elapsed, result, sim


def bench_flow(duration: float, repeats: int) -> dict:
    """One HSR flow per repeat; best wall-clock wins."""
    best = float("inf")
    packets = events = 0
    for _ in range(repeats):
        elapsed, result, sim = _timed_flow(duration)
        if elapsed < best:
            best = elapsed
            packets = result.log.data_sent + result.log.acks_sent
            events = sim.events_processed
    return {
        "scenario": "hsr/300kmh",
        "sim_duration_s": duration,
        "elapsed_s": round(best, 4),
        "packets": packets,
        "packets_per_s": round(packets / best, 1),
        "engine_events": events,
        "engine_events_per_s": round(events / best, 1),
    }


def bench_telemetry_overhead(duration: float, repeats: int) -> dict:
    """HSR flow with telemetry off vs NullTelemetry vs CountingTelemetry.

    Best-of-``repeats`` per leg, legs interleaved round-robin so a
    transient host stall penalises all three alike rather than one.
    """
    from repro.telemetry import CountingTelemetry, NullTelemetry

    legs = {"off": None, "null": NullTelemetry, "counting": CountingTelemetry}
    best = {name: float("inf") for name in legs}
    for _ in range(repeats):
        for name, factory in legs.items():
            sink = factory() if factory is not None else None
            elapsed, _, _ = _timed_flow(duration, telemetry=sink)
            best[name] = min(best[name], elapsed)
    return {
        "scenario": "hsr/300kmh",
        "sim_duration_s": duration,
        "off_s": round(best["off"], 4),
        "null_s": round(best["null"], 4),
        "counting_s": round(best["counting"], 4),
        "null_overhead_pct": overhead_pct(best["off"], best["null"]),
        "counting_overhead_pct": overhead_pct(best["off"], best["counting"]),
        "null_limit_pct": NULL_OVERHEAD_LIMIT_PCT,
        "counting_limit_pct": COUNTING_OVERHEAD_LIMIT_PCT,
    }


def run_benchmark(events: int, flow_duration: float, repeats: int) -> dict:
    return {
        "benchmark": "engine",
        "cpu_count": os.cpu_count(),
        "event_loop": bench_event_loop(events, repeats),
        "hsr_flow": bench_flow(flow_duration, repeats),
        "telemetry": bench_telemetry_overhead(flow_duration, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200000,
                        help="payload events in the pure engine drain (default 200000)")
    parser.add_argument("--flow-duration", type=float, default=30.0,
                        help="simulated seconds for the HSR flow (default 30)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per measurement, best wins (default 3)")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_engine.json"),
                        help="where to write the JSON artefact")
    args = parser.parse_args(argv)

    result = run_benchmark(args.events, args.flow_duration, args.repeats)
    write_artifact(args.output, result)

    loop = result["event_loop"]
    flow = result["hsr_flow"]
    telemetry = result["telemetry"]
    append_history(
        {
            "benchmark": "engine",
            "events_per_s": loop["events_per_s"],
            "packets_per_s": flow["packets_per_s"],
            "null_overhead_pct": telemetry["null_overhead_pct"],
            "counting_overhead_pct": telemetry["counting_overhead_pct"],
        },
        args.output,
    )
    print(f"bench: engine drain {loop['events_per_s']:,.0f} events/s "
          f"({loop['events']} events in {loop['elapsed_s']}s)")
    print(f"bench: HSR flow {flow['packets_per_s']:,.0f} packets/s, "
          f"{flow['engine_events_per_s']:,.0f} events/s "
          f"({flow['packets']} packets in {flow['elapsed_s']}s)")
    print(f"bench: telemetry overhead — null {telemetry['null_overhead_pct']:+.2f}%, "
          f"counting {telemetry['counting_overhead_pct']:+.2f}% "
          f"(off {telemetry['off_s']}s)")
    failed = False
    if telemetry["null_overhead_pct"] > NULL_OVERHEAD_LIMIT_PCT:
        print(f"bench: FAIL — NullTelemetry overhead "
              f"{telemetry['null_overhead_pct']:.2f}% exceeds the "
              f"{NULL_OVERHEAD_LIMIT_PCT:.0f}% zero-overhead budget",
              file=sys.stderr)
        failed = True
    if telemetry["counting_overhead_pct"] > COUNTING_OVERHEAD_LIMIT_PCT:
        print(f"bench: FAIL — CountingTelemetry overhead "
              f"{telemetry['counting_overhead_pct']:.2f}% exceeds the "
              f"{COUNTING_OVERHEAD_LIMIT_PCT:.0f}% live-counter budget",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
