"""Benchmark: regenerate Fig. 2 (timeout-recovery retransmission detail)."""


def test_bench_fig2(run_artefact):
    result = run_artefact("fig2", scale=1.0)
    assert result.rows, result.notes
    assert result.headline["timeouts_in_sequence"] >= 1
    multiples = [row["timer_multiple"] for row in result.rows]
    assert multiples == sorted(multiples)  # exponential backoff
