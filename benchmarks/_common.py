"""Shared plumbing for the ``bench_*`` scripts.

Every benchmark writes one JSON artefact at the repo root
(``BENCH_engine.json``, ``BENCH_campaign.json``, …) that the smoke
gate in ``scripts/smoke.py`` reads back as its regression baseline.
The artefacts must stay byte-stable in format — ``indent=2`` plus a
trailing newline — so committed diffs show value drift, never
formatting churn.  This module is the single place that format is
defined.
"""

from __future__ import annotations

import json
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_artifact(path: str, result: dict) -> None:
    """Write a benchmark artefact in the canonical committed format."""
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"bench: wrote {path}")


def append_history(record: dict, output_path: str) -> None:
    """Append a timestamped run record to ``BENCH_history.jsonl``.

    The history file lives next to the written artefact and is
    append-only JSON-lines: one line per benchmark run, stamped with
    UTC wall-clock time, so throughput trends across commits and hosts
    can be plotted without digging through git history.  Unlike the
    artefacts it is never rewritten, only extended.
    """
    import time

    entry = dict(record)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    directory = os.path.dirname(os.path.abspath(output_path)) or REPO_ROOT
    path = os.path.join(directory, "BENCH_history.jsonl")
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def overhead_pct(baseline_s: float, measured_s: float) -> float:
    """Relative slowdown of ``measured_s`` over ``baseline_s``, in percent.

    Negative values (measurement noise making the instrumented leg
    faster) are reported as-is rather than clamped: the artefact should
    record what was observed.
    """
    if baseline_s <= 0.0:
        return 0.0
    return round((measured_s - baseline_s) / baseline_s * 100.0, 2)
