"""Benchmark: regenerate Fig. 5 (ACK burst loss -> spurious timeout)."""


def test_bench_fig5(run_artefact):
    result = run_artefact("fig5")
    assert result.headline["case_a_timeouts"] >= 1
    assert result.headline["case_a_data_lost"] == 0
    assert result.headline["case_b_timeouts"] == 0
