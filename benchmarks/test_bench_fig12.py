"""Benchmark: regenerate Fig. 12 (MPTCP vs TCP per provider).

Paper gains: +42.15% (Mobile), +95.64% (Unicom), +283.33% (Telecom);
shape target is positive gains ordered Telecom > Unicom > Mobile.
"""


def test_bench_fig12(run_artefact):
    result = run_artefact("fig12", scale=0.5)
    assert result.headline["mobile_gain_pct"] > 0.0
    assert (
        result.headline["telecom_gain_pct"]
        > result.headline["unicom_gain_pct"]
        > result.headline["mobile_gain_pct"]
    )
