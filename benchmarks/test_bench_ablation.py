"""Benchmark: Eq.-(21) ablation (paper-literal vs consistent math)."""


def test_bench_eq21_ablation(run_artefact):
    result = run_artefact("eq21_ablation")
    assert result.headline["mean_literal_gap_b2"] < 0.1
    assert result.headline["mean_literal_gap_b1"] > 0.3
