"""Benchmark: regenerate Fig. 3 (lifetime vs in-recovery loss CDFs)."""


def test_bench_fig3(run_artefact):
    result = run_artefact("fig3", scale=0.25)
    assert result.headline["mean_recovery_loss"] > 3.0 * result.headline["mean_lifetime_loss"]
