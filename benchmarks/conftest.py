"""Shared benchmark helpers.

Each benchmark regenerates one paper artefact via the experiment
registry, asserts the paper's qualitative shape, and prints the
regenerated rows (run with ``-s`` to see them).  Heavy campaign
experiments run once per benchmark (pedantic mode) at a reduced scale.
"""

import pytest

from repro.experiments.registry import format_result, run_experiment


@pytest.fixture
def run_artefact(benchmark):
    """Benchmark one experiment once and return its result."""

    def runner(experiment_id, scale=0.25, seed=2015):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        print()
        print(format_result(result))
        return result

    return runner
