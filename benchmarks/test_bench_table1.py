"""Benchmark: regenerate Table I (dataset campaign)."""


def test_bench_table1(run_artefact):
    result = run_artefact("table1", scale=0.25)
    assert len(result.rows) == 4
    assert result.headline["flows"] >= 4
    assert result.headline["total_gb"] > 0.0
