"""Benchmark: regenerate Fig. 4 (ACK loss vs timeout probability scatter)."""


def test_bench_fig4(run_artefact):
    result = run_artefact("fig4", scale=0.25)
    assert result.headline["pearson_correlation"] > 0.0
    assert result.headline["envelope_slope"] > 0.0
