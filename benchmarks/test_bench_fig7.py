"""Benchmark: regenerate Fig. 7 (CA-phase window evolution, two endings)."""


def test_bench_fig7(run_artefact):
    result = run_artefact("fig7")
    assert result.headline["case_b_data_lost"] == 0
    assert result.headline["case_b_timeouts"] >= 1
