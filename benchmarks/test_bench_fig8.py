"""Benchmark: regenerate Fig. 8 (CA + timeout-sequence cycles)."""


def test_bench_fig8(run_artefact):
    result = run_artefact("fig8", scale=0.5)
    assert result.headline["cycles"] >= 2
    assert 0.0 < result.headline["empirical_Q_1_over_n"] <= 1.0
