"""Benchmark: Section V-A delayed-ACK sweep (extension)."""


def test_bench_delack(run_artefact):
    result = run_artefact("delack")
    assert result.headline["adaptive_b_stationary"] > result.headline["adaptive_b_hsr_harsh"]
