"""Benchmark: regenerate Fig. 1 (arrival-latency series with timeouts)."""


def test_bench_fig1(run_artefact):
    result = run_artefact("fig1", scale=0.5)
    assert result.headline["timeouts"] >= 2
    assert 15.0 <= result.headline["mean_data_latency_ms"] <= 80.0
    assert result.headline["lost_data"] > 0
