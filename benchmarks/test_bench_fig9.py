"""Benchmark: regenerate Fig. 9 (window-limited evolution)."""


def test_bench_fig9(run_artefact):
    result = run_artefact("fig9", scale=0.4)
    assert result.headline["fraction_of_ca_time_at_wmax"] > 0.3
