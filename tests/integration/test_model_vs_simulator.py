"""Integration: the closed-form models against simulator ground truth.

The decisive cross-validation of the reproduction — the simulator was
built independently of the model code, so agreement here is evidence
both are right.
"""

import pytest

from repro.core.enhanced import ModelOptions, enhanced_throughput, padhye_paper_form
from repro.core.padhye import padhye_full_throughput
from repro.core.params import LinkParams
from repro.simulator import ConnectionConfig, NoLoss, RoundCorrelatedLoss, run_flow
from repro.util.rng import RngStream


def padhye_world_flow(trigger_rate, seed, wmax=64.0, duration=300.0):
    """A flow in the exact world the models assume: round-correlated
    data loss, no ACK loss."""
    config = ConnectionConfig(
        forward_delay=0.03, reverse_delay=0.03, wmax=wmax, b=2,
        duration=duration, min_rto=0.3,
    )
    rng = RngStream(seed, "integration")
    result = run_flow(
        config,
        data_loss=RoundCorrelatedLoss(
            rng.spawn("data"), trigger_rate=trigger_rate,
            round_duration=config.base_rtt,
        ),
        ack_loss=NoLoss(),
        seed=seed,
    )
    return result


class TestPadhyeRegimeAgreement:
    """In the Padhye world the models should track the simulator within
    the tolerance typical of closed-form TCP models (tens of percent)."""

    @pytest.mark.parametrize("trigger_rate", [0.001, 0.003, 0.01])
    def test_enhanced_model_tracks_simulation(self, trigger_rate):
        result = padhye_world_flow(trigger_rate, seed=17)
        params = LinkParams(
            rtt=result.config.base_rtt * 1.4,  # + delayed-ACK waiting
            timeout=0.35,
            data_loss=result.log.data_sent and (
                # loss-event rate, the models' p
                sum(
                    1
                    for earlier, later in zip(
                        result.log.data_packets, result.log.data_packets[1:]
                    )
                    if later.lost and not earlier.lost
                )
                / result.log.data_sent
            ),
            ack_loss=0.0,
            recovery_loss=trigger_rate,
            wmax=result.config.wmax,
            b=2,
        )
        predicted = enhanced_throughput(params).throughput
        simulated = result.throughput
        assert predicted == pytest.approx(simulated, rel=0.5)

    def test_ordering_preserved_across_loss_rates(self):
        throughputs = [
            padhye_world_flow(rate, seed=23).throughput
            for rate in (0.001, 0.005, 0.02)
        ]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_padhye_forms_agree_with_each_other(self):
        # The paper-form baseline and the original Padhye closed form
        # stay close over the relevant grid (cross-check of both
        # implementations).
        for p in (0.001, 0.005, 0.02, 0.05):
            params = LinkParams(
                rtt=0.08, timeout=0.5, data_loss=p, ack_loss=0.0,
                recovery_loss=p, wmax=200.0, b=2,
            )
            ours = padhye_paper_form(params).throughput
            original = padhye_full_throughput(params)
            assert ours == pytest.approx(original, rel=0.2)


class TestEnhancedTermsMatchSimulatedDegradation:
    def test_ack_burst_degradation_direction(self):
        """Adding ACK burst loss to the simulation must degrade
        throughput, and the model with measured P_a must move the same
        way."""
        from repro.simulator import GilbertElliottLoss

        config = ConnectionConfig(duration=240.0, wmax=64.0, min_rto=0.4)
        rng = RngStream(31, "burst")
        clean = run_flow(
            config,
            RoundCorrelatedLoss(rng.spawn("d1"), 0.001, config.base_rtt),
            NoLoss(),
            seed=31,
        )
        bursty = run_flow(
            config,
            RoundCorrelatedLoss(rng.spawn("d2"), 0.001, config.base_rtt),
            GilbertElliottLoss(rng.spawn("a"), mean_good_duration=8.0,
                               mean_bad_duration=0.8),
            seed=31,
        )
        assert bursty.throughput < clean.throughput

        params = LinkParams(
            rtt=0.085, timeout=0.45, data_loss=0.001, ack_loss=0.0,
            recovery_loss=0.1, wmax=64.0, b=2,
        )
        model_clean = enhanced_throughput(params).throughput
        model_bursty = enhanced_throughput(
            params, ModelOptions(ack_burst_override=0.05)
        ).throughput
        assert model_bursty < model_clean

        sim_drop = 1.0 - bursty.throughput / clean.throughput
        model_drop = 1.0 - model_bursty / model_clean
        # Both see a substantial degradation (same direction, same
        # order of magnitude).
        assert sim_drop > 0.1
        assert model_drop > 0.1
