"""Integration: the full scenario → simulator → traces → model pipeline."""

import pytest

from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.mptcp_model import mptcp_gain
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario, stationary_scenario
from repro.exec import FlowSpec
from repro.simulator import run_backup, run_flow
from repro.traces import (
    FlowMetadata,
    capture_flow,
    classify_timeouts,
    dataset_records,
    generate_dataset,
    measured_model_inputs,
    records_from_json,
    records_to_json,
)


def run_traced(scenario, duration, seed):
    built = scenario.build(duration=duration, seed=seed)
    result = run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)
    metadata = FlowMetadata(
        flow_id=f"{scenario.name}/{seed}", provider=scenario.provider.name,
        technology=scenario.provider.technology,
        scenario="hsr" if scenario.mobility.peak_speed else "stationary",
        capture_month="2015-10", phone_model="test", duration=duration, seed=seed,
    )
    return capture_flow(result, metadata)


class TestEndToEnd:
    def test_scenario_to_model_roundtrip(self):
        trace = run_traced(hsr_scenario(), duration=120.0, seed=3)
        measured = measured_model_inputs(trace)
        assert measured is not None
        prediction = enhanced_throughput(
            measured.params, ModelOptions(ack_burst_override=measured.ack_burst_probability)
        )
        # The model's prediction for the measured parameters lands
        # within the same order of magnitude as the simulated truth.
        assert 0.2 * measured.throughput <= prediction.throughput <= 5.0 * measured.throughput

    def test_spurious_classification_consistent_with_receiver(self):
        # The trace-layer classification (original copy arrived before
        # the timeout) must agree with the receiver's duplicate count:
        # every spurious timeout forces a duplicate payload.
        trace = run_traced(hsr_scenario(), duration=120.0, seed=5)
        spurious = sum(1 for c in classify_timeouts(trace) if c.spurious)
        assert trace.duplicate_payloads >= spurious

    def test_dataset_serialisation_roundtrip(self):
        dataset = generate_dataset(seed=5, duration=30.0, flow_scale=0.02)
        records = dataset_records(dataset.traces)
        assert records_from_json(records_to_json(records)) == records

    def test_hsr_worse_than_stationary_same_provider(self):
        hsr = run_traced(hsr_scenario(CHINA_MOBILE), duration=120.0, seed=7)
        stationary = run_traced(stationary_scenario(CHINA_MOBILE), duration=120.0, seed=7)
        assert hsr.throughput < stationary.throughput
        assert hsr.ack_loss_rate > stationary.ack_loss_rate


class TestMptcpConsistency:
    def test_backup_mode_sim_and_model_agree_in_direction(self):
        # Simulated backup mode on a harsh channel vs plain flow.
        scenario = hsr_scenario(CHINA_TELECOM)
        built = scenario.build(duration=90.0, seed=11)
        plain = run_flow(built.config, built.data_loss, built.ack_loss, seed=11)

        rebuilt = scenario.build(duration=90.0, seed=11)
        clean_backup = hsr_scenario(CHINA_MOBILE).build(duration=90.0, seed=12)
        backed = run_backup(FlowSpec(
            config=rebuilt.config, data_loss=rebuilt.data_loss,
            ack_loss=rebuilt.ack_loss,
            redundant_data_loss=clean_backup.data_loss, seed=11,
        ))
        assert backed.throughput >= plain.throughput * 0.95

        # The analytic counterpart: backup mode gain is positive.
        from repro.core.params import LinkParams

        params = LinkParams(rtt=0.16, timeout=1.0, data_loss=0.01,
                            ack_loss=0.008, recovery_loss=0.4, wmax=64.0)
        assert mptcp_gain(params, mode="backup") > 0.0

    def test_duplex_gain_exceeds_backup_gain_analytically(self):
        from repro.core.params import LinkParams

        params = LinkParams(rtt=0.16, timeout=1.0, data_loss=0.01,
                            ack_loss=0.008, recovery_loss=0.4, wmax=64.0)
        assert mptcp_gain(params, mode="duplex") > mptcp_gain(params, mode="backup")
