"""Golden-trace determinism: a fixed-seed flow is byte-identical forever.

The engine/RNG hot-path optimizations (tuple heap entries, payload
scheduling, block-buffered loss draws) all promise the *identical*
event and draw sequence as the original scalar code.  This test pins
that promise: a fixed-seed HSR flow must hash to the digest recorded
below.  If an optimization legitimately has to change the sequence,
re-pin the digest **and** re-run the model-vs-trace calibration checks
(``scripts/calibrate.py``) in the same change — a silent re-pin is
exactly the regression this test exists to catch.
"""

import hashlib
from dataclasses import astuple

from repro.exec import FlowSpec, simulate_spec
from repro.hsr.scenario import hsr_scenario
from repro.simulator.connection import run_flow
from repro.telemetry import CountingTelemetry, NullTelemetry

GOLDEN_SEED = 20150402
GOLDEN_DURATION = 12.0

#: sha256 over the canonical rendering of every FlowLog record of the
#: fixed-seed flow below.  Pinned against the optimized engine, whose
#: draw/event sequence is identical to the original scalar code.
GOLDEN_DIGEST = "b0ea4abc541f73061b16add3cd79ca194ab5b0b278d0e25f5f35ee659cd7b283"


def _flow_log(seed: int = GOLDEN_SEED, duration: float = GOLDEN_DURATION, **kwargs):
    built = hsr_scenario().build(duration=duration, seed=seed)
    return run_flow(
        built.config, built.data_loss, built.ack_loss, seed=seed, **kwargs
    ).log


def _digest(log) -> str:
    hasher = hashlib.sha256()
    for records in (log.data_packets, log.acks, log.timeouts, log.recovery_phases):
        for record in records:
            hasher.update(repr(astuple(record)).encode())
    for sample in log.cwnd_samples:
        hasher.update(repr(astuple(sample)).encode())
    hasher.update(
        repr((log.delivered_payloads, log.duplicate_payloads)).encode()
    )
    return hasher.hexdigest()


class TestGoldenTrace:
    def test_fixed_seed_flow_matches_pinned_digest(self):
        assert _digest(_flow_log()) == GOLDEN_DIGEST

    def test_rerun_is_byte_identical(self):
        assert _digest(_flow_log()) == _digest(_flow_log())

    def test_spec_route_agrees_with_direct_run_flow(self):
        # The executor pipeline (FlowSpec → simulate_spec) must drive
        # the exact same simulation as calling run_flow by hand.
        spec = FlowSpec(
            scenario=hsr_scenario(),
            duration=GOLDEN_DURATION,
            seed=GOLDEN_SEED,
            flow_id="golden",
        )
        result, _ = simulate_spec(spec)
        assert _digest(result.log) == GOLDEN_DIGEST

    def test_null_telemetry_matches_pinned_digest(self):
        # NullTelemetry is normalised away: the uninstrumented engine
        # runs, so the digest holds trivially.
        assert _digest(_flow_log(telemetry=NullTelemetry())) == GOLDEN_DIGEST

    def test_counting_telemetry_matches_pinned_digest(self):
        # Instrumentation observes and must never perturb the event or
        # RNG sequence: the digest holds even with counters ON.
        assert _digest(_flow_log(telemetry=CountingTelemetry())) == GOLDEN_DIGEST
