"""Tests for the whole-trip simulation."""

import pytest

from repro.hsr.mobility import MobilityProfile, stationary_profile
from repro.hsr.provider import CHINA_UNICOM
from repro.hsr.trip import simulate_trip
from repro.util.errors import ConfigurationError
from repro.util.units import kmh_to_mps


@pytest.fixture(scope="module")
def short_trip():
    # A shortened line so the whole journey fits a quick test.
    profile = MobilityProfile(
        name="short", peak_speed=kmh_to_mps(300.0), route_length=40_000.0
    )
    return simulate_trip(profile=profile, segment_duration=90.0, seed=5)


class TestTripStructure:
    def test_segments_cover_trip(self, short_trip):
        assert len(short_trip) >= 3
        for earlier, later in zip(short_trip, short_trip[1:]):
            assert later.start_time == pytest.approx(earlier.end_time)

    def test_positions_monotone(self, short_trip):
        positions = [segment.position_km for segment in short_trip]
        assert positions == sorted(positions)

    def test_speed_profile_ramps(self, short_trip):
        # First segment starts at rest; some middle segment cruises.
        assert short_trip[0].speed_kmh == pytest.approx(0.0)
        assert max(segment.speed_kmh for segment in short_trip) > 250.0

    def test_throughput_positive_everywhere(self, short_trip):
        assert all(segment.throughput > 0.0 for segment in short_trip)


class TestTripBehaviour:
    def test_cruise_worse_than_station_segments(self, short_trip):
        slow = [s for s in short_trip if s.speed_kmh < 100.0]
        fast = [s for s in short_trip if s.speed_kmh > 250.0]
        assert slow and fast
        slow_tp = sum(s.throughput for s in slow) / len(slow)
        fast_tp = sum(s.throughput for s in fast) / len(fast)
        assert fast_tp < slow_tp

    def test_cruise_has_more_timeouts(self, short_trip):
        slow = [s for s in short_trip if s.speed_kmh < 100.0]
        fast = [s for s in short_trip if s.speed_kmh > 250.0]
        assert max(s.timeouts for s in fast) >= max(s.timeouts for s in slow)


class TestValidation:
    def test_max_segments_respected(self):
        segments = simulate_trip(segment_duration=60.0, seed=1, max_segments=2)
        assert len(segments) == 2

    def test_provider_selectable(self):
        segments = simulate_trip(
            provider=CHINA_UNICOM, segment_duration=120.0, seed=1, max_segments=1
        )
        assert segments[0].throughput > 0.0

    def test_stationary_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_trip(profile=stationary_profile())

    def test_bad_segment_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_trip(segment_duration=0.0)
