"""Tests for scenario composition and its calibrated behaviour."""

import statistics

import pytest

from repro.hsr.provider import CHINA_MOBILE, CHINA_TELECOM
from repro.hsr.scenario import (
    driving_scenario,
    hsr_scenario,
    stationary_scenario,
)
from repro.simulator import run_flow
from repro.util.errors import ConfigurationError


def run_scenario(scenario, duration=120.0, seed=11):
    built = scenario.build(duration=duration, seed=seed)
    return run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)


class TestBuild:
    def test_hsr_has_outages(self):
        built = hsr_scenario().build(duration=120.0, seed=1)
        assert len(built.outages) >= 2

    def test_stationary_has_no_outages(self):
        built = stationary_scenario().build(duration=120.0, seed=1)
        assert built.outages == ()

    def test_outages_in_flow_local_time(self):
        built = hsr_scenario().build(duration=120.0, seed=1)
        for start, end in built.outages:
            assert 0.0 <= start < end <= 121.0 + 15.0  # last window may spill over

    def test_config_carries_provider_rtt(self):
        built = hsr_scenario(CHINA_TELECOM).build(duration=10.0, seed=1)
        assert built.config.base_rtt == pytest.approx(CHINA_TELECOM.base_rtt)

    def test_rto_floor_clears_delack_race(self):
        built = stationary_scenario(CHINA_TELECOM).build(duration=10.0, seed=1)
        assert built.config.min_rto > built.config.base_rtt + built.config.delack_timeout

    def test_wmax_override(self):
        built = hsr_scenario().build(duration=10.0, seed=1, wmax=16.0)
        assert built.config.wmax == 16.0

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            hsr_scenario().build(duration=0.0, seed=1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_duration(self, bad):
        with pytest.raises(ConfigurationError, match="duration"):
            hsr_scenario().build(duration=bad, seed=1)

    @pytest.mark.parametrize("bad", [-1.0, -0.001, float("nan"), float("inf")])
    def test_rejects_bad_flow_start_offset(self, bad):
        import dataclasses

        scenario = dataclasses.replace(hsr_scenario(), flow_start_offset=bad)
        with pytest.raises(ConfigurationError, match="flow_start_offset"):
            scenario.build(duration=30.0, seed=1)

    def test_deterministic_given_seed(self):
        a = hsr_scenario().build(duration=60.0, seed=5)
        b = hsr_scenario().build(duration=60.0, seed=5)
        assert a.outages == b.outages

    def test_cruise_speed(self):
        assert hsr_scenario().cruise_speed() == pytest.approx(83.333, rel=1e-3)
        assert stationary_scenario().cruise_speed() == 0.0
        assert driving_scenario().cruise_speed() > 0.0


class TestCalibratedBehaviour:
    """The headline shape of the paper's Section III must hold."""

    def test_hsr_throughput_below_stationary(self):
        hsr = run_scenario(hsr_scenario())
        stationary = run_scenario(stationary_scenario())
        assert hsr.throughput < 0.7 * stationary.throughput

    def test_hsr_has_many_timeouts_stationary_few(self):
        # Stationary flows do time out occasionally (round-correlated
        # loss defeats fast retransmit with probability ~3/W, as in the
        # Padhye world), but far less often than HSR flows.
        hsr = run_scenario(hsr_scenario())
        stationary = run_scenario(stationary_scenario())
        assert len(hsr.log.timeouts) >= 5
        assert len(stationary.log.timeouts) < 0.6 * len(hsr.log.timeouts)

    def test_hsr_ack_loss_much_higher(self):
        hsr = run_scenario(hsr_scenario())
        stationary = run_scenario(stationary_scenario())
        assert hsr.ack_loss_rate > 3.0 * max(stationary.ack_loss_rate, 1e-4)

    def test_hsr_loss_rates_in_paper_ballpark(self):
        result = run_scenario(hsr_scenario(), duration=180.0)
        assert 0.002 <= result.data_loss_rate <= 0.03
        assert 0.002 <= result.ack_loss_rate <= 0.04

    def test_hsr_recovery_much_longer_than_stationary(self):
        hsr_durations = []
        for seed in (3, 5, 7):
            result = run_scenario(hsr_scenario(), duration=180.0, seed=seed)
            hsr_durations += [
                phase.duration for phase in result.log.completed_recovery_phases()
            ]
        assert hsr_durations
        # Paper: 5.05 s HSR vs 0.65 s stationary.  Require a clearly
        # elevated mean; the stationary side has (almost) no phases at
        # all, which is the stronger statement tested above.
        assert statistics.mean(hsr_durations) > 0.5

    def test_hsr_spurious_timeouts_present(self):
        result = run_scenario(hsr_scenario(), duration=180.0)
        assert result.log.duplicate_payloads >= 3

    def test_recovery_retransmission_loss_in_recommended_range(self):
        # The paper recommends q in [0.25, 0.4]; allow a generous band.
        lost = retx = 0
        for seed in (3, 5, 7, 9):
            result = run_scenario(hsr_scenario(), duration=180.0, seed=seed)
            for phase in result.log.completed_recovery_phases():
                retx += phase.retransmissions
                lost += phase.retransmissions_lost
        assert retx > 0
        assert 0.1 <= lost / retx <= 0.5

    def test_driving_between_stationary_and_hsr(self):
        stationary = run_scenario(stationary_scenario())
        driving = run_scenario(driving_scenario())
        hsr = run_scenario(hsr_scenario())
        assert hsr.throughput < driving.throughput
        assert driving.throughput < stationary.throughput * 1.05

    def test_telecom_worst_throughput(self):
        mobile = run_scenario(hsr_scenario(CHINA_MOBILE))
        telecom = run_scenario(hsr_scenario(CHINA_TELECOM))
        assert telecom.throughput < mobile.throughput
