"""Unit tests for train mobility profiles."""

import pytest

from repro.hsr.mobility import (
    MobilityProfile,
    btr_profile,
    driving_profile,
    stationary_profile,
)
from repro.util.errors import ConfigurationError
from repro.util.units import kmh_to_mps, mps_to_kmh


class TestBtrProfile:
    def test_matches_paper_geometry(self):
        profile = btr_profile()
        assert profile.route_length == pytest.approx(120_000.0)
        assert mps_to_kmh(profile.peak_speed) == pytest.approx(300.0)

    def test_trip_duration_near_33_minutes(self):
        # The paper: "only needs 33 minutes for one-way trip".  The
        # trapezoidal idealisation is a bit faster (no intermediate
        # slowdowns); it must land in the right ballpark.
        duration_minutes = btr_profile().trip_duration / 60.0
        assert 20.0 <= duration_minutes <= 35.0

    def test_cruise_speed_reached(self):
        profile = btr_profile()
        mid_trip = profile.trip_duration / 2.0
        assert profile.speed_at(mid_trip) == pytest.approx(profile.peak_speed)

    def test_starts_and_ends_at_rest(self):
        profile = btr_profile()
        assert profile.speed_at(0.0) == 0.0
        assert profile.speed_at(profile.trip_duration + 1.0) == 0.0

    def test_position_monotone(self):
        profile = btr_profile()
        times = [i * 10.0 for i in range(200)]
        positions = [profile.position_at(t) for t in times]
        assert positions == sorted(positions)

    def test_position_reaches_route_length(self):
        profile = btr_profile()
        assert profile.position_at(profile.trip_duration) == pytest.approx(
            profile.route_length, rel=1e-6
        )

    def test_position_consistent_with_speed(self):
        # position(t+dt) - position(t) ~ speed(t)*dt on the cruise leg.
        profile = btr_profile()
        t, dt = 600.0, 1.0
        delta = profile.position_at(t + dt) - profile.position_at(t)
        assert delta == pytest.approx(profile.speed_at(t) * dt, rel=1e-6)


class TestOtherProfiles:
    def test_stationary_never_moves(self):
        profile = stationary_profile()
        assert profile.speed_at(1000.0) == 0.0
        assert profile.position_at(1000.0) == 0.0
        assert profile.trip_duration == float("inf")

    def test_driving_peak_speed(self):
        assert driving_profile().peak_speed == pytest.approx(kmh_to_mps(100.0))


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            btr_profile().speed_at(-1.0)
        with pytest.raises(ConfigurationError):
            btr_profile().position_at(-1.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            MobilityProfile(name="x", peak_speed=-1.0)

    def test_route_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            MobilityProfile(name="x", peak_speed=100.0, acceleration=0.1, route_length=1000.0)

    def test_zero_acceleration_moving_rejected(self):
        with pytest.raises(ConfigurationError):
            MobilityProfile(name="x", peak_speed=10.0, acceleration=0.0)
