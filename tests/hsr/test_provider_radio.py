"""Unit tests for provider presets and the speed->quality mapping."""

import pytest

from repro.hsr.provider import (
    ALL_PROVIDERS,
    CHINA_MOBILE,
    CHINA_TELECOM,
    CHINA_UNICOM,
    Provider,
    provider_by_name,
)
from repro.hsr.radio import REFERENCE_SPEED, channel_quality
from repro.util.errors import ConfigurationError


class TestProviders:
    def test_three_carriers(self):
        assert len(ALL_PROVIDERS) == 3
        assert {provider.name for provider in ALL_PROVIDERS} == {
            "China Mobile", "China Unicom", "China Telecom",
        }

    def test_mobile_is_lte_others_3g(self):
        assert CHINA_MOBILE.technology == "LTE"
        assert CHINA_UNICOM.technology == "3G"
        assert CHINA_TELECOM.technology == "3G"

    def test_telecom_has_worst_coverage(self):
        # The paper: Telecom's backbone "mainly covers the southern part
        # of China" -> worst coverage on the Beijing-Tianjin corridor.
        assert CHINA_TELECOM.coverage_penalty > CHINA_UNICOM.coverage_penalty
        assert CHINA_UNICOM.coverage_penalty > CHINA_MOBILE.coverage_penalty

    def test_lte_has_lowest_rtt(self):
        assert CHINA_MOBILE.base_rtt < CHINA_UNICOM.base_rtt < CHINA_TELECOM.base_rtt

    def test_lookup_by_name(self):
        assert provider_by_name("China Mobile") is CHINA_MOBILE

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            provider_by_name("T-Mobile")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Provider(name="x", technology="5G", one_way_delay=0.01,
                     base_data_loss=0.001, base_ack_loss=0.001)
        with pytest.raises(ConfigurationError):
            Provider(name="x", technology="3G", one_way_delay=0.01,
                     base_data_loss=0.001, base_ack_loss=0.001,
                     coverage_penalty=0.5)


class TestChannelQuality:
    def test_stationary_point_has_base_losses(self):
        quality = channel_quality(CHINA_MOBILE, 0.0)
        assert quality.data_loss == pytest.approx(CHINA_MOBILE.base_data_loss)
        assert quality.ack_loss == pytest.approx(CHINA_MOBILE.base_ack_loss)
        assert not quality.has_ack_bursts

    def test_losses_grow_with_speed(self):
        speeds = [0.0, 20.0, 50.0, REFERENCE_SPEED]
        data = [channel_quality(CHINA_MOBILE, s).data_loss for s in speeds]
        ack = [channel_quality(CHINA_MOBILE, s).ack_loss for s in speeds]
        assert data == sorted(data)
        assert ack == sorted(ack)

    def test_hsr_speed_activates_ack_bursts(self):
        quality = channel_quality(CHINA_MOBILE, REFERENCE_SPEED)
        assert quality.has_ack_bursts
        assert quality.ack_burst_mean_good > quality.ack_burst_mean_bad

    def test_worse_coverage_means_more_frequent_bursts(self):
        mobile = channel_quality(CHINA_MOBILE, REFERENCE_SPEED)
        telecom = channel_quality(CHINA_TELECOM, REFERENCE_SPEED)
        # Relative to its own spacing constant, the penalty shortens the
        # good-state sojourn; compare normalised gap.
        assert (telecom.ack_burst_mean_good / CHINA_TELECOM.ack_burst_spacing
                < mobile.ack_burst_mean_good / CHINA_MOBILE.ack_burst_spacing)

    def test_rto_floor_grows_with_speed(self):
        slow = channel_quality(CHINA_MOBILE, 0.0)
        fast = channel_quality(CHINA_MOBILE, REFERENCE_SPEED)
        assert fast.rto_floor > slow.rto_floor

    def test_ack_loss_ratio_matches_paper_shape(self):
        # Paper: HSR ACK loss ~9x the stationary rate.
        stationary = channel_quality(CHINA_MOBILE, 0.0).ack_loss
        hsr = channel_quality(CHINA_MOBILE, REFERENCE_SPEED).ack_loss
        assert 4.0 <= hsr / stationary <= 15.0

    def test_losses_capped(self):
        quality = channel_quality(CHINA_TELECOM, REFERENCE_SPEED * 1.4)
        assert quality.data_loss <= 0.5
        assert quality.ack_loss <= 0.5

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            channel_quality(CHINA_MOBILE, -1.0)
