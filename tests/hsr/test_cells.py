"""Unit tests for the cell layout and handoff schedule."""

import pytest

from repro.hsr.cells import CellLayout, handoff_times, outage_windows
from repro.hsr.mobility import btr_profile, stationary_profile
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


class TestCellLayout:
    def test_boundaries_between(self):
        layout = CellLayout(spacing=1000.0, offset=500.0)
        assert layout.boundaries_between(0.0, 2600.0) == [500.0, 1500.0, 2500.0]

    def test_boundary_interval_open_closed(self):
        layout = CellLayout(spacing=1000.0, offset=500.0)
        # start exactly on a boundary: excluded; end exactly on one: included.
        assert layout.boundaries_between(500.0, 1500.0) == [1500.0]

    def test_no_boundaries_in_short_span(self):
        layout = CellLayout(spacing=1000.0, offset=500.0)
        assert layout.boundaries_between(600.0, 700.0) == []

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            CellLayout(spacing=0.0)
        with pytest.raises(ConfigurationError):
            CellLayout(spacing=100.0, offset=100.0)

    def test_rejects_reversed_span(self):
        with pytest.raises(ConfigurationError):
            CellLayout().boundaries_between(100.0, 50.0)


class TestHandoffTimes:
    def test_no_handoffs_when_stationary(self):
        times = handoff_times(stationary_profile(), CellLayout(), duration=300.0)
        assert times == []

    def test_cruise_handoff_rate(self):
        # At 83.3 m/s with 2.5 km cells: one handoff every ~30 s.
        profile = btr_profile()
        times = handoff_times(profile, CellLayout(spacing=2500.0), duration=300.0,
                              start_time=400.0)
        assert 8 <= len(times) <= 12

    def test_crossing_times_sorted_and_in_range(self):
        profile = btr_profile()
        times = handoff_times(profile, CellLayout(), duration=200.0, start_time=400.0)
        assert times == sorted(times)
        assert all(400.0 <= t <= 600.0 for t in times)

    def test_crossings_land_on_boundaries(self):
        profile = btr_profile()
        layout = CellLayout(spacing=2500.0, offset=1250.0)
        times = handoff_times(profile, layout, duration=120.0, start_time=400.0)
        for t in times:
            position = profile.position_at(t)
            nearest = round((position - layout.offset) / layout.spacing)
            boundary = layout.offset + nearest * layout.spacing
            assert position == pytest.approx(boundary, abs=1.0)

    def test_acceleration_phase_has_fewer_handoffs(self):
        profile = btr_profile()
        slow = handoff_times(profile, CellLayout(), duration=100.0, start_time=0.0)
        fast = handoff_times(profile, CellLayout(), duration=100.0, start_time=400.0)
        assert len(slow) <= len(fast)

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            handoff_times(btr_profile(), CellLayout(), duration=0.0)


class TestOutageWindows:
    def test_one_window_per_crossing(self):
        rng = RngStream(1)
        windows = outage_windows([10.0, 50.0, 90.0], rng)
        assert len(windows) == 3

    def test_windows_sorted_disjoint(self):
        rng = RngStream(2)
        windows = outage_windows([float(i) for i in range(0, 100, 3)], rng,
                                 mean_outage=2.0)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 < s2 or e1 <= s2  # disjoint after merging
            assert e1 > s1

    def test_overlapping_windows_merged(self):
        rng = RngStream(3)
        windows = outage_windows([10.0, 10.2, 10.4], rng, mean_outage=5.0,
                                 min_outage=2.0)
        assert len(windows) == 1
        assert windows[0][0] == pytest.approx(10.0)

    def test_durations_clipped(self):
        rng = RngStream(4)
        windows = outage_windows([float(i * 100) for i in range(50)], rng,
                                 mean_outage=1.0, min_outage=0.5, max_outage=2.0)
        for start, end in windows:
            assert 0.5 - 1e-9 <= end - start <= 2.0 + 1e-9

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigurationError):
            outage_windows([1.0], RngStream(5), mean_outage=0.0)

    def test_empty_crossings(self):
        assert outage_windows([], RngStream(6)) == []
