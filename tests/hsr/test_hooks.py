"""Tests for declarative channel hooks (:mod:`repro.hsr.hooks`)."""

import pytest

from repro.hsr import (
    CHINA_MOBILE,
    HookSpec,
    chain_hooks,
    hook_names,
    hsr_scenario,
    register_hook,
    resolve_hook,
    unregister_hook,
)
from repro.robustness.faults import FaultPlan, with_faults
from repro.simulator.channel import CompositeLoss
from repro.util.errors import ConfigurationError


class TestHookSpec:
    def test_make_sorts_params(self):
        spec = HookSpec.make("extra_loss", label="x", direction="data")
        assert spec.params == (("direction", "data"), ("label", "x"))
        assert spec.as_dict() == {"direction": "data", "label": "x"}

    def test_equality_is_order_independent(self):
        a = HookSpec(name="h", params=(("b", 2), ("a", 1)))
        b = HookSpec(name="h", params=(("a", 1), ("b", 2)))
        assert a == b
        assert hash(a) == hash(b)

    def test_hooks_may_take_a_name_param(self):
        spec = HookSpec.make("faults", name="storm")
        assert spec.name == "faults"
        assert spec.as_dict()["name"] == "storm"

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            HookSpec(name="", params=())

    def test_rejects_duplicate_params(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            HookSpec(name="h", params=(("a", 1), ("a", 2)))

    def test_rejects_non_plain_data(self):
        with pytest.raises(ConfigurationError, match="plain data"):
            HookSpec.make("h", callback=lambda: None)

    def test_lists_freeze_to_tuples(self):
        spec = HookSpec.make("h", values=[1, 2, 3])
        assert spec.as_dict()["values"] == (1, 2, 3)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"faults", "chain", "extra_loss"} <= set(hook_names())

    def test_register_resolve_unregister(self):
        marker = object()

        def factory(**params):
            return lambda built, seed: marker

        register_hook("test-hook", factory)
        try:
            assert "test-hook" in hook_names()
            hook = resolve_hook(HookSpec.make("test-hook"))
            assert hook(None, 0) is marker
        finally:
            unregister_hook("test-hook")
        assert "test-hook" not in hook_names()

    def test_register_duplicate_raises(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_hook("faults", lambda **params: None)

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="not registered"):
            unregister_hook("never-was")

    def test_resolve_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown channel hook"):
            resolve_hook(HookSpec.make("never-was"))


class TestChain:
    def test_single_spec_collapses(self):
        spec = HookSpec.make("extra_loss", direction="data")
        assert chain_hooks([spec]) is spec

    def test_chain_of_two(self):
        first = HookSpec.make("extra_loss", label="a")
        second = HookSpec.make("extra_loss", label="b")
        chained = chain_hooks([first, second])
        assert chained.name == "chain"
        assert chained.as_dict()["hooks"] == (first, second)

    def test_nested_chains_flatten(self):
        a, b, c = (HookSpec.make("extra_loss", label=lbl) for lbl in "abc")
        inner = chain_hooks([a, b])
        flat = chain_hooks([inner, c])
        assert flat.as_dict()["hooks"] == (a, b, c)

    def test_empty_chain_raises(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            chain_hooks([])


class TestBuiltinHooks:
    def test_declarative_faults_match_direct_apply(self):
        """The "faults" hook and FaultPlan.apply build identical channels."""
        plan = FaultPlan(name="storm", handoff_storm_rate=0.1,
                         ack_blackout_rate=0.08, rtt_spike_sigma=0.2)
        scenario = hsr_scenario(CHINA_MOBILE)
        via_spec = with_faults(scenario, plan).build(duration=30.0, seed=21)
        via_apply = scenario.with_channel_hook(plan.apply).build(
            duration=30.0, seed=21
        )
        assert via_spec.config == via_apply.config
        assert via_spec.outages == via_apply.outages

    def test_with_faults_stays_declarative(self):
        scenario = with_faults(hsr_scenario(CHINA_MOBILE), FaultPlan.aggressive())
        assert scenario.is_declarative
        assert scenario.channel_hook.name == "faults"

    def test_fault_spec_roundtrips_to_plan(self):
        plan = FaultPlan.aggressive(0.5)
        assert FaultPlan(**plan.to_hook_spec().as_dict()) == plan

    def test_extra_loss_wraps_only_named_direction(self):
        scenario = hsr_scenario(CHINA_MOBILE)
        base = scenario.build(duration=20.0, seed=4)
        overlay = scenario.with_channel_hook(
            HookSpec.make("extra_loss", direction="ack", label="t")
        ).build(duration=20.0, seed=4)
        assert isinstance(overlay.ack_loss, CompositeLoss)
        # The data direction and the config are untouched by an ACK overlay.
        assert type(overlay.data_loss) is type(base.data_loss)
        assert overlay.config == base.config

    def test_extra_loss_rejects_bad_direction(self):
        with pytest.raises(ConfigurationError, match="direction"):
            resolve_hook(HookSpec.make("extra_loss", direction="sideways"))

    def test_opaque_callable_hook_still_works(self):
        """Back-compat: raw callables remain accepted by build()."""
        seen = []

        def hook(built, seed):
            seen.append(seed)
            return built

        hsr_scenario(CHINA_MOBILE).with_channel_hook(hook).build(
            duration=10.0, seed=33
        )
        assert seen == [33]
